"""Figure 2: per-benchmark estimation error, unsampled structures.

Paper averages: ASM 9%, PTCA 14.7%, FST 18.5%."""

from repro.experiments import error_comparison

from conftest import env_int


def test_fig02_error_unsampled(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: error_comparison.run(
            sampled=False,
            num_mixes=env_int("REPRO_BENCH_MIXES", 10),
            quanta=env_int("REPRO_BENCH_QUANTA", 2),
        ),
        rounds=1,
        iterations=1,
    )
    record_result("fig02_error_unsampled", result.format_table())
    survey = result.survey
    # Shape: ASM is the most accurate model without sampling.
    assert survey.mean_error("asm") < survey.mean_error("fst")
    assert survey.mean_error("asm") < survey.mean_error("ptca")
