"""Figure 10: ASM-Mem vs FRFCFS/PARBS/TCM across core counts.
Paper shape: ASM-Mem achieves the best fairness at comparable
performance, with growing gains at higher core counts."""

from repro.experiments import fig10_asm_mem

from conftest import env_int


def test_fig10_asm_mem(benchmark, record_result):
    mixes = env_int("REPRO_BENCH_MIXES", 0)
    per_count = {4: 5, 8: 3, 16: 2}
    if mixes:
        per_count = {k: mixes for k in per_count}
    result = benchmark.pedantic(
        lambda: fig10_asm_mem.run(
            mixes_per_count=per_count,
            quanta=env_int("REPRO_BENCH_QUANTA", 3),
        ),
        rounds=1,
        iterations=1,
    )
    record_result("fig10_asm_mem", result.format_table())
    # Shape: slowdown-aware bandwidth partitioning improves fairness over
    # the application-unaware FR-FCFS baseline.
    for cores in (4, 8, 16):
        asm = result.outcomes[(cores, "asm-mem")]["max_slowdown"]
        frfcfs = result.outcomes[(cores, "frfcfs")]["max_slowdown"]
        assert asm <= frfcfs * 1.05, cores
