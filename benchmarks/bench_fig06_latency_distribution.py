"""Figure 6: alone miss-service-time distributions, measured vs estimated,
without and with sampling. Paper: ASM's aggregate epoch-based estimate
tracks the measured distribution; per-request FST/PTCA deviate, and
sampling makes PTCA's estimates far worse while ASM's barely move."""

from repro.experiments import fig06_latency_distribution

from conftest import env_int


def test_fig06_latency_unsampled(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig06_latency_distribution.run(
            sampled=False,
            num_mixes=env_int("REPRO_BENCH_MIXES", 6),
            quanta=env_int("REPRO_BENCH_QUANTA", 2),
        ),
        rounds=1,
        iterations=1,
    )
    record_result("fig06_latency_unsampled", result.format_table())
    assert result.mean_abs_deviation("asm") < 50.0
    # ASM's aggregate estimates track the measured distribution's shape;
    # per-request estimates are far more dispersed than the measurement.
    assert result.spread_ratio("asm") < result.spread_ratio("ptca")


def test_fig06_latency_sampled(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig06_latency_distribution.run(
            sampled=True,
            num_mixes=env_int("REPRO_BENCH_MIXES", 6),
            quanta=env_int("REPRO_BENCH_QUANTA", 2),
        ),
        rounds=1,
        iterations=1,
    )
    record_result("fig06_latency_sampled", result.format_table())
    # Shape: under sampling ASM's latency estimates remain far less
    # dispersed relative to their reference than PTCA's.
    assert result.spread_ratio("asm") < result.spread_ratio("ptca")
