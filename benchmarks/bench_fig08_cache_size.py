"""Figure 8: estimation error versus LLC capacity (scaled 128KB-512KB,
standing for the paper's 1-4MB). Paper shape: ASM most accurate at every
capacity."""

from repro.experiments import fig08_cache_size

from conftest import env_int


def test_fig08_cache_size(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig08_cache_size.run(
            num_mixes=env_int("REPRO_BENCH_MIXES", 6),
            quanta=env_int("REPRO_BENCH_QUANTA", 2),
        ),
        rounds=1,
        iterations=1,
    )
    record_result("fig08_cache_size", result.format_table())
    for size, survey in result.surveys.items():
        assert survey.mean_error("asm") < survey.mean_error("fst"), size
