"""Table 3: ASM error sensitivity to quantum and epoch lengths.
Paper shape: larger Q helps; E = 1K cycles is the worst epoch length
(too short to emulate alone-run behaviour)."""

from repro.experiments import table3_quantum_epoch

from conftest import env_int


def test_table3_quantum_epoch(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: table3_quantum_epoch.run(
            num_mixes=env_int("REPRO_BENCH_MIXES", 5),
        ),
        rounds=1,
        iterations=1,
    )
    record_result("table3_quantum_epoch", result.format_table())
    errors = result.errors
    quanta = sorted({q for q, _ in errors})
    # Shape: the shortest epoch (1K) is worse than the default (5K) at the
    # largest quantum.
    largest_q = quanta[-1]
    assert errors[(largest_q, 1_000)] > errors[(largest_q, 5_000)]
