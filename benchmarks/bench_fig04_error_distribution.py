"""Figure 4: distribution of estimation error.

Paper: 95.25% of ASM's estimates err under 20% (76.25% FST, 79.25% PTCA);
max errors ASM 36%, PTCA 87%, FST 133%."""

from repro.experiments import fig04_error_distribution

from conftest import env_int


def test_fig04_error_distribution(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig04_error_distribution.run(
            num_mixes=env_int("REPRO_BENCH_MIXES", 10),
            quanta=env_int("REPRO_BENCH_QUANTA", 2),
        ),
        rounds=1,
        iterations=1,
    )
    record_result("fig04_error_distribution", result.format_table())
    # Shape: ASM has the largest small-error share and the smallest tail.
    assert result.within("asm", 20.0) > result.within("fst", 20.0)
    assert result.max_error("asm") < result.max_error("fst")
