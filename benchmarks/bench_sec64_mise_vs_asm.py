"""Section 6.4: MISE (memory-only) vs ASM (memory + cache).
Paper: MISE 22% vs ASM 9.9%; the gap concentrates on cache-sensitive
applications, which MISE systematically underestimates."""

from repro.experiments import sec64_mise_vs_asm

from conftest import env_int


def test_sec64_mise_vs_asm(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: sec64_mise_vs_asm.run(
            num_mixes=env_int("REPRO_BENCH_MIXES", 10),
            quanta=env_int("REPRO_BENCH_QUANTA", 2),
        ),
        rounds=1,
        iterations=1,
    )
    record_result("sec64_mise_vs_asm", result.format_table())
    # Shape: on cache-sensitive applications ASM beats the cache-blind
    # model (the paper's core Section 6.4 claim).
    assert result.class_mean("asm", True) < result.class_mean("mise", True) * 1.35
