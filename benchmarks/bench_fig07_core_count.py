"""Figure 7: estimation error versus core count (4/8/16).
Paper shape: ASM most accurate at every count, lowest spread."""

from repro.experiments import fig07_core_count

from conftest import env_int


def test_fig07_core_count(benchmark, record_result):
    mixes = env_int("REPRO_BENCH_MIXES", 0)
    per_count = {4: 8, 8: 5, 16: 3}
    if mixes:
        per_count = {k: mixes for k in per_count}
    result = benchmark.pedantic(
        lambda: fig07_core_count.run(
            mixes_per_count=per_count,
            quanta=env_int("REPRO_BENCH_QUANTA", 2),
        ),
        rounds=1,
        iterations=1,
    )
    record_result("fig07_core_count", result.format_table())
    for cores, survey in result.surveys.items():
        assert survey.mean_error("asm") < survey.mean_error("fst"), cores
