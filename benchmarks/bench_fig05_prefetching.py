"""Figure 5: estimation error with a stride prefetcher (degree 4,
distance 24). Paper: ASM 7.5% (improves), FST 20%, PTCA 15% (degrade)."""

from repro.experiments import fig05_prefetching

from conftest import env_int


def test_fig05_prefetching(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig05_prefetching.run(
            num_mixes=env_int("REPRO_BENCH_MIXES", 8),
            quanta=env_int("REPRO_BENCH_QUANTA", 2),
        ),
        rounds=1,
        iterations=1,
    )
    record_result("fig05_prefetching", result.format_table())
    # Shape: with prefetching ASM stays the most accurate model.
    survey = result.with_prefetch
    assert survey.mean_error("asm") < survey.mean_error("fst")
    assert survey.mean_error("asm") < survey.mean_error("ptca")
