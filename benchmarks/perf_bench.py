"""Thin wrapper: the benchmark logic lives in :mod:`repro.perfbench`.

Preserved entry point so existing invocations keep working::

    PYTHONPATH=src python benchmarks/perf_bench.py --workers 4
    PYTHONPATH=src python benchmarks/perf_bench.py --micro-only
    PYTHONPATH=src python benchmarks/perf_bench.py --check-equality

The same captures are available through the CLI as ``repro bench run``
(plus ``compare`` / ``merge`` / ``ab`` verbs).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perfbench import legacy_main  # noqa: E402

if __name__ == "__main__":
    sys.exit(legacy_main())
