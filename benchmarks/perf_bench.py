"""Perf-regression harness: wall-clock + events/sec capture into BENCH_*.json.

Two benchmarks, runnable together or separately:

* **Event-loop microbenchmark** (``--micro``): drives :class:`repro.engine.
  Engine` with a bundle of self-rescheduling callbacks (several sharing
  timestamps, several free-running) and reports raw events/sec of the
  dispatch loop itself. This is the number the single-process hot-path
  optimizations defend.
* **Sweep benchmark** (``--sweep``): runs a fig02-style error survey once
  serially and once through the parallel campaign layer (``--workers N``),
  reports wall clock for both, the speedup, and whether the two produced
  identical results (they must: the simulator is deterministic per cell).

Results are appended-to/merged-into a JSON file (default ``BENCH_perf.json``
at the repo root) so every PR lands with a measured before/after and future
PRs have a trajectory to defend::

    PYTHONPATH=src python benchmarks/perf_bench.py --workers 4
    PYTHONPATH=src python benchmarks/perf_bench.py --micro-only
    PYTHONPATH=src python benchmarks/perf_bench.py --check-equality

``--check-equality`` exits non-zero when the parallel sweep does not match
the serial sweep, which is how CI's perf-smoke job asserts correctness.

Numbers depend on the host; ``cpu_count`` is recorded alongside so a
1-core CI box showing no parallel speedup is distinguishable from a
regression (workers cannot beat serial without cores to run on).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import Engine  # noqa: E402


# ---------------------------------------------------------------------------
# Event-loop microbenchmark
# ---------------------------------------------------------------------------

def engine_microbench(target_events: int = 300_000, repeats: int = 5) -> dict:
    """Measure raw dispatch throughput of the event loop (best of N runs;
    shared CI boxes are noisy, and the best run is the least-perturbed one).

    The callback population mirrors what a simulation schedules: several
    periodic streams that collide on the same timestamp (core issue +
    controller wake at one cycle), plus free-running streams with co-prime
    periods so most timestamps carry a single event.
    """
    best = None
    for _ in range(repeats):
        run = _engine_microbench_once(target_events)
        if best is None or run["events_per_s"] > best["events_per_s"]:
            best = run
    best["repeats"] = repeats
    return best


def _engine_microbench_once(target_events: int) -> dict:
    engine = Engine()
    counter = [0]

    def make_recurring(period: int):
        def cb() -> None:
            counter[0] += 1
            engine.schedule(period, cb)
        return cb

    # Four streams sharing period 5 (same-cycle batches), three co-prime
    # free-runners, and one zero-delay chain emulating wake->issue pairs.
    for _ in range(4):
        engine.schedule(5, make_recurring(5))
    for period in (3, 7, 11):
        engine.schedule(period, make_recurring(period))

    def chained() -> None:
        counter[0] += 1
        engine.schedule(0, lambda: counter.__setitem__(0, counter[0] + 1))
        engine.schedule(13, chained)

    engine.schedule(13, chained)

    # Events per simulated cycle ~= 4/5 + 1/3 + 1/7 + 1/11 + 2/13 ~= 1.52.
    horizon = int(target_events / 1.52)
    start = time.perf_counter()
    engine.run(until=horizon)
    elapsed = time.perf_counter() - start
    events = engine.events_executed
    return {
        "events": events,
        "wall_s": round(elapsed, 4),
        "events_per_s": round(events / elapsed, 1),
    }


# ---------------------------------------------------------------------------
# Sweep benchmark (serial vs parallel campaign execution)
# ---------------------------------------------------------------------------

def _run_sweep(num_mixes: int, quanta: int, workers: int, seed: int):
    """One fig02-style survey; returns (survey, wall_seconds)."""
    from repro.experiments import error_comparison
    from repro.resilience import Campaign

    campaign = Campaign("perf_bench", None)
    kwargs = {}
    if workers > 1:
        kwargs["workers"] = workers
    start = time.perf_counter()
    result = error_comparison.run(
        sampled=False,
        num_mixes=num_mixes,
        quanta=quanta,
        seed=seed,
        campaign=campaign,
        **kwargs,
    )
    elapsed = time.perf_counter() - start
    return result.survey, elapsed


def _surveys_identical(a, b) -> bool:
    return (
        a.model_names == b.model_names
        and a.overall == b.overall
        and a.per_app == b.per_app
        and a.per_workload == b.per_workload
    )


def sweep_bench(num_mixes: int, quanta: int, workers: int, seed: int) -> dict:
    serial_survey, serial_s = _run_sweep(num_mixes, quanta, 1, seed)
    record = {
        "num_mixes": num_mixes,
        "quanta": quanta,
        "serial_wall_s": round(serial_s, 3),
    }
    if workers > 1:
        parallel_survey, parallel_s = _run_sweep(num_mixes, quanta, workers, seed)
        record.update(
            {
                "workers": workers,
                "parallel_wall_s": round(parallel_s, 3),
                "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
                "identical_results": _surveys_identical(
                    serial_survey, parallel_survey
                ),
            }
        )
    return record


# ---------------------------------------------------------------------------
# JSON capture
# ---------------------------------------------------------------------------

def merge_results(path: Path, section: str, record: dict, label: str) -> None:
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    data.setdefault("platform", {}).update(
        {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
        }
    )
    data.setdefault(section, {})[label] = record
    from repro.durability.atomic import atomic_write_text

    atomic_write_text(str(path), json.dumps(data, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4,
                        help="parallel workers for the sweep benchmark")
    parser.add_argument("--mixes", type=int, default=4,
                        help="workloads in the sweep benchmark")
    parser.add_argument("--quanta", type=int, default=2,
                        help="quanta per run in the sweep benchmark")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--micro-events", type=int, default=300_000,
                        help="approximate events in the microbenchmark")
    parser.add_argument("--micro-only", action="store_true",
                        help="run only the event-loop microbenchmark")
    parser.add_argument("--sweep-only", action="store_true",
                        help="run only the sweep benchmark")
    parser.add_argument("--label", type=str, default="current",
                        help="label for this capture inside the JSON")
    parser.add_argument("--out", type=str,
                        default=str(REPO_ROOT / "BENCH_perf.json"))
    parser.add_argument("--check-equality", action="store_true",
                        help="exit non-zero unless parallel == serial")
    args = parser.parse_args(argv)

    out = Path(args.out)
    status = 0

    if not args.sweep_only:
        micro = engine_microbench(args.micro_events)
        merge_results(out, "engine_microbench", micro, args.label)
        print(f"engine_microbench[{args.label}]: "
              f"{micro['events_per_s']:,.0f} events/s "
              f"({micro['events']} events in {micro['wall_s']}s)")

    if not args.micro_only:
        sweep = sweep_bench(args.mixes, args.quanta, args.workers, args.seed)
        merge_results(out, "sweep", sweep, args.label)
        print(f"sweep[{args.label}]: serial {sweep['serial_wall_s']}s", end="")
        if "parallel_wall_s" in sweep:
            print(f", {sweep['workers']} workers {sweep['parallel_wall_s']}s, "
                  f"speedup {sweep['speedup']}x, "
                  f"identical={sweep['identical_results']}")
            if args.check_equality and not sweep["identical_results"]:
                print("ERROR: parallel sweep results differ from serial",
                      file=sys.stderr)
                status = 1
        else:
            print()

    print(f"wrote {out}")
    return status


if __name__ == "__main__":
    sys.exit(main())
