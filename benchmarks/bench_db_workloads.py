"""Section 6 (text): accuracy on database workloads (TPC-C / YCSB).
Paper: FST 27%, PTCA 12%, ASM 4%."""

from repro.experiments import db_workloads

from conftest import env_int


def test_db_workloads(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: db_workloads.run(
            num_mixes=env_int("REPRO_BENCH_MIXES", 6),
            quanta=env_int("REPRO_BENCH_QUANTA", 2),
        ),
        rounds=1,
        iterations=1,
    )
    record_result("db_workloads", result.format_table())
    survey = result.survey
    assert survey.mean_error("asm") < survey.mean_error("fst")
