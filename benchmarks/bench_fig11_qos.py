"""Figure 11: soft slowdown guarantees.
Paper shape: ASM-QoS-X keeps the target application within (a small margin
of) the bound X while slowing co-runners far less than Naive-QoS; looser
bounds free more capacity for the co-runners."""

from repro.experiments import fig11_qos
from repro.harness import metrics

from conftest import env_int


def test_fig11_qos(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig11_qos.run(quanta=env_int("REPRO_BENCH_QUANTA", 3)),
        rounds=1,
        iterations=1,
    )
    record_result("fig11_qos", result.format_table())
    naive = result.slowdowns["naive-qos"]
    # Tighter bounds give the target app more cache, hence less slowdown.
    targets = [result.slowdowns[f"asm-qos-{b}"][0] for b in result.bounds]
    assert targets == sorted(targets)
    # Co-runners fare no worse under the loosest ASM-QoS than under
    # Naive-QoS (which starves them of cache entirely).
    loosest = result.slowdowns[f"asm-qos-{result.bounds[-1]}"]
    assert metrics.mean(loosest[1:]) <= metrics.mean(naive[1:]) * 1.05
