"""Figure 1: cache access rate as a proxy for performance."""

from repro.experiments import fig01_car_proxy

from conftest import env_int


def test_fig01_car_proxy(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: fig01_car_proxy.run(
            cycles=env_int("REPRO_BENCH_FIG1_CYCLES", 400_000)
        ),
        rounds=1,
        iterations=1,
    )
    record_result("fig01_car_proxy", result.format_table())
    # The paper's claim: performance is proportional to CAR.
    for app in result.points:
        assert result.correlation(app) > 0.9, app
