"""Section 7.2: ASM-Cache-Mem vs PARBS+UCP (best prior combination).
Paper: ~14.6% fairness gain at comparable performance (16-core)."""

from repro.experiments import sec72_combined

from conftest import env_int


def test_sec72_combined(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: sec72_combined.run(
            num_cores=env_int("REPRO_BENCH_COMBINED_CORES", 8),
            num_mixes=env_int("REPRO_BENCH_MIXES", 3),
            quanta=env_int("REPRO_BENCH_QUANTA", 3),
        ),
        rounds=1,
        iterations=1,
    )
    record_result("sec72_combined", result.format_table())
    asm = result.outcomes["asm-cache-mem"]["max_slowdown"]
    base = result.outcomes["frfcfs+nopart"]["max_slowdown"]
    assert asm <= base * 1.05
