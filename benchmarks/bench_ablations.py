"""Ablations of ASM's design choices: ATS sampling degree, round-robin vs
probabilistic epochs, queueing-delay correction on/off."""

from repro.experiments import ablations

from conftest import env_int


def test_ablations(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: ablations.run(
            num_mixes=env_int("REPRO_BENCH_MIXES", 6),
            quanta=env_int("REPRO_BENCH_QUANTA", 2),
        ),
        rounds=1,
        iterations=1,
    )
    record_result("ablations", result.format_table())
    errors = result.errors
    # Section 4.4's claim: sampling has negligible impact on ASM.
    assert errors["ats-sampled-16"] < errors["ats-full"] + 5.0
    # Section 4.2's claim: round-robin epochs achieve similar effects.
    assert abs(errors["round-robin-epochs"] - errors["ats-sampled-16"]) < 6.0
