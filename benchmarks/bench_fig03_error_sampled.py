"""Figure 3: estimation error with sampled ATS / small pollution filter.

Paper averages: ASM 9.9%, FST 29.4%, PTCA 40.4% — sampling barely affects
ASM but wrecks the per-request models."""

from repro.experiments import error_comparison

from conftest import env_int


def test_fig03_error_sampled(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: error_comparison.run(
            sampled=True,
            num_mixes=env_int("REPRO_BENCH_MIXES", 10),
            quanta=env_int("REPRO_BENCH_QUANTA", 2),
        ),
        rounds=1,
        iterations=1,
    )
    record_result("fig03_error_sampled", result.format_table())
    survey = result.survey
    assert survey.mean_error("asm") < survey.mean_error("fst")
    assert survey.mean_error("asm") < survey.mean_error("ptca")
