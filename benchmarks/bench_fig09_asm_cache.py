"""Figure 9: ASM-Cache vs NoPart/UCP/MCFQ across core counts.
Paper shape: ASM-Cache is the fairest (lowest max slowdown) with
comparable-or-better harmonic speedup; gains grow with core count."""

from repro.experiments import fig09_asm_cache

from conftest import env_int


def test_fig09_asm_cache(benchmark, record_result):
    mixes = env_int("REPRO_BENCH_MIXES", 0)
    per_count = {4: 5, 8: 3, 16: 2}
    if mixes:
        per_count = {k: mixes for k in per_count}
    result = benchmark.pedantic(
        lambda: fig09_asm_cache.run(
            mixes_per_count=per_count,
            quanta=env_int("REPRO_BENCH_QUANTA", 3),
        ),
        rounds=1,
        iterations=1,
    )
    record_result("fig09_asm_cache", result.format_table())
    # Shape: slowdown-aware partitioning is at least as fair as UCP.
    for cores in (4, 8, 16):
        asm = result.outcomes[(cores, "asm-cache")]["max_slowdown"]
        ucp = result.outcomes[(cores, "ucp")]["max_slowdown"]
        assert asm <= ucp * 1.05, cores
