"""Benchmark-suite helpers.

Every benchmark runs one experiment driver end to end (so the reported
time is the full experiment cost), prints the reproduced table/figure
series, and archives it under ``results/`` for EXPERIMENTS.md.

Scale knobs (environment variables):

* ``REPRO_BENCH_MIXES`` — workloads per configuration (default: driver
  defaults, chosen to finish the full suite in tens of minutes);
* ``REPRO_BENCH_QUANTA`` — quanta per run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


@pytest.fixture
def record_result():
    """Print an experiment's table and archive it under results/."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record
