"""End-to-end integration tests: whole-system behaviour and determinism."""

import dataclasses

import pytest

from repro.config import scaled_config
from repro.harness.runner import AloneRunCache, run_workload
from repro.harness.system import System
from repro.mem.schedulers import ParbsScheduler, TcmScheduler
from repro.models.asm import AsmModel
from repro.models.fst import FstModel
from repro.workloads.mixes import make_mix


@pytest.fixture(scope="module")
def quick_config():
    return scaled_config().with_quantum(150_000, 5_000)


def test_full_stack_determinism(quick_config):
    """Identical seeds -> bit-identical simulations, including models."""
    mix = make_mix(["mcf", "ft", "lbm", "gcc"], seed=11)

    def run():
        return run_workload(
            mix,
            quick_config,
            model_factories={
                "asm": lambda: AsmModel(sampled_sets=16),
                "fst": lambda: FstModel(),
            },
            quanta=2,
        )

    a, b = run(), run()
    for ra, rb in zip(a.records, b.records):
        assert ra.instructions == rb.instructions
        assert ra.estimates == rb.estimates
        assert ra.actual_slowdowns == rb.actual_slowdowns


def test_interference_slows_down_applications(quick_config):
    """Shared execution must be slower than alone execution."""
    mix = make_mix(["mcf", "soplex", "lbm", "is"], seed=12)
    result = run_workload(mix, quick_config, quanta=2)
    slowdowns = result.mean_actual_slowdowns()
    assert all(s > 1.1 for s in slowdowns), slowdowns


def test_alternative_schedulers_run_end_to_end(quick_config):
    mix = make_mix(["mcf", "ft"], seed=13)
    cache = AloneRunCache()
    for factory in (ParbsScheduler, lambda: TcmScheduler(2)):
        result = run_workload(
            mix,
            quick_config,
            scheduler_factory=factory,
            quanta=1,
            alone_cache=cache,
        )
        assert result.records
        assert all(s > 0 for s in result.records[0].shared_ipc)


def test_light_co_runner_interferes_less(quick_config):
    """A compute-bound co-runner slows mcf less than a streaming hog."""
    cache = AloneRunCache()
    light = run_workload(
        make_mix(["mcf", "povray"], seed=14), quick_config, quanta=2,
        alone_cache=cache,
    )
    heavy = run_workload(
        make_mix(["mcf", "lbm"], seed=14), quick_config, quanta=2,
        alone_cache=cache,
    )
    assert light.mean_actual_slowdowns()[0] < heavy.mean_actual_slowdowns()[0]


def test_more_channels_reduce_interference(quick_config):
    mix = make_mix(["lbm", "milc", "is", "libquantum"], seed=15)
    one = run_workload(mix, quick_config, quanta=1)
    two_channel = dataclasses.replace(
        quick_config,
        dram=dataclasses.replace(quick_config.dram, channels=2),
    )
    two = run_workload(mix, two_channel, quanta=1)
    assert two.max_slowdown() < one.max_slowdown()


def test_bigger_cache_reduces_cache_sensitive_slowdown(quick_config):
    mix = make_mix(["ft", "soplex", "xalancbmk", "dealII"], seed=16)
    small = run_workload(mix, quick_config.with_llc_size(128 * 1024), quanta=2)
    large = run_workload(mix, quick_config.with_llc_size(512 * 1024), quanta=2)
    assert large.max_slowdown() < small.max_slowdown()


def test_epoch_prioritisation_does_not_hurt_throughput(quick_config):
    """Section 3.2 reports ~1% performance impact from epoch
    prioritisation. On this scaled single-channel platform the effect is
    larger and *positive* (per-application priority windows batch requests
    and preserve row locality), so every experiment keeps epochs enabled
    for every scheme to stay internally consistent. The invariant worth
    pinning: the machinery must never degrade throughput."""
    mix = make_mix(["mcf", "ft", "lbm", "gcc"], seed=17)
    cache = AloneRunCache()
    with_epochs = run_workload(
        mix, quick_config, quanta=2, alone_cache=cache, enable_epochs=True
    )
    without = run_workload(
        mix, quick_config, quanta=2, alone_cache=cache, enable_epochs=False
    )
    ipc_with = sum(with_epochs.records[-1].shared_ipc)
    ipc_without = sum(without.records[-1].shared_ipc)
    assert ipc_with >= ipc_without * 0.95


def test_sixteen_core_system_runs(quick_config):
    from repro.workloads.mixes import random_mixes

    mix = random_mixes(1, 16, seed=18)[0]
    config = quick_config.with_cores(16).with_quantum(50_000, 5_000)
    system = System(config, mix.traces(), seed=1)
    asm = AsmModel(sampled_sets=16)
    asm.attach(system)
    system.run_quantum()
    assert len(asm.estimates_history[0]) == 16
