"""Tests for the features beyond the paper's core evaluation: BLISS,
DRAM refresh, epoch warm-up, row-locality statistics."""

import dataclasses

import pytest

from repro.config import DramConfig, scaled_config
from repro.engine import Engine
from repro.mem.controller import MemoryController
from repro.mem.dram import Channel, DramMapping, service_request
from repro.mem.request import MemRequest
from repro.mem.schedulers import BlissScheduler
from repro.harness.runner import run_workload
from repro.harness.system import System
from repro.models.asm import AsmModel
from repro.workloads.mixes import make_mix


# -- BLISS -------------------------------------------------------------
def _bliss_setup():
    dram = DramConfig()
    channel = Channel(dram.banks_per_rank)
    mapping = DramMapping(dram)

    def req(line, core, arrival):
        r = MemRequest(core=core, line_addr=line, arrival_time=arrival)
        r.channel, r.bank, r.row = mapping.locate(line)
        return r

    return channel, mapping, req


def test_bliss_blacklists_streak_core():
    channel, mapping, req = _bliss_setup()
    scheduler = BlissScheduler(num_cores=2, blacklist_threshold=3)
    # Core 0 has a stream of old requests; core 1's single request is
    # younger, so FCFS order serves core 0 until it gets blacklisted.
    hog = [req(i, core=0, arrival=i) for i in range(6)]
    victim = req(mapping.lines_per_row * 500, core=1, arrival=100)
    for _ in range(3):
        pick = scheduler.pick(hog + [victim], channel, 200)
        assert pick.core == 0
        hog.remove(pick)
    assert scheduler._blacklisted[0]
    pick = scheduler.pick(hog + [victim], channel, 200)
    assert pick.core == 1, "after the streak, the non-blacklisted core wins"


def test_bliss_clears_blacklist_periodically():
    scheduler = BlissScheduler(num_cores=2, clearing_interval=1000)
    scheduler._blacklisted = [True, True]
    scheduler.update(2000, [0, 0])
    assert scheduler._blacklisted == [False, False]


def test_bliss_end_to_end(small_system_config):
    config = scaled_config().with_quantum(100_000, 5_000)
    mix = make_mix(["mcf", "lbm"], seed=3)
    result = run_workload(
        mix,
        config,
        scheduler_factory=lambda: BlissScheduler(2),
        quanta=1,
    )
    assert all(s > 0 for s in result.records[0].shared_ipc)


# -- refresh ------------------------------------------------------------
def test_refresh_closes_rows_and_stalls_banks():
    dram = dataclasses.replace(
        DramConfig(), refresh_enabled=True, trefi_dram_cycles=500
    )
    engine = Engine()
    controller = MemoryController(engine, dram, num_cores=1)
    controller.enqueue(MemRequest(core=0, line_addr=0))
    engine.run(until=dram.trefi + 1)
    assert controller.refreshes_performed >= 1
    bank = controller.channels[0].banks[0]
    assert bank.open_row is None


def test_refresh_delays_requests():
    def total_time(refresh):
        dram = dataclasses.replace(
            DramConfig(), refresh_enabled=refresh, trefi_dram_cycles=200
        )
        engine = Engine()
        controller = MemoryController(engine, dram, num_cores=1)
        done = []
        for i in range(100):
            controller.enqueue(
                MemRequest(core=0, line_addr=i,
                           callback=lambda r: done.append(r.completion_time))
            )
        # Bounded run: the refresh timer reschedules itself forever, so
        # the event queue never drains on its own.
        engine.run(until=1_000_000)
        assert len(done) == 100
        return max(done)

    assert total_time(True) > total_time(False)


def test_refresh_disabled_by_default():
    engine = Engine()
    controller = MemoryController(engine, DramConfig(), num_cores=1)
    engine.run(until=10_000_000)
    assert controller.refreshes_performed == 0


# -- row locality stats ---------------------------------------------------
def test_row_hit_rate_reporting():
    engine = Engine()
    controller = MemoryController(engine, DramConfig(), num_cores=1)
    for line in range(8):  # same row
        controller.enqueue(MemRequest(core=0, line_addr=line))
    engine.run()
    assert controller.row_hit_rate(0) == pytest.approx(7 / 8)
    assert controller.row_hit_rate(0) <= 1.0


# -- epoch warm-up ---------------------------------------------------------
def test_warmup_excluded_from_measurement():
    config = scaled_config().with_quantum(100_000, 5_000)
    assert config.epoch_warmup_cycles == 1_000
    mix = make_mix(["mcf", "lbm"], seed=4)
    system = System(
        dataclasses.replace(config, num_cores=2), mix.traces(), seed=1
    )
    asm = AsmModel(sampled_sets=16)
    asm.attach(system)
    measure_events = []
    system.measure_listeners.append(lambda owner: measure_events.append(owner))
    epoch_events = []
    system.epoch_listeners.append(lambda owner: epoch_events.append(owner))
    system.run_until(50_000)
    # One measurement window per epoch, with matching owners.
    assert len(measure_events) in (len(epoch_events), len(epoch_events) - 1)
    assert measure_events == epoch_events[: len(measure_events)]


def test_warmup_validation():
    config = scaled_config().with_quantum(100_000, 5_000)
    bad = dataclasses.replace(config, epoch_warmup_cycles=5_000)
    with pytest.raises(ValueError):
        bad.validate()


def test_zero_warmup_still_measures():
    config = dataclasses.replace(
        scaled_config().with_quantum(100_000, 5_000), epoch_warmup_cycles=0
    )
    mix = make_mix(["mcf", "lbm"], seed=5)
    result = run_workload(
        mix,
        config,
        model_factories={"asm": lambda: AsmModel(sampled_sets=16)},
        quanta=1,
    )
    assert all(e >= 1.0 for e in result.records[0].estimates["asm"])
