"""Unit tests for the discrete-event engine."""

import time

import pytest

from repro.engine import DeadlineExceeded, Engine


def test_events_run_in_time_order():
    engine = Engine()
    log = []
    engine.schedule(30, lambda: log.append("c"))
    engine.schedule(10, lambda: log.append("a"))
    engine.schedule(20, lambda: log.append("b"))
    engine.run()
    assert log == ["a", "b", "c"]
    assert engine.now == 30


def test_ties_break_by_insertion_order():
    engine = Engine()
    log = []
    for i in range(5):
        engine.schedule(7, lambda i=i: log.append(i))
    engine.run()
    assert log == [0, 1, 2, 3, 4]


def test_run_until_stops_before_boundary_events():
    engine = Engine()
    log = []
    engine.schedule(5, lambda: log.append("early"))
    engine.schedule(10, lambda: log.append("boundary"))
    engine.schedule(15, lambda: log.append("late"))
    engine.run(until=10)
    assert log == ["early"]
    assert engine.now == 10
    engine.run(until=20)
    assert log == ["early", "boundary", "late"]


def test_run_until_advances_time_with_empty_queue():
    engine = Engine()
    engine.run(until=1000)
    assert engine.now == 1000


def test_callbacks_can_schedule_more_events():
    engine = Engine()
    log = []

    def recurring():
        log.append(engine.now)
        if engine.now < 50:
            engine.schedule(10, recurring)

    engine.schedule(10, recurring)
    engine.run(until=200)
    assert log == [10, 20, 30, 40, 50]


def test_cannot_schedule_in_the_past():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(ValueError):
        engine.schedule(-1, lambda: None)
    with pytest.raises(ValueError):
        engine.schedule_at(5, lambda: None)


def test_stop_halts_the_loop():
    engine = Engine()
    log = []
    engine.schedule(1, lambda: (log.append(1), engine.stop()))
    engine.schedule(2, lambda: log.append(2))
    engine.run()
    assert log == [1]
    assert engine.pending_events == 1


def test_schedule_at_current_time_is_allowed():
    engine = Engine()
    log = []
    engine.schedule(5, lambda: engine.schedule(0, lambda: log.append("x")))
    engine.run()
    assert log == ["x"]
    assert engine.now == 5


def test_deadline_caught_after_first_slow_event():
    # A single slow callback at the head of the run must not evade the
    # watchdog for a whole check window: the clock is sampled right after
    # the first event.
    engine = Engine()
    engine.schedule(1, lambda: time.sleep(0.05))
    engine.schedule(2, lambda: None)
    with pytest.raises(DeadlineExceeded) as excinfo:
        engine.run(wall_deadline=time.monotonic() + 0.01)
    assert excinfo.value.pending_events == 1
    assert engine.pending_events == 1  # the un-run event stays queued


def test_deadline_checked_once_more_on_drain():
    # When the *last* event is the slow one, the loop exits before the
    # next periodic sample — the drain check must still raise.
    engine = Engine()
    engine.schedule(1, lambda: None)
    engine.schedule(2, lambda: time.sleep(0.05))
    with pytest.raises(DeadlineExceeded):
        engine.run(wall_deadline=time.monotonic() + 0.02)
    assert engine.pending_events == 0


def test_no_deadline_means_no_deadline_checks():
    engine = Engine()
    engine.schedule(1, lambda: time.sleep(0.01))
    assert engine.run() == 1


def test_stop_mid_cycle_preserves_remaining_same_cycle_events():
    engine = Engine()
    log = []
    engine.schedule(5, lambda: log.append("a"))
    engine.schedule(5, lambda: (log.append("b"), engine.stop()))
    engine.schedule(5, lambda: log.append("c"))
    engine.run()
    assert log == ["a", "b"]
    assert engine.pending_events == 1
    engine.run()
    assert log == ["a", "b", "c"]


def test_raising_callback_preserves_remaining_events():
    engine = Engine()
    log = []

    def boom():
        raise RuntimeError("injected")

    engine.schedule(5, boom)
    engine.schedule(5, lambda: log.append("same-cycle"))
    engine.schedule(9, lambda: log.append("later"))
    with pytest.raises(RuntimeError):
        engine.run()
    assert engine.pending_events == 2  # the failing event itself is consumed
    engine.run()
    assert log == ["same-cycle", "later"]


def test_deadline_inside_a_livelocked_cycle():
    # A zero-delay self-rescheduling callback never lets the current cycle
    # end; the deadline check must fire inside the same-cycle batch.
    engine = Engine()

    def spin():
        engine.schedule(0, spin)

    engine.schedule(3, spin)
    with pytest.raises(DeadlineExceeded):
        engine.run(wall_deadline=time.monotonic() + 0.02)
    assert engine.now == 3
