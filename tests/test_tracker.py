"""Unit tests for the outstanding-interval tracker (Table 1 semantics)."""

import pytest

from repro.models.base import OutstandingTracker


def test_single_interval():
    tracker = OutstandingTracker()
    tracker.start(10)
    tracker.end(30)
    assert tracker.read(100) == 20


def test_overlapping_intervals_count_once():
    """'# cycles during which at least one X is outstanding' is a union."""
    tracker = OutstandingTracker()
    tracker.start(0)
    tracker.start(5)
    tracker.end(10)
    tracker.end(20)
    assert tracker.read(100) == 20  # union [0, 20), not 10 + 15


def test_disjoint_intervals_sum():
    tracker = OutstandingTracker()
    tracker.start(0)
    tracker.end(10)
    tracker.start(50)
    tracker.end(60)
    assert tracker.read(100) == 20


def test_gate_excludes_closed_periods():
    tracker = OutstandingTracker(gate_open=False)
    tracker.start(0)
    tracker.set_gate(True, 10)
    tracker.set_gate(False, 25)
    tracker.end(40)
    assert tracker.read(100) == 15  # only [10, 25) counted


def test_read_includes_open_interval_up_to_now():
    tracker = OutstandingTracker()
    tracker.start(0)
    assert tracker.read(7) == 7


def test_reset_preserves_count():
    tracker = OutstandingTracker()
    tracker.start(0)
    tracker.reset(10)
    assert tracker.read(15) == 5  # still outstanding after reset
    tracker.end(20)


def test_end_without_start_raises():
    tracker = OutstandingTracker()
    with pytest.raises(ValueError):
        tracker.end(5)
