"""Smoke tests for every experiment driver at tiny scale.

The full-scale versions live under benchmarks/; here each driver runs with
minimal workloads to validate plumbing and result formatting.
"""

import dataclasses

import pytest

from repro.config import scaled_config
from repro.experiments import (
    ablations,
    db_workloads,
    error_comparison,
    fig01_car_proxy,
    fig04_error_distribution,
    fig05_prefetching,
    fig06_latency_distribution,
    fig07_core_count,
    fig08_cache_size,
    fig09_asm_cache,
    fig10_asm_mem,
    fig11_qos,
    sec64_mise_vs_asm,
    sec72_combined,
    table3_quantum_epoch,
)
from repro.experiments.common import format_table


@pytest.fixture(scope="module")
def tiny_config():
    return scaled_config().with_quantum(100_000, 5_000)


def test_format_table_alignment():
    table = format_table(["a", "metric"], [["x", 1.234], ["yy", 10.0]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert "1.23" in table and "10.00" in table


def test_fig01_driver(tiny_config):
    result = fig01_car_proxy.run(
        apps=("bzip2",),
        intensities=(0.2, 1.0),
        cache_pressures=(0.5,),
        cycles=80_000,
        config=tiny_config,
    )
    assert "bzip2" in result.points
    assert len(result.points["bzip2"]) == 2
    assert "pearson_r" in result.format_table()


def test_error_comparison_driver(tiny_config):
    result = error_comparison.run(
        sampled=True, num_mixes=2, quanta=1, config=tiny_config
    )
    assert result.survey.mean_error("asm") >= 0
    assert "Fig 3" in result.format_table()
    result = error_comparison.run(
        sampled=False, num_mixes=1, quanta=1, config=tiny_config
    )
    assert "Fig 2" in result.format_table()


def test_fig04_driver(tiny_config):
    result = fig04_error_distribution.run(num_mixes=2, quanta=1, config=tiny_config)
    for model in ("asm", "fst", "ptca"):
        hist = result.histogram(model)
        assert sum(hist) == pytest.approx(1.0)
    assert "band" in result.format_table()


def test_fig05_driver(tiny_config):
    result = fig05_prefetching.run(num_mixes=1, quanta=1, config=tiny_config)
    assert result.with_prefetch.mean_error("asm") >= 0
    assert "prefetch" in result.format_table()


def test_fig06_driver(tiny_config):
    result = fig06_latency_distribution.run(
        sampled=False, num_mixes=1, quanta=1, config=tiny_config
    )
    assert result.estimates["actual"]
    assert result.mean_abs_deviation("asm") >= 0
    assert "alone miss service" in result.format_table()


def test_fig07_driver(tiny_config):
    result = fig07_core_count.run(
        core_counts=(2, 4),
        mixes_per_count={2: 1, 4: 1},
        quanta=1,
        config=tiny_config,
    )
    assert set(result.surveys) == {2, 4}
    assert "cores" in result.format_table()


def test_fig08_driver(tiny_config):
    result = fig08_cache_size.run(
        sizes=(128 * 1024, 256 * 1024), num_mixes=1, quanta=1, config=tiny_config
    )
    assert set(result.surveys) == {128 * 1024, 256 * 1024}
    assert "128KB" in result.format_table()


def test_table3_driver(tiny_config):
    result = table3_quantum_epoch.run(
        quantum_lengths=(50_000, 100_000),
        epoch_lengths=(5_000, 10_000),
        num_mixes=1,
        config=tiny_config,
    )
    assert (100_000, 5_000) in result.errors
    assert "quantum" in result.format_table()


def test_sec64_driver(tiny_config):
    result = sec64_mise_vs_asm.run(num_mixes=2, quanta=1, config=tiny_config)
    assert result.survey.mean_error("mise") >= 0
    assert "cache_sensitive_apps" in result.format_table()


def test_db_workloads_driver(tiny_config):
    result = db_workloads.run(num_mixes=1, quanta=1, config=tiny_config)
    assert result.survey.mean_error("asm") >= 0


def test_fig09_driver(tiny_config):
    result = fig09_asm_cache.run(
        core_counts=(2,), mixes_per_count={2: 1}, quanta=1, config=tiny_config
    )
    assert (2, "asm-cache") in result.outcomes
    assert (2, "ucp") in result.outcomes


def test_fig09_llc_scaling_option(tiny_config):
    result = fig09_asm_cache.run(
        core_counts=(2,),
        mixes_per_count={2: 1},
        quanta=1,
        config=tiny_config,
        llc_bytes_per_core=64 * 1024,
    )
    assert (2, "asm-cache") in result.outcomes


def test_fig10_driver(tiny_config):
    result = fig10_asm_mem.run(
        core_counts=(2,), mixes_per_count={2: 1}, quanta=1, config=tiny_config
    )
    assert (2, "asm-mem") in result.outcomes
    assert (2, "parbs") in result.outcomes


def test_sec72_driver(tiny_config):
    result = sec72_combined.run(
        num_cores=2, num_mixes=1, quanta=1, config=tiny_config
    )
    assert "asm-cache-mem" in result.outcomes


def test_fig11_driver(tiny_config):
    result = fig11_qos.run(bounds=(2.0,), quanta=1, config=tiny_config)
    assert "naive-qos" in result.slowdowns
    assert "asm-qos-2.0" in result.slowdowns


def test_ablations_driver(tiny_config):
    result = ablations.run(
        num_mixes=1, quanta=1, sampling_sweep=(16, None), config=tiny_config
    )
    assert "ats-full" in result.errors
    assert "round-robin-epochs" in result.errors
    assert "no-queueing-correction" in result.errors
