"""Tests for the resource-management policies."""

import dataclasses

import pytest

from repro.config import scaled_config
from repro.harness.runner import AloneRunCache, run_workload
from repro.harness.system import System
from repro.models.asm import AsmModel
from repro.policies.asm_cache import AsmCachePolicy
from repro.policies.asm_mem import AsmMemPolicy
from repro.policies.combined import AsmCacheMemPolicy
from repro.policies.mcfq import McfqPolicy
from repro.policies.qos import AsmQosPolicy, NaiveQosPolicy
from repro.policies.ucp import UcpPolicy
from repro.workloads.mixes import make_mix


@pytest.fixture(scope="module")
def quick_config():
    return scaled_config().with_quantum(200_000, 5_000)


@pytest.fixture(scope="module")
def mixed_mix():
    # One cache-hungry, one streaming, one sensitive, one light.
    return make_mix(["mcf", "lbm", "ft", "h264ref"], seed=6)


def _system_with(policy_builder, config, mix):
    system = System(
        dataclasses.replace(config, num_cores=mix.num_cores),
        mix.traces(),
        seed=mix.seed,
    )
    asm = AsmModel(sampled_sets=16)
    asm.attach(system)
    policy = policy_builder(asm)
    policy.attach(system)
    return system, asm, policy


def test_ucp_installs_full_partition(quick_config, mixed_mix):
    system, _, policy = _system_with(
        lambda asm: UcpPolicy(), quick_config, mixed_mix
    )
    system.run_quantum()
    allocation = policy.last_allocation
    assert allocation is not None
    assert sum(allocation) == quick_config.llc.associativity
    assert all(w >= 1 for w in allocation)
    assert system.hierarchy.llc.partition == allocation


def test_ucp_gives_cache_hungry_app_more_ways(quick_config):
    mix = make_mix(["ft", "libquantum"], seed=7)
    system, _, policy = _system_with(lambda asm: UcpPolicy(), quick_config, mix)
    system.run_quantum()
    system.run_quantum()
    allocation = policy.last_allocation
    assert allocation[0] > allocation[1], "ft reuses; libquantum streams"


def test_asm_cache_partitions_and_projects(quick_config, mixed_mix):
    system, _, policy = _system_with(
        lambda asm: AsmCachePolicy(asm), quick_config, mixed_mix
    )
    system.run_quantum()
    assert sum(policy.last_allocation) == quick_config.llc.associativity
    assert len(policy.projected_slowdowns) == mixed_mix.num_cores
    assert all(s >= 1.0 for s in policy.projected_slowdowns)


def test_asm_cache_requires_attached_model(quick_config, mixed_mix):
    system = System(
        dataclasses.replace(quick_config, num_cores=4), mixed_mix.traces()
    )
    foreign_asm = AsmModel()
    policy = AsmCachePolicy(foreign_asm)
    with pytest.raises(ValueError):
        policy.attach(system)


def test_mcfq_partitions(quick_config, mixed_mix):
    system, _, policy = _system_with(
        lambda asm: McfqPolicy(), quick_config, mixed_mix
    )
    system.run_quantum()
    assert sum(policy.last_allocation) == quick_config.llc.associativity


def test_asm_mem_sets_epoch_weights(quick_config, mixed_mix):
    system, asm, _ = _system_with(
        lambda asm: AsmMemPolicy(asm), quick_config, mixed_mix
    )
    assert system.epoch_weights is None
    system.run_quantum()
    assert system.epoch_weights == asm.estimates_history[-1]


def test_combined_policy_sets_both(quick_config, mixed_mix):
    system, _, policy = _system_with(
        lambda asm: AsmCacheMemPolicy(asm), quick_config, mixed_mix
    )
    system.run_quantum()
    assert system.hierarchy.llc.partition is not None
    assert system.epoch_weights == policy.cache_policy.projected_slowdowns


def test_naive_qos_allocates_all_ways_immediately(quick_config, mixed_mix):
    system = System(
        dataclasses.replace(quick_config, num_cores=4),
        mixed_mix.traces(),
        seed=1,
    )
    policy = NaiveQosPolicy(target_core=2)
    policy.attach(system)
    partition = system.hierarchy.llc.partition
    assert partition[2] == quick_config.llc.associativity
    assert sum(partition) == quick_config.llc.associativity


def test_asm_qos_respects_bound_monotonicity(quick_config, mixed_mix):
    def target_ways(bound):
        system, _, policy = _system_with(
            lambda asm: AsmQosPolicy(asm, 0, bound), quick_config, mixed_mix
        )
        system.run_quantum()
        return policy.last_allocation[0]

    tight = target_ways(1.2)
    loose = target_ways(5.0)
    assert tight >= loose, "a tighter bound needs at least as many ways"


def test_asm_qos_validation(quick_config, mixed_mix):
    with pytest.raises(ValueError):
        AsmQosPolicy(AsmModel(), 0, 0.5)
    system = System(
        dataclasses.replace(quick_config, num_cores=4), mixed_mix.traces()
    )
    asm = AsmModel()
    asm.attach(system)
    with pytest.raises(ValueError):
        AsmQosPolicy(asm, 99, 2.0).attach(system)


def test_asm_cache_improves_fairness_over_nopart(quick_config):
    """End-to-end sanity: slowdown-aware partitioning should not hurt, and
    usually helps, unfairness on a cache-contended mix."""
    mix = make_mix(["mcf", "soplex", "ft", "lbm"], seed=9)
    cache = AloneRunCache()
    base = run_workload(mix, quick_config, quanta=3, alone_cache=cache)
    asm_cache = run_workload(
        mix,
        quick_config,
        quanta=3,
        alone_cache=cache,
        model_factories={"asm": lambda: AsmModel(sampled_sets=16)},
        policy_factories=[lambda models: AsmCachePolicy(models["asm"])],
    )
    assert asm_cache.max_slowdown() <= base.max_slowdown() * 1.10
