"""Unit tests for the DDR3 timing model."""

import pytest

from repro.config import DramConfig
from repro.mem.dram import Channel, DramMapping, service_request
from repro.mem.request import MemRequest


@pytest.fixture
def dram():
    return DramConfig()


@pytest.fixture
def channel(dram):
    return Channel(dram.banks_per_rank)


def _request(line_addr: int, core: int = 0) -> MemRequest:
    return MemRequest(core=core, line_addr=line_addr)


def _locate(request: MemRequest, mapping: DramMapping) -> None:
    request.channel, request.bank, request.row = mapping.locate(request.line_addr)


def test_mapping_row_locality(dram):
    mapping = DramMapping(dram)
    # Consecutive lines within one row map to the same (channel, bank, row).
    first = mapping.locate(0)
    for line in range(1, mapping.lines_per_row):
        assert mapping.locate(line) == first
    # The next row changes bank.
    nxt = mapping.locate(mapping.lines_per_row)
    assert nxt != first


def test_mapping_covers_all_banks(dram):
    mapping = DramMapping(dram)
    banks = {
        mapping.locate(row * mapping.lines_per_row)[1] for row in range(64)
    }
    assert banks == set(range(dram.banks_per_rank))


def test_closed_row_latency(dram, channel):
    mapping = DramMapping(dram)
    req = _request(0)
    _locate(req, mapping)
    completion, row_hit, conflict = service_request(channel, req, 0, dram)
    assert not row_hit and not conflict
    assert completion == dram.trcd + dram.cas_latency + dram.burst_time


def test_row_hit_latency(dram, channel):
    mapping = DramMapping(dram)
    first = _request(0)
    _locate(first, mapping)
    t1, _, _ = service_request(channel, first, 0, dram)
    second = _request(1)
    _locate(second, mapping)
    t2, row_hit, _ = service_request(channel, second, t1, dram)
    assert row_hit
    assert t2 - t1 == dram.cas_latency + dram.burst_time


def test_row_conflict_latency_and_attribution(dram, channel):
    mapping = DramMapping(dram)
    opener = _request(0, core=0)
    _locate(opener, mapping)
    t1, _, _ = service_request(channel, opener, 0, dram)

    # Another core hits the same bank, different row.
    lines_per_bank_stride = mapping.lines_per_row * dram.banks_per_rank
    conflicting = _request(lines_per_bank_stride, core=1)
    _locate(conflicting, mapping)
    assert conflicting.bank == opener.bank and conflicting.row != opener.row
    start = max(t1, dram.tras)
    t2, row_hit, conflict_other = service_request(channel, conflicting, start, dram)
    assert not row_hit
    assert conflict_other, "conflict caused by another core must be flagged"
    assert t2 - start >= dram.trp + dram.trcd + dram.cas_latency + dram.burst_time


def test_own_row_conflict_not_flagged(dram, channel):
    mapping = DramMapping(dram)
    stride = mapping.lines_per_row * dram.banks_per_rank
    a, b = _request(0, core=0), _request(stride, core=0)
    _locate(a, mapping)
    _locate(b, mapping)
    t1, _, _ = service_request(channel, a, 0, dram)
    _, _, conflict_other = service_request(channel, b, max(t1, dram.tras), dram)
    assert not conflict_other


def test_tras_delays_early_precharge(dram, channel):
    mapping = DramMapping(dram)
    stride = mapping.lines_per_row * dram.banks_per_rank
    a, b = _request(0), _request(stride)
    _locate(a, mapping)
    _locate(b, mapping)
    t1, _, _ = service_request(channel, a, 0, dram)
    # Issue the conflicting access immediately: precharge must wait for tRAS.
    t2, _, _ = service_request(channel, b, t1, dram)
    expected_precharge_start = max(t1, 0 + dram.tras)
    assert t2 >= expected_precharge_start + dram.trp + dram.trcd + dram.cas_latency


def test_bus_serialises_bank_parallel_accesses(dram, channel):
    mapping = DramMapping(dram)
    stride = mapping.lines_per_row  # next row -> next bank
    a, b = _request(0), _request(stride)
    _locate(a, mapping)
    _locate(b, mapping)
    assert a.bank != b.bank
    t1, _, _ = service_request(channel, a, 0, dram)
    t2, _, _ = service_request(channel, b, 0, dram)
    # Same activate+CAS latency, but the second burst queues on the bus.
    assert t2 == t1 + dram.burst_time


def test_request_latency_property(dram, channel):
    mapping = DramMapping(dram)
    req = _request(5)
    _locate(req, mapping)
    req.arrival_time = 10
    service_request(channel, req, 20, dram)
    assert req.latency == req.completion_time - 10
    fresh = _request(6)
    with pytest.raises(ValueError):
        _ = fresh.latency
