"""Tests for the analysis package (charts, paper targets, report)."""

import pytest

from repro.analysis.ascii_chart import bar_chart, grouped_bar_chart
from repro.analysis.paper_targets import PAPER_TARGETS, target_for
from repro.analysis.report import _FILE_TO_TARGET, build_report


def test_bar_chart_scales_to_peak():
    chart = bar_chart({"asm": 10.0, "fst": 20.0}, width=10)
    lines = chart.splitlines()
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10
    assert "20.00" in lines[1]


def test_bar_chart_zero_values():
    chart = bar_chart({"a": 0.0, "b": 0.0})
    assert "#" not in chart


def test_bar_chart_validation():
    with pytest.raises(ValueError):
        bar_chart({})
    with pytest.raises(ValueError):
        bar_chart({"a": -1.0})
    with pytest.raises(ValueError):
        bar_chart({"a": 1.0}, width=0)


def test_grouped_chart_shares_scale():
    chart = grouped_bar_chart(
        {"g1": {"a": 10.0}, "g2": {"a": 20.0}}, width=10
    )
    lines = [l for l in chart.splitlines() if "#" in l]
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10


def test_paper_targets_cover_every_experiment_file():
    for stem, key in _FILE_TO_TARGET.items():
        if key is not None:
            assert key in PAPER_TARGETS, stem


def test_target_for():
    fig3 = target_for("fig03")
    assert fig3 is not None
    assert fig3.numbers["ptca"] == pytest.approx(40.4)
    assert target_for("unknown") is None


def test_headline_paper_numbers():
    """Pin the transcribed headline numbers (typo guard)."""
    assert PAPER_TARGETS["fig02"].numbers == {
        "asm": 9.0, "ptca": 14.7, "fst": 18.5
    }
    assert PAPER_TARGETS["sec64"].numbers["mise"] == 22.0
    assert PAPER_TARGETS["fig04"].numbers["asm_max"] == 36.0


def test_build_report(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "fig02_error_unsampled.txt").write_text("table here\n")
    out = tmp_path / "REPORT.md"
    report = build_report(results, out)
    assert "fig02_error_unsampled" in report
    assert "table here" in report
    assert "Paper numbers" in report
    assert out.read_text() == report


def test_build_report_requires_outputs(tmp_path):
    empty = tmp_path / "results"
    empty.mkdir()
    with pytest.raises(FileNotFoundError):
        build_report(empty, output=None)
