"""Tests for the durability layer: atomic writes, checksummed stores,
chaos fault plans, supervised retry, and the campaign wiring."""

import errno
import json
import os

import pytest

from repro.config import scaled_config
from repro.durability.atomic import (
    DurableStream,
    append_line,
    atomic_write_text,
    durable_stream,
)
from repro.durability.chaos import (
    CHAOS_ENV_VAR,
    ChaosSpecError,
    FaultPlan,
    active_plan,
    set_plan,
)
from repro.durability.cli import campaign_main
from repro.durability.retry import (
    TRANSIENT_ERRORS,
    CircuitBreaker,
    DegradedCell,
    RetryPolicy,
    failure_signature,
)
from repro.durability.store import (
    ChecksummedLog,
    compact_log,
    envelope_line,
    header_line,
    payload_digest,
    read_log,
    repair_log,
    verify_log,
)
from repro.resilience.campaign import Campaign, CampaignStore
from repro.resilience.inject import (
    InjectedFault,
    exploding_model_factories,
    flaky_model_factories,
)
from repro.workloads.mixes import make_mix

CONFIG = scaled_config().with_quantum(50_000, 5_000)


@pytest.fixture(autouse=True)
def no_ambient_chaos(monkeypatch):
    """Keep every test hermetic: no plan installed, env var unset."""
    monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
    set_plan(None)
    yield
    set_plan(None)


def _mix(seed=11):
    return make_mix(["mcf", "bzip2"], seed=seed)


def _write_clean_log(path, payloads):
    log = ChecksummedLog(str(path))
    for payload in payloads:
        log.append(payload)
    return log


# ---------------------------------------------------------------------------
# chaos: fault-plan grammar and activation


def test_fault_plan_parse_roundtrip():
    spec = "kill:mid_record@runs.jsonl#2;io:enospc@alone.jsonl:0.25;seed:7"
    plan = FaultPlan.parse(spec)
    assert plan.kill_point == "mid_record"
    assert plan.kill_file == "runs.jsonl"
    assert plan.kill_nth == 2
    assert plan.io_fault == "enospc"
    assert plan.io_file == "alone.jsonl"
    assert plan.io_rate == 0.25
    assert plan.seed == 7
    assert FaultPlan.parse(plan.to_spec()) == plan


@pytest.mark.parametrize(
    "spec",
    [
        "kill:warp_core",
        "io:gamma_ray",
        "kill:mid_record#zero",
        "kill:mid_record#0",
        "io:enospc@f:1.5",
        "seed:banana",
        "explode:now",
    ],
)
def test_fault_plan_rejects_bad_specs(spec):
    with pytest.raises(ChaosSpecError):
        FaultPlan.parse(spec)


def test_active_plan_reads_env_and_programmatic_override(monkeypatch):
    assert active_plan() is None
    monkeypatch.setenv(CHAOS_ENV_VAR, "kill:after_append@x.jsonl")
    assert active_plan().kill_point == "after_append"
    installed = FaultPlan(io_fault="enospc")
    set_plan(installed)
    assert active_plan() is installed


def test_io_draw_is_deterministic_and_file_gated():
    plan = FaultPlan(io_fault="enospc", io_file="runs.jsonl", io_rate=0.5)
    draws = [plan.io_draw("append", "/a/runs.jsonl", s) for s in range(50)]
    assert draws == [
        plan.io_draw("append", "/b/runs.jsonl", s) for s in range(50)
    ]
    assert any(d == "enospc" for d in draws)
    assert any(d is None for d in draws)
    assert plan.io_draw("append", "/a/alone.jsonl", 1) is None


# ---------------------------------------------------------------------------
# atomic: append / snapshot / stream primitives


def test_append_line_appends_durably(tmp_path):
    path = tmp_path / "log.jsonl"
    append_line(str(path), "one")
    append_line(str(path), "two\n")
    assert path.read_text() == "one\ntwo\n"


def test_atomic_write_text_replaces_without_tmp_residue(tmp_path):
    path = tmp_path / "snap.json"
    atomic_write_text(str(path), "old\n")
    atomic_write_text(str(path), "new\n")
    assert path.read_text() == "new\n"
    assert os.listdir(tmp_path) == ["snap.json"]


def test_durable_stream_buffers_and_closes_idempotently(tmp_path):
    path = tmp_path / "trace.jsonl"
    stream = durable_stream(str(path), "w")
    stream.write("a\n")
    stream.write("b\n")
    assert not stream.closed
    stream.close()
    stream.close()  # idempotent
    assert stream.closed
    assert path.read_text() == "a\nb\n"
    with pytest.raises(ValueError, match="closed"):
        stream.write("c\n")
    with pytest.raises(ValueError, match="mode"):
        DurableStream(str(path), "r")


def test_injected_enospc_aborts_append(tmp_path):
    path = tmp_path / "log.jsonl"
    set_plan(FaultPlan(io_fault="enospc", io_rate=1.0))
    with pytest.raises(OSError) as excinfo:
        append_line(str(path), "doomed")
    assert excinfo.value.errno == errno.ENOSPC
    assert not path.exists()


def test_injected_partial_write_leaves_torn_prefix(tmp_path):
    path = tmp_path / "log.jsonl"
    append_line(str(path), "committed")
    set_plan(FaultPlan(io_fault="partial_write", io_rate=1.0))
    with pytest.raises(OSError) as excinfo:
        append_line(str(path), "torn-record-here")
    assert excinfo.value.errno == errno.EIO
    set_plan(None)
    text = path.read_text()
    assert text.startswith("committed\n")
    assert "torn-record-here" not in text  # only a prefix landed
    assert len(text) > len("committed\n")


def test_injected_slow_fsync_still_writes(tmp_path):
    path = tmp_path / "log.jsonl"
    set_plan(FaultPlan(io_fault="slow_fsync", io_rate=1.0, slow_fsync_s=0.0))
    append_line(str(path), "slow but sure")
    assert path.read_text() == "slow but sure\n"


# ---------------------------------------------------------------------------
# store: format, damage taxonomy, repair, compaction


def test_clean_log_roundtrip_and_header(tmp_path):
    path = tmp_path / "log.jsonl"
    payloads = [{"key": f"k{i}", "value": i} for i in range(5)]
    _write_clean_log(path, payloads)
    lines = path.read_text().strip().splitlines()
    assert lines[0] == header_line()
    assert json.loads(lines[1])["seq"] == 1
    loaded, report = read_log(str(path))
    assert loaded == payloads
    assert report.has_header
    assert report.intact_records == 5
    assert not report.damaged


def test_payload_digest_is_canonical():
    assert payload_digest({"b": 2, "a": 1}) == payload_digest({"a": 1, "b": 2})
    assert payload_digest({"a": 1}) != payload_digest({"a": 2})


def test_torn_tail_detected_and_truncated(tmp_path):
    path = tmp_path / "log.jsonl"
    _write_clean_log(path, [{"v": 1}, {"v": 2}])
    with open(path, "a") as handle:
        handle.write('{"seq": 3, "sha": "abcd')  # torn mid-record
    report = verify_log(str(path))
    assert report.damaged
    assert report.torn_tail is not None
    loaded, _ = read_log(str(path))
    assert loaded == [{"v": 1}, {"v": 2}]  # the tear never committed
    result = repair_log(str(path))
    assert result.rewritten and result.truncated_tail
    assert result.kept_records == 2
    assert result.quarantined == 0  # a torn tail is truncated, not kept
    assert not verify_log(str(path)).damaged


def test_checksum_mismatch_quarantined_without_data_loss(tmp_path):
    path = tmp_path / "log.jsonl"
    _write_clean_log(path, [{"v": 1}, {"v": 2}, {"v": 3}])
    lines = path.read_text().strip().splitlines()
    # Flip a payload bit in the middle record: sha no longer matches.
    lines[2] = lines[2].replace('"v": 2', '"v": 99')
    path.write_text("\n".join(lines) + "\n")
    report = verify_log(str(path))
    assert report.damaged and report.checksum_mismatches
    result = repair_log(str(path))
    assert result.quarantined == 1
    assert result.kept_records == 2
    quarantine = path.with_suffix(".jsonl.quarantine")
    assert quarantine.exists()
    assert '"v": 99' in quarantine.read_text()  # forensics preserved
    loaded, report = read_log(str(path))
    assert loaded == [{"v": 1}, {"v": 3}]
    assert not report.damaged


def test_verify_detects_every_synthetic_corruption(tmp_path):
    """Acceptance: 100% detection — corrupting any one record is caught."""
    payloads = [{"key": f"k{i}", "value": i} for i in range(8)]
    clean = tmp_path / "clean.jsonl"
    _write_clean_log(clean, payloads)
    clean_lines = clean.read_text().strip().splitlines()
    for victim in range(1, len(clean_lines)):  # every record line
        path = tmp_path / f"corrupt_{victim}.jsonl"
        lines = list(clean_lines)
        lines[victim] = lines[victim].replace('"value"', '"malice"')
        path.write_text("\n".join(lines) + "\n")
        assert verify_log(str(path)).damaged, f"line {victim} undetected"
        repaired = repair_log(str(path))
        assert repaired.kept_records == len(payloads) - 1
        assert not verify_log(str(path)).damaged


def test_sequence_gap_reported_not_fatal(tmp_path):
    path = tmp_path / "log.jsonl"
    with open(path, "w") as handle:
        handle.write(header_line() + "\n")
        handle.write(envelope_line(1, {"v": 1}) + "\n")
        handle.write(envelope_line(5, {"v": 5}) + "\n")
    report = verify_log(str(path))
    assert report.sequence_gaps == [(1, 5)]
    assert not report.damaged  # nothing local to fix
    loaded, _ = read_log(str(path))
    assert loaded == [{"v": 1}, {"v": 5}]


def test_legacy_v1_lines_load_and_upgrade_on_repair(tmp_path):
    path = tmp_path / "log.jsonl"
    with open(path, "w") as handle:
        handle.write('{"key": "a", "value": 1}\n')
        handle.write('{"key": "b", "value": 2}\n')
    loaded, report = read_log(str(path))
    assert loaded == [{"key": "a", "value": 1}, {"key": "b", "value": 2}]
    assert report.legacy_records == 2 and not report.has_header
    result = repair_log(str(path))
    assert result.rewritten
    report = verify_log(str(path))
    assert report.has_header
    assert report.intact_records == 2 and report.legacy_records == 0
    assert read_log(str(path))[0] == loaded


def test_repair_leaves_clean_files_alone(tmp_path):
    path = tmp_path / "log.jsonl"
    _write_clean_log(path, [{"v": 1}])
    before = path.read_text()
    result = repair_log(str(path))
    assert not result.rewritten
    assert path.read_text() == before


def test_compact_keeps_last_record_per_key_and_keyless(tmp_path):
    path = tmp_path / "log.jsonl"
    _write_clean_log(
        path,
        [
            {"key": "a", "value": 1},
            {"no_key": True},
            {"key": "b", "value": 2},
            {"key": "a", "value": 3},
        ],
    )

    def key_of(payload):
        key = payload.get("key")
        return key if isinstance(key, str) else None

    result = compact_log(str(path), key_of)
    assert result.dropped_duplicates == 1
    assert result.kept_records == 3
    loaded, _ = read_log(str(path))
    assert loaded == [
        {"no_key": True},
        {"key": "b", "value": 2},
        {"key": "a", "value": 3},
    ]


def test_checksummed_log_continues_sequence_across_reopen(tmp_path):
    path = tmp_path / "log.jsonl"
    log = _write_clean_log(path, [{"v": 1}, {"v": 2}])
    assert log.next_seq == 3
    reopened = ChecksummedLog(str(path))
    assert reopened.next_seq == 3
    assert reopened.append({"v": 3}) == 3
    loaded, report = read_log(str(path))
    assert loaded == [{"v": 1}, {"v": 2}, {"v": 3}]
    assert report.sequence_gaps == []


def test_checksummed_log_heals_torn_tail_before_appending(tmp_path):
    """Reopening over a mid-record tear (torn prefix, no trailing
    newline) must truncate it first — an 'a'-mode append would otherwise
    weld the new envelope onto the prefix into one corrupt line."""
    path = tmp_path / "log.jsonl"
    _write_clean_log(path, [{"v": 1}])
    with open(path, "a") as handle:
        handle.write('{"seq": 2, "sha": "ab')  # torn mid-record, no \n
    log = ChecksummedLog(str(path))
    assert log.next_seq == 2  # the torn record was never committed
    assert log.append({"v": 2}) == 2
    loaded, report = read_log(str(path))
    assert loaded == [{"v": 1}, {"v": 2}]
    assert not report.damaged


def test_checksummed_log_heals_tear_inside_first_line(tmp_path):
    """A tear inside the very first line (the header) truncates to an
    empty file; the next append must re-write the header."""
    path = tmp_path / "log.jsonl"
    path.write_text(header_line()[:10])  # torn header, no newline
    log = ChecksummedLog(str(path))
    assert log.append({"v": 1}) == 1
    loaded, report = read_log(str(path))
    assert loaded == [{"v": 1}]
    assert report.has_header and not report.damaged


def test_checksummed_log_never_reuses_damaged_or_gapped_seqs(tmp_path):
    path = tmp_path / "log.jsonl"
    bad = envelope_line(2, {"v": 2}).replace('"v": 2', '"v": 666')
    assert '"v": 666' in bad  # payload tampered, sha now stale
    with open(path, "w") as handle:
        handle.write(header_line() + "\n")
        handle.write(envelope_line(1, {"v": 1}) + "\n")
        handle.write(bad + "\n")  # checksum mismatch still owns seq 2
        handle.write(envelope_line(5, {"v": 5}) + "\n")  # gap 3-4
    log = ChecksummedLog(str(path))
    assert log.next_seq == 6  # past the high-water mark, not count+1
    assert log.append({"v": 6}) == 6
    report = verify_log(str(path))
    assert report.checksum_mismatches and report.sequence_gaps == [(1, 5)]
    assert report.sequence_regressions == []


def test_sequence_regression_reported_not_fatal(tmp_path):
    path = tmp_path / "log.jsonl"
    with open(path, "w") as handle:
        handle.write(header_line() + "\n")
        handle.write(envelope_line(4, {"v": 4}) + "\n")
        handle.write(envelope_line(2, {"v": 2}) + "\n")  # mixed-up file
        handle.write(envelope_line(5, {"v": 5}) + "\n")  # vs high-water 4
    report = verify_log(str(path))
    assert report.sequence_regressions == [(4, 2)]
    assert report.sequence_gaps == []  # 5 follows the high-water mark
    assert not report.damaged  # nothing local to fix
    assert "seq regressions" in report.summary()


def test_missing_file_reads_empty_and_repairs_to_nothing(tmp_path):
    path = str(tmp_path / "absent.jsonl")
    loaded, report = read_log(path)
    assert loaded == [] and not report.damaged
    assert not repair_log(path).rewritten
    assert not os.path.exists(path)


# ---------------------------------------------------------------------------
# retry: policy, breaker, degraded outcomes


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_s=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=2.0)
    with pytest.raises(ValueError):
        RetryPolicy(cell_budget_s=0)
    assert not RetryPolicy().supervised
    assert RetryPolicy(max_attempts=2).supervised


def test_retry_delay_is_deterministic_exponential_and_jittered():
    policy = RetryPolicy(max_attempts=5, backoff_s=0.1, jitter=0.5, seed=3)
    d1 = policy.delay_s(1, "cell")
    d2 = policy.delay_s(2, "cell")
    assert d1 == policy.delay_s(1, "cell")  # deterministic
    assert 0.075 <= d1 <= 0.125  # 0.1 * (1 +/- 0.25)
    assert 0.15 <= d2 <= 0.25  # doubled base
    assert policy.delay_s(1, "cell") != policy.delay_s(1, "other-cell")
    with pytest.raises(ValueError):
        policy.delay_s(0, "cell")


def test_retry_budget_gate():
    assert RetryPolicy().within_budget(1e9)  # no budget: always within
    policy = RetryPolicy(cell_budget_s=1.0)
    assert policy.within_budget(0.5)
    assert not policy.within_budget(1.0)


def test_circuit_breaker_trips_on_repeated_deterministic_failure():
    breaker = CircuitBreaker()
    breaker.record_failure("cell", "AssertionError", "boom")
    assert breaker.allows("cell")
    breaker.record_failure("cell", "AssertionError", "boom")
    assert not breaker.allows("cell")
    assert breaker.open_cells == ["cell"]
    assert "OPEN" in breaker.summary()
    breaker.record_success("cell")
    assert breaker.allows("cell")


def test_circuit_breaker_never_trips_on_transients():
    breaker = CircuitBreaker()
    for _ in range(10):
        breaker.record_failure("cell", "WorkerCrash", "exit 13")
    assert breaker.allows("cell")
    # A transient between two identical deterministic failures resets
    # the repeat count: the evidence chain is broken.
    breaker.record_failure("cell", "AssertionError", "boom")
    breaker.record_failure("cell", "WorkerCrash", "exit 13")
    breaker.record_failure("cell", "AssertionError", "boom")
    assert breaker.allows("cell")


def test_failure_signature_and_transient_set():
    assert failure_signature("E", "m") == failure_signature("E", "m")
    assert failure_signature("E", "m") != failure_signature("E", "n")
    assert "WorkerCrash" in TRANSIENT_ERRORS
    assert "WatchdogTimeout" in TRANSIENT_ERRORS


def test_degraded_cell_roundtrip_and_validation():
    cell = DegradedCell(
        experiment="t",
        variant="v",
        mix_name="m",
        mix_seed=1,
        cell_fingerprint="abc",
        reason="attempts_exhausted",
        attempts=3,
        last_error_type="InjectedFault",
        last_message="boom",
    )
    restored = DegradedCell.from_json(json.loads(json.dumps(cell.to_json())))
    assert restored == cell
    assert "attempts_exhausted" in cell.describe()
    # Stores written before the wall-clock field was dropped still load:
    # from_json filters to the current schema.
    legacy = {**cell.to_json(), "elapsed_s": 1.5}
    assert DegradedCell.from_json(legacy) == cell
    assert "elapsed_s" not in cell.to_json()
    with pytest.raises(ValueError, match="unknown degradation reason"):
        DegradedCell(**{**cell.to_json(), "reason": "gremlins"})


# ---------------------------------------------------------------------------
# campaign wiring: retries, degradation, supervisor metrics


def test_campaign_recovers_transient_failure_by_retry(tmp_path):
    sentinel = str(tmp_path / "sentinel")
    campaign = Campaign(
        "t", str(tmp_path / "store"),
        retry_policy=RetryPolicy(max_attempts=3, backoff_s=0.0, jitter=0.0),
    )
    result = campaign.run_mix(
        _mix(), CONFIG, quanta=1,
        model_factories=flaky_model_factories(sentinel, "raise"),
    )
    assert result is not None
    assert campaign.retried_cells == 1
    assert campaign.retry_attempts == 1
    assert campaign.failures == [] and campaign.degraded == []
    assert "1 recovered by retry (1 retry attempts)" in campaign.summary()


def test_campaign_circuit_breaker_stops_deterministic_retries(tmp_path):
    campaign = Campaign(
        "t", str(tmp_path / "store"), keep_going=True,
        retry_policy=RetryPolicy(max_attempts=9, backoff_s=0.0, jitter=0.0),
    )
    result = campaign.run_mix(
        _mix(), CONFIG, quanta=1,
        model_factories=exploding_model_factories(0),
    )
    assert result is None
    # trip_threshold=2: one retry proves the failure repeats, then the
    # circuit opens — the other 7 attempts are not burned.
    assert campaign.retry_attempts == 1
    assert len(campaign.degraded) == 1
    degraded = campaign.degraded[0]
    assert degraded.reason == "circuit_open"
    assert degraded.attempts == 2
    assert degraded.last_error_type == "InjectedFault"
    assert len(campaign.failures) == 1
    assert "1 DEGRADED" in campaign.summary()
    # The degradation and the final failure both persisted.
    store = CampaignStore(str(tmp_path / "store"))
    assert [c.reason for c in store.load_degraded()] == ["circuit_open"]
    assert len(store.load_failures()) == 1


def test_campaign_unsupervised_failure_raises_without_keep_going(tmp_path):
    campaign = Campaign("t", str(tmp_path / "store"))
    with pytest.raises(InjectedFault):
        campaign.run_mix(
            _mix(), CONFIG, quanta=1,
            model_factories=exploding_model_factories(0),
        )
    # Default policy is unsupervised: a failure is not a degradation.
    assert campaign.degraded == []
    assert len(campaign.failures) == 1


def test_retried_cell_metrics_match_uninterrupted_run(tmp_path):
    """Counters from a failed attempt must not leak into the retry: the
    metrics persisted for a retried cell are bit-identical to an
    uninterrupted run's."""
    sentinel = str(tmp_path / "sentinel")
    clean_dir = str(tmp_path / "clean")
    retried_dir = str(tmp_path / "retried")
    policy = RetryPolicy(max_attempts=3, backoff_s=0.0, jitter=0.0)
    mix = _mix()

    open(sentinel, "w").close()  # sentinel present: flaky never fires
    clean = Campaign("t", clean_dir, profile=True, retry_policy=policy)
    clean.run_mix(
        mix, CONFIG, quanta=2,
        model_factories=flaky_model_factories(sentinel, "raise"),
    )
    assert clean.retry_attempts == 0

    os.unlink(sentinel)  # sentinel absent: first attempt fails
    retried = Campaign("t", retried_dir, profile=True, retry_policy=policy)
    retried.run_mix(
        mix, CONFIG, quanta=2,
        model_factories=flaky_model_factories(sentinel, "raise"),
    )
    assert retried.retry_attempts == 1

    key = clean.run_key(mix, CONFIG, 2)
    clean_metrics = CampaignStore(clean_dir).get_metrics(key)
    retried_metrics = CampaignStore(retried_dir).get_metrics(key)
    assert clean_metrics, "profiled run persisted no metrics"
    assert retried_metrics == clean_metrics


def test_supervisor_metrics_persisted_in_store(tmp_path):
    sentinel = str(tmp_path / "sentinel")
    store_dir = str(tmp_path / "store")
    campaign = Campaign(
        "t", store_dir,
        retry_policy=RetryPolicy(max_attempts=3, backoff_s=0.0, jitter=0.0),
    )
    campaign.run_mix(
        _mix(), CONFIG, quanta=1,
        model_factories=flaky_model_factories(sentinel, "raise"),
    )
    snapshots = CampaignStore(store_dir).get_metrics("__supervisor__")
    assert snapshots, "supervisor counters not persisted"
    assert snapshots[-1]["supervisor.retried_cells"] == 1
    assert snapshots[-1]["supervisor.retry_attempts"] == 1


def test_campaign_store_survives_torn_tail(tmp_path):
    store_dir = str(tmp_path / "store")
    campaign = Campaign("t", store_dir)
    campaign.run_mix(_mix(), CONFIG, quanta=1)
    runs_path = os.path.join(store_dir, "runs.jsonl")
    with open(runs_path, "a") as handle:
        handle.write('{"seq": 99, "sha": "to')  # torn append
    resumed = Campaign("t", store_dir, resume=True)
    result = resumed.run_mix(_mix(), CONFIG, quanta=1)
    assert result is not None
    assert resumed.resumed == 1 and resumed.computed == 0


# ---------------------------------------------------------------------------
# CLI verbs (unit level; the subprocess path is in test_chaos_resume)


def test_campaign_cli_missing_store_exits_2(tmp_path, capsys):
    rc = campaign_main(["verify", str(tmp_path / "nope")])
    assert rc == 2
    assert "no such store" in capsys.readouterr().err


def test_campaign_cli_empty_store_exits_0(tmp_path, capsys):
    rc = campaign_main(["verify", str(tmp_path)])
    assert rc == 0
    assert "no store files" in capsys.readouterr().out


def test_campaign_cli_verify_repair_roundtrip(tmp_path, capsys):
    path = tmp_path / "runs.jsonl"
    _write_clean_log(path, [{"key": "a", "result": 1}])
    with open(path, "a") as handle:
        handle.write('{"seq": 2, "sha": "ab')
    assert campaign_main(["verify", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DAMAGED" in out and "repair" in out
    assert campaign_main(["repair", str(tmp_path)]) == 0
    assert "torn tail truncated" in capsys.readouterr().out
    assert campaign_main(["verify", str(tmp_path)]) == 0
    assert "intact" in capsys.readouterr().out
    # Quarantine files are never scanned as stores.
    (tmp_path / "runs.jsonl.quarantine").write_text("garbage\n")
    assert campaign_main(["verify", str(tmp_path)]) == 0
