"""Property-based tests (hypothesis) for core data structures and
invariants."""

import random as pyrandom

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.auxtag import AuxiliaryTagStore
from repro.cache.bloom import CountingBloomFilter
from repro.cache.cache import SetAssocCache
from repro.cache.shared_cache import SharedCache
from repro.config import CacheConfig, DramConfig
from repro.engine import Engine
from repro.mem.controller import MemoryController
from repro.mem.request import MemRequest
from repro.models.base import OutstandingTracker
from repro.policies.partition import lookahead_partition

SMALL = CacheConfig(size_bytes=4 * 1024, associativity=4, latency=1)  # 16 sets

lines = st.integers(min_value=0, max_value=400)
streams = st.lists(lines, min_size=1, max_size=400)


@given(streams)
@settings(max_examples=50, deadline=None)
def test_cache_occupancy_never_exceeds_capacity(stream):
    cache = SetAssocCache(SMALL)
    for line in stream:
        cache.access(line)
    for cache_set in cache.sets:
        assert cache_set.occupancy() <= SMALL.associativity
        tags = [line.tag for line in cache_set.lines]
        assert len(tags) == len(set(tags)), "no duplicate tags in a set"


@given(streams)
@settings(max_examples=50, deadline=None)
def test_cache_hits_plus_misses_equals_accesses(stream):
    cache = SetAssocCache(SMALL)
    for line in stream:
        cache.access(line)
    assert cache.hits + cache.misses == len(stream)


@given(streams)
@settings(max_examples=50, deadline=None)
def test_ats_equals_private_cache(stream):
    """The full ATS is, by definition, the app's alone cache image."""
    ats = AuxiliaryTagStore(SMALL)
    cache = SetAssocCache(SMALL)
    for line in stream:
        assert ats.access(line).hit == cache.access(line).hit


@given(streams)
@settings(max_examples=30, deadline=None)
def test_ats_utility_curve_monotone_and_bounded(stream):
    ats = AuxiliaryTagStore(SMALL)
    for line in stream:
        ats.access(line)
    curve = ats.utility_curve()
    assert curve[0] == 0.0
    assert all(a <= b + 1e-9 for a, b in zip(curve, curve[1:]))
    assert curve[-1] <= len(stream)


@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=100),
)
@settings(max_examples=50, deadline=None)
def test_bloom_no_false_negatives(keys):
    bloom = CountingBloomFilter(2048)
    for key in keys:
        bloom.insert(key)
    assert all(key in bloom for key in keys)


@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=60),
)
@settings(max_examples=50, deadline=None)
def test_bloom_insert_remove_roundtrip(keys):
    bloom = CountingBloomFilter(4096)
    for key in keys:
        bloom.insert(key)
    for key in keys:
        bloom.remove(key)
    # Counting filters guarantee full cleanup on exact multiset removal.
    assert bloom.load == 0.0


@given(
    st.integers(min_value=2, max_value=6),  # apps
    st.integers(min_value=8, max_value=32),  # ways
    st.integers(min_value=0, max_value=2 ** 31),
)
@settings(max_examples=60, deadline=None)
def test_lookahead_partition_total_and_bounds(num_apps, ways, seed):
    if num_apps > ways:
        return
    rng = pyrandom.Random(seed)
    curves = []
    for _ in range(num_apps):
        steps = sorted(rng.uniform(0, 100) for _ in range(ways + 1))
        curves.append(steps)
    allocation = lookahead_partition(curves, ways)
    assert sum(allocation) == ways
    assert all(1 <= w <= ways for w in allocation)


@given(
    st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 3)),
        min_size=0,
        max_size=60,
    )
)
@settings(max_examples=50, deadline=None)
def test_shared_cache_partition_owner_occupancy_converges(ops):
    """After enough partitioned insertions, each set respects quotas for
    owners that keep inserting."""
    llc = SharedCache(SMALL, num_cores=2)
    llc.set_partition([2, 2])
    for owner, set_offset in ops:
        # Construct an address in the chosen set with a unique-ish tag.
        line = set_offset + len(ops) * 16 + pyrandom.Random(owner).randrange(4) * 16
        llc.access(owner, line)
    for cache_set in llc.sets:
        assert cache_set.occupancy() <= SMALL.associativity


@given(st.lists(st.tuples(st.booleans(), st.integers(1, 50)), max_size=40))
@settings(max_examples=50, deadline=None)
def test_tracker_busy_never_exceeds_elapsed(events):
    tracker = OutstandingTracker()
    now = 0
    open_count = 0
    for is_start, delta in events:
        now += delta
        if is_start:
            tracker.start(now)
            open_count += 1
        elif open_count > 0:
            tracker.end(now)
            open_count -= 1
    assert 0 <= tracker.read(now) <= now


@given(
    st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 5000), st.booleans()),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=30, deadline=None)
def test_controller_serves_every_request(ops):
    """Every enqueued request eventually completes, exactly once."""
    engine = Engine()
    controller = MemoryController(engine, DramConfig(), num_cores=2)
    completed = []
    requests = []
    for core, line, is_write in ops:
        request = MemRequest(
            core=core,
            line_addr=line,
            is_write=is_write,
            callback=lambda r: completed.append(r),
        )
        requests.append(request)
        controller.enqueue(request)
    engine.run()
    assert len(completed) == len(requests)
    assert set(id(r) for r in completed) == set(id(r) for r in requests)
    for request in requests:
        assert request.completion_time is not None
        assert request.completion_time > request.arrival_time


@given(
    st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 2000)),
        min_size=2,
        max_size=40,
    )
)
@settings(max_examples=30, deadline=None)
def test_bank_service_windows_never_overlap(ops):
    """DRAM bank occupancy intervals are disjoint per bank."""
    engine = Engine()
    controller = MemoryController(engine, DramConfig(), num_cores=2)
    served = []
    for core, line in ops:
        request = MemRequest(core=core, line_addr=line,
                             callback=lambda r: served.append(r))
        controller.enqueue(request)
    engine.run()
    by_bank = {}
    for request in served:
        by_bank.setdefault((request.channel, request.bank), []).append(
            (request.issue_time, request.completion_time)
        )
    for intervals in by_bank.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1, "bank served two requests simultaneously"
