"""End-to-end chaos drills: a real campaign subprocess is SIGKILLed at
every named crash point (and fed injected IO faults), then resumed —
and the resumed results must be bit-identical to an uninterrupted
serial run.

This is the acceptance test of the durability layer: the matrix covers
(crash point x store file), the kills are real ``kill -9``s delivered by
the process to itself mid-write (no Python cleanup runs), and the
baseline digest comes from a separate pristine store.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DRIVER = Path(__file__).resolve().parent / "chaos_driver.py"


def run_driver(store, *, chaos="", resume=False, workers=1, faults=False):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_CHAOS", None)
    if chaos:
        env["REPRO_CHAOS"] = chaos
    cmd = [sys.executable, str(DRIVER), str(store)]
    if resume:
        cmd.append("--resume")
    if workers > 1:
        cmd.extend(["--workers", str(workers)])
    if faults:
        cmd.append("--faults")
    return subprocess.run(
        cmd, env=env, cwd=REPO_ROOT, capture_output=True, text=True
    )


def run_repro(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_CHAOS", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Digest of an uninterrupted serial run on a pristine store."""
    store = tmp_path_factory.mktemp("pristine")
    proc = run_driver(store)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip().splitlines()[-1]


#: (crash point x store file): every append-path crash point against
#: both campaign store files. mid_record uses #2 so the torn line is a
#: record (hit #1 is the store header), i.e. the worst realistic tear.
KILL_SPECS = [
    "kill:before_append@runs.jsonl#1",
    "kill:mid_record@runs.jsonl#2",
    "kill:after_append@runs.jsonl#1",
    "kill:before_append@alone.jsonl#1",
    "kill:mid_record@alone.jsonl#2",
    "kill:after_append@alone.jsonl#1",
]


@pytest.mark.parametrize("spec", KILL_SPECS)
def test_resume_after_sigkill_is_bit_identical(tmp_path, baseline, spec):
    store = tmp_path / "store"
    killed = run_driver(store, chaos=spec, workers=2)
    assert killed.returncode == -signal.SIGKILL, (
        f"{spec}: expected SIGKILL, got rc={killed.returncode}\n"
        f"{killed.stdout}{killed.stderr}"
    )
    resumed = run_driver(store, resume=True, workers=2)
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout.strip().splitlines()[-1] == baseline
    # Matching digests are not enough: the resumed *store* must also have
    # converged (torn tails healed, every recomputed record durably
    # committed), or the next resume would silently recompute again.
    verify = run_repro("campaign", "verify", str(store))
    assert verify.returncode == 0, verify.stdout + verify.stderr


@pytest.fixture(scope="module")
def faulted_baseline(tmp_path_factory):
    """Digest of an uninterrupted ``--faults`` run: profiled cells
    (metrics.jsonl populated) plus one deterministically-failing mix
    (degraded.jsonl populated)."""
    store = tmp_path_factory.mktemp("pristine-faults")
    proc = run_driver(store, faults=True)
    assert proc.returncode == 0, proc.stderr
    for name in ("metrics.jsonl", "degraded.jsonl", "failures.jsonl"):
        assert (store / name).exists(), f"--faults run never wrote {name}"
    return proc.stdout.strip().splitlines()[-1]


#: Crash points against the supervision stores: per-cell metrics
#: snapshots and the DegradedCell give-up records. As above, hit #1 is
#: the store header and #2 the first real record.
SUPERVISION_KILL_SPECS = [
    "kill:before_append@metrics.jsonl#1",
    "kill:mid_record@metrics.jsonl#2",
    "kill:after_append@metrics.jsonl#1",
    "kill:before_append@degraded.jsonl#1",
    "kill:mid_record@degraded.jsonl#2",
    "kill:after_append@degraded.jsonl#1",
]


@pytest.mark.parametrize("spec", SUPERVISION_KILL_SPECS)
def test_resume_after_sigkill_in_supervision_stores(
    tmp_path, faulted_baseline, spec
):
    store = tmp_path / "store"
    killed = run_driver(store, chaos=spec, faults=True)
    assert killed.returncode == -signal.SIGKILL, (
        f"{spec}: expected SIGKILL, got rc={killed.returncode}\n"
        f"{killed.stdout}{killed.stderr}"
    )
    resumed = run_driver(store, resume=True, faults=True)
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout.strip().splitlines()[-1] == faulted_baseline
    # Every store — including the one the kill tore — must verify clean.
    verify = run_repro("campaign", "verify", str(store))
    assert verify.returncode == 0, verify.stdout + verify.stderr


@pytest.mark.parametrize(
    "spec",
    [
        "io:enospc@runs.jsonl:1.0",
        "io:partial_write@runs.jsonl:1.0",
    ],
)
def test_resume_after_io_fault_is_bit_identical(tmp_path, baseline, spec):
    store = tmp_path / "store"
    faulted = run_driver(store, chaos=spec)
    # The injected OSError aborts the campaign (no keep_going) — a
    # Python death, not a SIGKILL.
    assert faulted.returncode == 1, faulted.stdout + faulted.stderr
    assert "injected" in faulted.stderr
    resumed = run_driver(store, resume=True)
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout.strip().splitlines()[-1] == baseline
    verify = run_repro("campaign", "verify", str(store))
    assert verify.returncode == 0, verify.stdout + verify.stderr


def test_verify_repair_cycle_after_torn_write(tmp_path, baseline):
    store = tmp_path / "store"
    killed = run_driver(store, chaos="kill:mid_record@runs.jsonl#2")
    assert killed.returncode == -signal.SIGKILL

    verify = run_repro("campaign", "verify", str(store))
    assert verify.returncode == 1, verify.stdout + verify.stderr
    assert "DAMAGED" in verify.stdout

    repair = run_repro("campaign", "repair", str(store))
    assert repair.returncode == 0, repair.stdout + repair.stderr

    verify_again = run_repro("campaign", "verify", str(store))
    assert verify_again.returncode == 0, verify_again.stdout
    assert "intact" in verify_again.stdout

    # The repaired store still resumes to the bit-identical baseline.
    resumed = run_driver(store, resume=True)
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout.strip().splitlines()[-1] == baseline


def test_compact_drops_superseded_checkpoints(tmp_path, baseline):
    store = tmp_path / "store"
    # Two full runs without --resume: every cell is recomputed and
    # re-appended, so each key appears twice in runs.jsonl.
    assert run_driver(store).returncode == 0
    assert run_driver(store).returncode == 0

    compact = run_repro("campaign", "compact", str(store))
    assert compact.returncode == 0, compact.stdout + compact.stderr
    assert "stale dropped" in compact.stdout

    runs = json.loads(
        "["
        + ",".join((store / "runs.jsonl").read_text().strip().splitlines())
        + "]"
    )
    keys = [r["payload"]["key"] for r in runs if "payload" in r]
    assert len(keys) == len(set(keys)) == 2

    resumed = run_driver(store, resume=True)
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout.strip().splitlines()[-1] == baseline
