"""Unit tests for the auxiliary tag store."""

import pytest

from repro.cache.auxtag import AuxiliaryTagStore
from repro.cache.cache import SetAssocCache
from repro.config import CacheConfig


@pytest.fixture
def config(small_cache_config):
    return small_cache_config  # 64 sets x 4 ways


def test_full_ats_mirrors_alone_cache(config):
    """An unsampled ATS fed one app's stream must agree, access by access,
    with a real cache running that app alone — the defining property."""
    import random

    rng = random.Random(1)
    ats = AuxiliaryTagStore(config)
    cache = SetAssocCache(config)
    for _ in range(5000):
        line = rng.randrange(500)
        outcome = ats.access(line)
        result = cache.access(line)
        assert outcome.sampled
        assert outcome.hit == result.hit


def test_way_hit_histogram_cumulates_to_hits(config):
    import random

    rng = random.Random(2)
    ats = AuxiliaryTagStore(config)
    for _ in range(3000):
        ats.access(rng.randrange(400))
    assert sum(ats.way_hits) == ats.sampled_hits
    # hits_with_ways at full associativity equals all hits.
    assert ats.hits_with_ways(config.associativity) == pytest.approx(
        ats.sampled_hits
    )


def test_utility_curve_monotone(config):
    import random

    rng = random.Random(3)
    ats = AuxiliaryTagStore(config)
    for _ in range(3000):
        ats.access(rng.randrange(600))
    curve = ats.utility_curve()
    assert len(curve) == config.associativity + 1
    assert curve[0] == 0.0
    assert all(curve[i] <= curve[i + 1] for i in range(len(curve) - 1))


def test_sampling_selects_subset_of_sets(config):
    ats = AuxiliaryTagStore(config, sampled_sets=8)
    assert ats.is_sampled
    assert ats.num_sampled_sets == 8
    sampled = [ats.access(s).sampled for s in range(config.num_sets)]
    assert sum(sampled) == 8
    # Sampled sets are stride-spaced.
    assert ats.access(0).sampled
    assert not ats.access(1).sampled


def test_sampled_scaling(config):
    import random

    rng = random.Random(4)
    ats = AuxiliaryTagStore(config, sampled_sets=8)
    for _ in range(8000):
        ats.access(rng.randrange(300))
    assert ats.total_accesses == 8000
    # scaled hits + scaled misses == total accesses
    assert ats.scaled_hits() + ats.scaled_misses() == pytest.approx(8000)
    # Hit fraction on a uniform stream extrapolates within a loose band.
    full = AuxiliaryTagStore(config)
    rng = random.Random(4)
    for _ in range(8000):
        full.access(rng.randrange(300))
    assert ats.hit_fraction() == pytest.approx(full.hit_fraction(), abs=0.1)


def test_sampled_hit_accuracy_against_full(config):
    """Section 4.4: sampling should track the full ATS hit fraction."""
    import random

    rng = random.Random(5)
    stream = [rng.randrange(1000) if rng.random() < 0.5 else rng.randrange(5000)
              for _ in range(20000)]
    full = AuxiliaryTagStore(config)
    sampled = AuxiliaryTagStore(config, sampled_sets=8)
    for line in stream:
        full.access(line)
        sampled.access(line)
    assert sampled.hit_fraction() == pytest.approx(full.hit_fraction(), abs=0.08)


def test_reset_stats_preserves_tag_state(config):
    ats = AuxiliaryTagStore(config)
    ats.access(7)
    ats.reset_stats()
    assert ats.total_accesses == 0
    outcome = ats.access(7)
    assert outcome.hit, "tag state must survive quantum resets"


def test_invalid_sampled_sets(config):
    with pytest.raises(ValueError):
        AuxiliaryTagStore(config, sampled_sets=0)


def test_hits_with_zero_ways_is_zero(config):
    ats = AuxiliaryTagStore(config)
    ats.access(1)
    ats.access(1)
    assert ats.hits_with_ways(0) == 0.0
