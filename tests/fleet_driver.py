"""Subprocess driver for the fleet chaos/SIGKILL drills.

Runs one small but real fleet — 3 nodes x 2 cores, 6 tenants, seeded
node kills, stragglers and telemetry faults — against a campaign store
and prints one line of canonical JSON: the fleet's deterministic digest
(every placement, migration, mode switch and invoice line). The parent
test harness runs this driver three ways:

* clean: the baseline digest plus the baseline ``fleet.jsonl`` /
  ``billing.jsonl`` byte streams;
* under ``REPRO_CHAOS`` with a kill plan targeting the fleet's keyed
  stores: the supervisor dies by SIGKILL mid-append, leaving a
  possibly-torn store behind;
* again on the same store with ``--resume``: must exit 0, print a
  digest bit-identical to the baseline, and leave ``fleet.jsonl`` /
  ``billing.jsonl`` byte-identical to the uninterrupted run's.
"""

import argparse
import json
import sys

from repro.cloud.fleet import FleetSupervisor
from repro.cloud.spec import FleetChaosSpec, FleetSpec
from repro.config import scaled_config
from repro.resilience.campaign import Campaign


def build_spec():
    return FleetSpec(
        name="drill",
        num_nodes=3,
        cores_per_node=2,
        rounds=24,
        quanta_per_round=1,
        seed=7,
        num_tenants=6,
        arrivals_per_round=3,
        tenant_quanta=2,
        chaos=FleetChaosSpec(
            node_kill_rate=0.25,
            straggler_rate=0.25,
            telemetry_rate=0.5,
            telemetry_class="dropped_read",
            seed=0,
        ),
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("store", help="campaign store directory")
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args(argv)

    config = scaled_config().with_quantum(50_000, 5_000)
    campaign = Campaign(
        "cloud-drill", args.store, resume=args.resume, keep_going=True
    )
    supervisor = FleetSupervisor(
        build_spec(), config, campaign, workers=args.workers
    )
    result = supervisor.run()
    print(json.dumps(result.digest(), sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
