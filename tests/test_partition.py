"""Unit tests for the look-ahead partitioning algorithm."""

import pytest

from repro.policies.partition import lookahead_partition


def _linear(slope, ways):
    return [slope * n for n in range(ways + 1)]


def test_allocation_sums_to_total():
    utilities = [_linear(1, 16), _linear(2, 16), _linear(3, 16)]
    allocation = lookahead_partition(utilities, 16)
    assert sum(allocation) == 16
    assert all(w >= 1 for w in allocation)


def test_higher_utility_wins_more_ways():
    utilities = [_linear(1, 8), _linear(10, 8)]
    allocation = lookahead_partition(utilities, 8)
    assert allocation[1] > allocation[0]


def test_flat_curve_gets_minimum():
    utilities = [[0.0] * 9, _linear(5, 8)]
    allocation = lookahead_partition(utilities, 8)
    assert allocation[0] == 1
    assert allocation[1] == 7


def test_lookahead_climbs_past_plateau():
    # App 0: no benefit until 4 ways, then a large step (non-convex).
    stepped = [0, 0, 0, 0, 100, 100, 100, 100, 100]
    gentle = _linear(5, 8)
    allocation = lookahead_partition([stepped, gentle], 8)
    # Greedy per-way would starve app 0; look-ahead must grant it 4 ways.
    assert allocation[0] >= 4


def test_min_ways_respected():
    utilities = [[0.0] * 17, _linear(1, 16)]
    allocation = lookahead_partition(utilities, 16, min_ways=2)
    assert allocation[0] >= 2


def test_validation_errors():
    with pytest.raises(ValueError):
        lookahead_partition([], 8)
    with pytest.raises(ValueError):
        lookahead_partition([[0, 1]], 8)  # wrong curve length
    with pytest.raises(ValueError):
        lookahead_partition([[0] * 9] * 10, 8)  # min_ways infeasible


def test_single_app_gets_everything():
    allocation = lookahead_partition([_linear(1, 4)], 4)
    assert allocation == [4]


def test_negative_utility_curves_supported():
    """ASM-Cache passes -slowdown curves; marginal gains still work."""
    curves = [
        [-5.0, -4.0, -3.5, -3.2, -3.1],  # improves quickly
        [-2.0, -1.99, -1.98, -1.97, -1.96],  # nearly flat
    ]
    allocation = lookahead_partition(curves, 4)
    assert sum(allocation) == 4
    assert allocation[0] > allocation[1]
