"""Integration tests for the memory hierarchy and system wiring."""

import dataclasses

import pytest

from repro.cpu.trace import TraceRecord
from repro.harness.system import System
from repro.workloads.mixes import make_mix


def _fixed_trace(lines, gap=10, writes=False):
    def generate():
        for line in lines:
            yield TraceRecord(gap=gap, line_addr=line, is_write=writes)

    return generate()


def _two_core_system(config, traces=None, **kwargs):
    config = dataclasses.replace(config, num_cores=2)
    if traces is None:
        traces = [
            _fixed_trace(range(0, 4000, 1)),
            _fixed_trace(range(1 << 20, (1 << 20) + 4000)),
        ]
    return System(config, traces, **kwargs)


def test_llc_hit_and_miss_accounting(small_system_config):
    config = dataclasses.replace(small_system_config, num_cores=1)
    # Touch 8 lines twice: 8 misses then 8 hits.
    lines = list(range(8)) + list(range(8))
    system = System(config, [_fixed_trace(lines, gap=50)], enable_epochs=False)
    system.run_until(100_000)
    assert system.hierarchy.demand_misses[0] == 8
    assert system.hierarchy.demand_hits[0] == 8


def test_secondary_miss_is_not_double_counted(small_system_config):
    config = dataclasses.replace(small_system_config, num_cores=1)
    # Two back-to-back accesses to one line: the second arrives while the
    # fill is in flight (gap 0 -> within DRAM latency).
    system = System(config, [_fixed_trace([7, 7], gap=0)], enable_epochs=False)
    system.run_until(100_000)
    assert system.hierarchy.demand_misses[0] == 1
    assert system.hierarchy.secondary_misses[0] == 1


def test_access_listeners_fire_per_demand_access(small_system_config):
    events = []
    system = _two_core_system(small_system_config)
    system.hierarchy.access_listeners.append(
        lambda core, line, w, hit, now: events.append((core, hit))
    )
    system.run_until(20_000)
    assert events
    assert {core for core, _ in events} == {0, 1}


def test_service_intervals_balance(small_system_config):
    starts = {"hit": 0, "miss": 0}
    ends = {"hit": 0, "miss": 0}

    def listener(core, is_hit, is_start, now):
        kind = "hit" if is_hit else "miss"
        if is_start:
            starts[kind] += 1
        else:
            ends[kind] += 1

    system = _two_core_system(small_system_config)
    system.hierarchy.service_listeners.append(listener)
    system.run_until(50_000)
    # Events may be in flight at the horizon, but ends never exceed starts.
    assert ends["hit"] <= starts["hit"]
    assert ends["miss"] <= starts["miss"]
    assert starts["miss"] > 0


def test_writebacks_reach_dram(small_system_config):
    config = dataclasses.replace(small_system_config, num_cores=1)
    # Write-heavy streaming through a cache-overflowing footprint forces
    # dirty evictions -> DRAM writes.
    lines = list(range(4096))
    system = System(
        config, [_fixed_trace(lines, gap=5, writes=True)], enable_epochs=False
    )
    writes_seen = []
    original = system.controller.enqueue

    def spy(request):
        if request.is_write:
            writes_seen.append(request)
        original(request)

    system.controller.enqueue = spy
    system.run_until(300_000)
    assert writes_seen, "dirty victims must be written back"


def test_epoch_driver_rotates_priority(small_system_config):
    system = _two_core_system(small_system_config, seed=1)
    owners = []
    system.epoch_listeners.append(lambda owner: owners.append(owner))
    system.run_until(small_system_config.epoch_cycles * 20)
    assert len(owners) >= 20
    assert set(owners) == {0, 1}


def test_round_robin_epochs(small_system_config):
    system = _two_core_system(
        small_system_config, seed=1, epoch_assignment="round_robin"
    )
    owners = []
    system.epoch_listeners.append(lambda owner: owners.append(owner))
    system.run_until(small_system_config.epoch_cycles * 10)
    assert owners[:6] == [0, 1, 0, 1, 0, 1]


def test_invalid_epoch_assignment(small_system_config):
    with pytest.raises(ValueError):
        _two_core_system(small_system_config, epoch_assignment="magic")


def test_epoch_weights_bias_assignment(small_system_config):
    system = _two_core_system(small_system_config, seed=2)
    system.set_epoch_weights([0.99, 0.01])
    owners = []
    system.epoch_listeners.append(lambda owner: owners.append(owner))
    system.run_until(small_system_config.epoch_cycles * 50)
    assert owners.count(0) > owners.count(1) * 3


def test_epoch_weight_validation(small_system_config):
    system = _two_core_system(small_system_config)
    with pytest.raises(ValueError):
        system.set_epoch_weights([1.0])  # wrong length
    with pytest.raises(ValueError):
        system.set_epoch_weights([0.0, 0.0])
    with pytest.raises(ValueError):
        system.set_epoch_weights([-1.0, 2.0])
    system.set_epoch_weights([2.0, 1.0])
    system.set_epoch_weights(None)


def test_trace_count_must_match_cores(small_system_config):
    with pytest.raises(ValueError):
        System(small_system_config, [_fixed_trace([1])])


def test_prefetcher_generates_llc_traffic(small_system_config):
    config = dataclasses.replace(
        small_system_config,
        num_cores=1,
        core=dataclasses.replace(small_system_config.core, prefetcher_enabled=True),
    )
    # A pure streaming trace trains the stride prefetcher immediately.
    system = System(config, [_fixed_trace(range(5000), gap=20)], enable_epochs=False)
    system.run_until(200_000)
    prefetcher = system.hierarchy.prefetchers[0]
    assert prefetcher is not None and prefetcher.issued > 0


def test_prefetching_improves_streaming_performance(small_system_config):
    def run(prefetch):
        config = dataclasses.replace(
            small_system_config,
            num_cores=1,
            core=dataclasses.replace(
                small_system_config.core, prefetcher_enabled=prefetch
            ),
        )
        system = System(
            config, [_fixed_trace(range(50_000), gap=20)], enable_epochs=False
        )
        system.run_until(300_000)
        return system.cores[0].committed_instructions(300_000)

    # The stream is DRAM-bandwidth-bound, so prefetching can only hide
    # latency, not add bandwidth: expect a modest but real speedup.
    assert run(True) > run(False) * 1.05


def test_committed_instructions_snapshot(small_system_config):
    system = _two_core_system(small_system_config)
    system.run_until(50_000)
    committed = system.committed_instructions()
    assert len(committed) == 2
    assert all(c > 0 for c in committed)
