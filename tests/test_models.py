"""Tests for the slowdown models (ASM, FST, PTCA, MISE, STFM)."""

import dataclasses

import pytest

from repro.config import scaled_config
from repro.harness.runner import run_workload
from repro.harness.system import System
from repro.models.asm import AsmModel
from repro.models.fst import FstModel
from repro.models.mise import MiseModel
from repro.models.perrequest import MlpEstimator
from repro.models.ptca import PtcaModel
from repro.models.stfm import StfmModel
from repro.workloads.mixes import make_mix

QUICK = dict(quanta=2)


@pytest.fixture(scope="module")
def quick_config():
    return scaled_config().with_quantum(200_000, 5_000)


@pytest.fixture(scope="module")
def heavy_mix():
    return make_mix(["mcf", "bzip2", "libquantum", "h264ref"], seed=1)


@pytest.fixture(scope="module")
def all_model_run(quick_config, heavy_mix):
    return run_workload(
        heavy_mix,
        quick_config,
        model_factories={
            "asm": lambda: AsmModel(sampled_sets=16),
            "asm_full": lambda: AsmModel(),
            "fst": lambda: FstModel(),
            "ptca": lambda: PtcaModel(),
            "mise": lambda: MiseModel(),
            "stfm": lambda: StfmModel(),
        },
        **QUICK,
    )


def test_every_model_emits_estimates_per_quantum(all_model_run):
    for record in all_model_run.records:
        for model in ("asm", "asm_full", "fst", "ptca", "mise", "stfm"):
            estimates = record.estimates[model]
            assert len(estimates) == 4
            assert all(e >= 1.0 for e in estimates)
            assert all(e <= 50.0 for e in estimates)


def test_asm_beats_noise_floor(all_model_run):
    """ASM should track actual slowdowns within the paper's ballpark."""
    assert all_model_run.mean_error("asm") < 30.0


def test_sampled_asm_close_to_full_asm(all_model_run):
    """Section 4.4: set sampling barely affects ASM."""
    sampled = all_model_run.mean_error("asm")
    full = all_model_run.mean_error("asm_full")
    assert abs(sampled - full) < 10.0


def test_models_detect_heavy_interference(quick_config, heavy_mix):
    result = run_workload(
        heavy_mix,
        quick_config,
        model_factories={"asm": lambda: AsmModel(sampled_sets=16)},
        **QUICK,
    )
    # The memory-intensive workload slows everyone down; ASM must see it.
    estimates = result.records[-1].estimates["asm"]
    assert max(estimates) > 1.5


def test_asm_near_one_for_isolated_like_run(quick_config):
    """Two compute-bound applications barely interfere: estimates ~1."""
    mix = make_mix(["povray", "povray"], seed=2)
    result = run_workload(
        mix,
        quick_config,
        model_factories={"asm": lambda: AsmModel(sampled_sets=16)},
        **QUICK,
    )
    estimates = result.records[-1].estimates["asm"]
    assert all(e < 1.6 for e in estimates)


def test_asm_car_for_ways_monotone(quick_config, heavy_mix):
    system = System(
        dataclasses.replace(quick_config, num_cores=4),
        heavy_mix.traces(),
        seed=1,
    )
    asm = AsmModel(sampled_sets=16)
    asm.attach(system)
    system.run_quantum()
    ways = quick_config.llc.associativity
    for core in range(4):
        curve = [asm.car_for_ways(core, n) for n in range(ways + 1)]
        # More ways -> more hits -> higher (or equal) access rate.
        assert all(a <= b + 1e-9 for a, b in zip(curve, curve[1:]))
        # slowdown_for_ways decreases with ways.
        slowdowns = [asm.slowdown_for_ways(core, n) for n in range(1, ways + 1)]
        assert all(a >= b - 1e-9 for a, b in zip(slowdowns, slowdowns[1:]))


def test_asm_quantum_reset_clears_counters(quick_config, heavy_mix):
    system = System(
        dataclasses.replace(quick_config, num_cores=4),
        heavy_mix.traces(),
        seed=1,
    )
    asm = AsmModel(sampled_sets=16)
    asm.attach(system)
    system.run_quantum()
    assert list(asm._accesses) == [0, 0, 0, 0]  # reset after the quantum hook
    assert len(asm.estimates_history) == 1


def test_fst_filter_modes(quick_config, heavy_mix):
    result = run_workload(
        heavy_mix,
        quick_config,
        model_factories={
            "exact": lambda: FstModel(filter_counters=None),
            "bloom": lambda: FstModel(filter_counters=256),
        },
        **QUICK,
    )
    # Both run; the finite filter may alias but must stay in bounds.
    for record in result.records:
        assert all(1.0 <= e <= 50.0 for e in record.estimates["bloom"])


def test_ptca_sampling_degrades_accuracy_more_than_asm(quick_config):
    """Figure 3's core contrast, as a coarse invariant."""
    mix = make_mix(["soplex", "ft", "omnetpp", "gcc"], seed=3)
    result = run_workload(
        mix,
        quick_config,
        model_factories={
            "ptca_full": lambda: PtcaModel(sampled_sets=None),
            "ptca_sampled": lambda: PtcaModel(sampled_sets=16),
            "asm_full": lambda: AsmModel(sampled_sets=None),
            "asm_sampled": lambda: AsmModel(sampled_sets=16),
        },
        quanta=3,
    )
    ptca_delta = abs(
        result.mean_error("ptca_sampled") - result.mean_error("ptca_full")
    )
    asm_delta = abs(
        result.mean_error("asm_sampled") - result.mean_error("asm_full")
    )
    assert asm_delta <= ptca_delta + 5.0


def test_mise_blind_to_cache_contention(quick_config):
    """MISE underestimates cache-sensitive applications' slowdowns
    relative to ASM (Section 6.4)."""
    mix = make_mix(["ft", "soplex", "xalancbmk", "dealII"], seed=5)
    result = run_workload(
        mix,
        quick_config,
        model_factories={
            "asm": lambda: AsmModel(sampled_sets=16),
            "mise": lambda: MiseModel(),
        },
        quanta=3,
    )
    last = result.records[-1]
    # On a cache-heavy workload MISE's estimates sit below ASM's.
    assert sum(last.estimates["mise"]) < sum(last.estimates["asm"]) + 1.0


def test_mlp_estimator():
    mlp = MlpEstimator()
    mlp.start(0)
    mlp.start(0)
    mlp.end(10)
    mlp.end(20)
    # integral = 2*10 + 1*10 = 30 over 20 busy cycles
    assert mlp.parallelism(20) == pytest.approx(1.5)
    mlp.reset(20)
    assert mlp.parallelism(25) == 1.0


def test_stfm_memory_only_estimates(quick_config, all_model_run):
    for record in all_model_run.records:
        stfm = record.estimates["stfm"]
        assert all(e >= 1.0 for e in stfm)
