"""Tests for the resilience subsystem: fault isolation, invariant guards,
checkpoint/resume and the quantum watchdog."""

import json

import pytest

from repro.config import scaled_config
from repro.harness.runner import run_workload
from repro.models.asm import AsmModel
from repro.resilience import (
    Campaign,
    InvariantChecker,
    InvariantViolation,
    RunFailure,
    config_fingerprint,
    rebuild_mix,
    replay_failure,
    stable_hash,
)
from repro.resilience.campaign import CampaignStore, result_to_json
from repro.resilience.inject import (
    CorruptingTrace,
    CounterCorruptionInjector,
    EngineStallInjector,
    ExplodingModel,
    InjectedFault,
    SpinInjector,
    TraceFaultMix,
)
from repro.resilience.watchdog import WatchdogStall, WatchdogTimeout
from repro.workloads.mixes import make_mix


@pytest.fixture()
def config():
    return scaled_config().with_quantum(100_000, 5_000)


def _mixes(n=3, seed=5):
    names = [["mcf", "bzip2"], ["ft", "libquantum"], ["gcc", "lbm"]]
    return [make_mix(names[i % 3], seed=seed + i) for i in range(n)]


# ---------------------------------------------------------------------------
# fingerprints / failure records


def test_stable_hash_is_deterministic(config):
    assert stable_hash((1, "a")) == stable_hash((1, "a"))
    assert stable_hash((1, "a")) != stable_hash((1, "b"))
    assert config_fingerprint(config) == config_fingerprint(config)
    assert config_fingerprint(config) != config_fingerprint(
        config.with_llc_size(128 * 1024)
    )


def test_run_failure_roundtrip_and_rebuild(config):
    mix = _mixes(1)[0]
    try:
        raise RuntimeError("boom")
    except RuntimeError as exc:
        failure = RunFailure.from_exception(
            exc, experiment="t", variant="v", mix=mix, config=config, quanta=2
        )
    assert failure.error_type == "RuntimeError"
    assert "boom" in failure.message
    assert "RuntimeError" in failure.traceback
    restored = RunFailure.from_json(json.loads(json.dumps(failure.to_json())))
    assert restored == failure
    rebuilt = rebuild_mix(restored)
    assert rebuilt == mix


def test_replay_failure_reproduces_the_fault(config):
    mix = TraceFaultMix.wrap(_mixes(1)[0], good_records=50)
    campaign = Campaign("t", keep_going=True)
    assert campaign.run_mix(mix, config, quanta=1) is None
    failure = campaign.failures[0]
    # The record rebuilds the *clean* mix; replaying proves the platform
    # is fine and the fault was in the injected trace.
    result = replay_failure(failure, config)
    assert len(result.records) == 1
    with pytest.raises(ValueError, match="fingerprint mismatch"):
        replay_failure(failure, config.with_llc_size(128 * 1024))


# ---------------------------------------------------------------------------
# fault isolation


def test_keep_going_loses_only_the_faulty_mix(config):
    mixes = _mixes(3)
    mixes[1] = TraceFaultMix.wrap(mixes[1], good_records=50)
    campaign = Campaign("iso", keep_going=True)
    results = [campaign.run_mix(m, config, quanta=1) for m in mixes]
    assert results[0] is not None and results[2] is not None
    assert results[1] is None
    assert campaign.computed == 2
    assert len(campaign.failures) == 1
    failure = campaign.failures[0]
    assert failure.error_type == "InjectedFault"
    assert failure.mix_name == mixes[1].name
    table = campaign.failure_summary()
    assert mixes[1].name in table and "InjectedFault" in table
    assert "2 computed" in campaign.summary()
    assert "1 FAILED" in campaign.summary()


def test_without_keep_going_the_fault_propagates(config):
    mix = TraceFaultMix.wrap(_mixes(1)[0], good_records=50)
    campaign = Campaign("iso")
    with pytest.raises(InjectedFault):
        campaign.run_mix(mix, config, quanta=1)
    assert len(campaign.failures) == 1  # still recorded


def test_exploding_model_is_captured(config):
    campaign = Campaign("model", keep_going=True)
    result = campaign.run_mix(
        _mixes(1)[0],
        config,
        quanta=1,
        model_factories={"exploding": lambda: ExplodingModel(explode_at=0)},
    )
    assert result is None
    assert campaign.failures[0].error_type == "InjectedFault"


def test_corrupt_trace_record_is_rejected_at_fetch(config):
    mix = TraceFaultMix.wrap(_mixes(1)[0], good_records=50, mode="yield")
    with pytest.raises(ValueError, match="corrupt trace record"):
        run_workload(mix, config, quanta=1)


# ---------------------------------------------------------------------------
# checkpoint / resume


def test_resume_skips_completed_mixes_byte_for_byte(config, tmp_path):
    store = str(tmp_path / "store")
    mixes = _mixes(2)
    first = Campaign("ck", store)
    originals = [first.run_mix(m, config, quanta=2) for m in mixes]
    assert first.computed == 2

    second = Campaign("ck", store, resume=True)
    resumed = [second.run_mix(m, config, quanta=2) for m in mixes]
    assert second.computed == 0 and second.resumed == 2
    for original, again in zip(originals, resumed):
        assert json.dumps(result_to_json(original)) == json.dumps(
            result_to_json(again)
        )
        assert again.mix == original.mix
        assert again.records == original.records


def test_resume_recomputes_only_the_failed_mix(config, tmp_path):
    store = str(tmp_path / "store")
    mixes = _mixes(3)
    faulty = list(mixes)
    faulty[1] = TraceFaultMix.wrap(mixes[1], good_records=50)
    first = Campaign("ck", store, keep_going=True)
    for m in faulty:
        first.run_mix(m, config, quanta=1)
    assert first.computed == 2 and len(first.failures) == 1

    # Re-run with the fixed (clean) mix list: only the failed cell computes.
    second = Campaign("ck", store, resume=True)
    results = [second.run_mix(m, config, quanta=1) for m in mixes]
    assert all(r is not None for r in results)
    assert second.resumed == 2 and second.computed == 1


def test_resume_distinguishes_variant_and_quanta(config, tmp_path):
    store = str(tmp_path / "store")
    mix = _mixes(1)[0]
    first = Campaign("ck", store)
    first.run_mix(mix, config, quanta=1, variant="a")
    second = Campaign("ck", store, resume=True)
    second.run_mix(mix, config, quanta=1, variant="b")
    second.run_mix(mix, config, quanta=2, variant="a")
    assert second.resumed == 0 and second.computed == 2


def test_persistent_alone_cache_survives_restart(config, tmp_path):
    store = str(tmp_path / "store")
    mix = _mixes(1)[0]
    first = Campaign("ck", store)
    cache1 = first.alone_cache()
    profile = cache1.get(mix, 0, config, 10_000)
    second = Campaign("ck", store)
    cache2 = second.alone_cache()
    assert len(cache2) == 0
    again = cache2.get(mix, 0, config, 10_000)
    assert again.checkpoint_interval == profile.checkpoint_interval
    assert again.instructions == profile.instructions


def test_store_skips_torn_trailing_line(tmp_path):
    root = str(tmp_path / "store")
    store = CampaignStore(root)
    store.put_run("k1", {"mix": {}, "records": []})
    runs_path = tmp_path / "store" / "runs.jsonl"
    with open(runs_path, "a") as handle:
        handle.write('{"key": "k2", "result": {"trunc')  # torn write
    reloaded = CampaignStore(root)
    assert reloaded.get_run("k1") == {"mix": {}, "records": []}
    assert reloaded.get_run("k2") is None
    assert len(reloaded) == 1


# ---------------------------------------------------------------------------
# invariant guards


def test_invariant_checker_passes_on_healthy_run(config):
    result = run_workload(
        _mixes(1)[0],
        config,
        quanta=2,
        model_factories={"asm": lambda: AsmModel(sampled_sets=16)},
        check_invariants=True,
    )
    assert len(result.records) == 2


def test_invariant_checker_catches_corrupted_cache_counter(config):
    corrupt = CounterCorruptionInjector(
        50_000, lambda system: _bump_hits(system)
    )
    with pytest.raises(InvariantViolation, match="shared_cache"):
        run_workload(
            _mixes(1)[0],
            config,
            quanta=1,
            check_invariants=True,
            system_hooks=[corrupt.attach],
        )


def _bump_hits(system):
    system.hierarchy.llc.hits[0] += 17


def test_invariants_off_by_default(config):
    corrupt = CounterCorruptionInjector(50_000, _bump_hits)
    result = run_workload(
        _mixes(1)[0], config, quanta=1, system_hooks=[corrupt.attach]
    )
    assert len(result.records) == 1  # corruption goes unnoticed


def test_invariant_violation_names_component_and_cycle():
    violation = InvariantViolation("asm", 1234, "broken")
    assert violation.component == "asm"
    assert violation.cycle == 1234
    assert "[asm @ cycle 1234] broken" in str(violation)


def test_campaign_captures_invariant_violation(config):
    mix = _mixes(1)[0]
    campaign = Campaign("inv", keep_going=True, check_invariants=True)
    result = campaign.run_mix(
        mix,
        config,
        quanta=1,
        model_factories={"asm": lambda: AsmModel(sampled_sets=16)},
        system_hooks=[
            CounterCorruptionInjector(
                50_000, lambda s: _corrupt_demand(s)
            ).attach
        ],
    )
    assert result is None
    assert campaign.failures[0].error_type == "InvariantViolation"
    assert "shared_cache" in campaign.failures[0].message


def _corrupt_demand(system):
    # Demand-side counterpart of _bump_hits: the hierarchy claims demand
    # hits the functional cache never saw.
    system.hierarchy.demand_hits[0] += 3


# ---------------------------------------------------------------------------
# watchdog


def test_watchdog_catches_stopped_engine(config):
    stall = EngineStallInjector(at_cycle=40_000)
    with pytest.raises(WatchdogStall, match="stopped mid-quantum"):
        run_workload(
            _mixes(1)[0], config, quanta=1, system_hooks=[stall.attach]
        )


def test_watchdog_failure_carries_diagnosis(config):
    campaign = Campaign("wd", keep_going=True)
    result = campaign.run_mix(
        _mixes(1)[0],
        config,
        quanta=1,
        system_hooks=[EngineStallInjector(at_cycle=40_000).attach],
    )
    assert result is None
    failure = campaign.failures[0]
    assert failure.error_type == "WatchdogStall"
    assert failure.diagnosis["quantum"] == 0
    assert failure.diagnosis["cycle"] == 100_000
    assert len(failure.diagnosis["committed_delta"]) == 2


def test_wall_clock_budget_aborts_live_locked_loop(config):
    spin = SpinInjector(at_cycle=10_000, forever=True)
    with pytest.raises(WatchdogTimeout):
        run_workload(
            _mixes(1)[0],
            config,
            quanta=1,
            wall_clock_budget_s=0.2,
            system_hooks=[spin.attach],
        )


def test_corrupting_trace_modes():
    inner = iter(())
    trace = CorruptingTrace(inner, good_records=0, mode="yield")
    record = next(trace)
    assert record.gap == -1 and record.line_addr == -1
    with pytest.raises(ValueError):
        CorruptingTrace(inner, 0, mode="nope")
    with pytest.raises(InjectedFault):
        next(CorruptingTrace(inner, good_records=0))
