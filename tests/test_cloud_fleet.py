"""End-to-end fleet drills: determinism, worker crashes, SIGKILL resume.

Three layers of evidence that the fleet tier is fault-tolerant without
giving up bit-level reproducibility:

* **replay determinism** — two same-seed fleet runs produce identical
  digests (every placement, migration, mode switch and invoice line),
  and identical durable byte streams when storing;
* **worker crashes** — a parallel fleet whose node cell hard-kills a
  worker process once (the retryable ``WorkerCrash`` shape) finishes
  bit-identical to a crash-free serial run;
* **supervisor SIGKILL** — a real fleet subprocess is killed by
  ``REPRO_CHAOS`` mid-append to its keyed stores, then resumed: the
  digest and the ``fleet.jsonl``/``billing.jsonl`` byte streams must
  match an uninterrupted run, ``repro campaign verify`` must pass, and
  the graceful-degradation invariant (naive placement exactly when
  fleet confidence sits below the policy floor) must hold on the
  records read back from disk.
"""

import json
import math
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cloud.fleet import FleetSupervisor
from repro.cloud.spec import FleetChaosSpec, FleetSpec
from repro.config import scaled_config
from repro.durability.retry import RetryPolicy
from repro.durability.store import KeyedLog
from repro.resilience.campaign import Campaign
from repro.resilience.inject import flaky_node_model_factories

REPO_ROOT = Path(__file__).resolve().parent.parent
DRIVER = Path(__file__).resolve().parent / "fleet_driver.py"

CONFIG = scaled_config().with_quantum(50_000, 5_000)

CHAOS = FleetChaosSpec(
    node_kill_rate=0.2, straggler_rate=0.2, telemetry_rate=0.4, seed=0
)


def small_spec(**overrides):
    base = dict(
        name="small",
        num_nodes=2,
        cores_per_node=2,
        rounds=8,
        quanta_per_round=1,
        seed=3,
        num_tenants=4,
        arrivals_per_round=2,
        tenant_quanta=1,
        chaos=CHAOS,
    )
    base.update(overrides)
    return FleetSpec(**base)


def run_fleet(spec, store_dir=None, *, workers=1, resume=False, policy=None):
    campaign = Campaign(
        f"cloud-{spec.name}",
        store_dir,
        resume=resume,
        keep_going=True,
        retry_policy=policy or RetryPolicy(),
    )
    return FleetSupervisor(spec, CONFIG, campaign, workers=workers).run()


# -- replay determinism -------------------------------------------------

def test_same_seed_replay_is_bit_identical():
    first = run_fleet(small_spec())
    second = run_fleet(small_spec())
    assert first.digest() == second.digest()
    assert len(first.completed) == 4  # the whole stream was served


def test_replay_writes_identical_placement_and_billing_logs(tmp_path):
    store_a = tmp_path / "a"
    store_b = tmp_path / "b"
    run_fleet(small_spec(), str(store_a))
    run_fleet(small_spec(), str(store_b))
    for name in ("fleet.jsonl", "billing.jsonl"):
        assert (store_a / name).read_bytes() == (store_b / name).read_bytes()


# -- worker crashes -----------------------------------------------------

def test_parallel_fleet_with_worker_crash_matches_serial(tmp_path):
    # Serial leg: the sentinel pre-exists, so the flaky model never
    # fires (a crash in serial mode would take the test process down).
    serial_sentinel = tmp_path / "serial-sentinel"
    serial_sentinel.write_text("disarmed\n")
    spec = small_spec(
        model_builder=flaky_node_model_factories,
        model_builder_args=(str(serial_sentinel), "kill"),
    )
    serial = run_fleet(spec)

    # Parallel leg: fresh sentinel — the first worker to run a node cell
    # hard-kills itself (WorkerCrash), the supervised retry recomputes
    # the cell, and the fleet must still match the serial run exactly.
    crash_sentinel = tmp_path / "crash-sentinel"
    spec = small_spec(
        model_builder=flaky_node_model_factories,
        model_builder_args=(str(crash_sentinel), "kill"),
    )
    policy = RetryPolicy(max_attempts=3, backoff_s=0.0, jitter=0.0)
    parallel = run_fleet(spec, workers=2, policy=policy)

    assert crash_sentinel.exists()  # the crash actually fired
    assert parallel.digest() == serial.digest()


# -- graceful degradation -----------------------------------------------

def test_degrades_to_naive_exactly_below_confidence_floor():
    spec = small_spec(rounds=16, num_tenants=6, tenant_quanta=2)
    result = run_fleet(spec)
    assert result.rounds, "fleet ran no rounds"
    for record in result.rounds:
        assert (record["mode"] == "naive") == (
            record["confidence_in"] < spec.confidence_floor
        )
    assert result.asm_rounds + result.naive_rounds == len(result.rounds)
    # The chaos plan must actually have bitten for this to mean much.
    assert result.node_kills > 0
    assert result.degraded_node_rounds > 0


# -- supervisor SIGKILL + resume (subprocess drills) --------------------

def run_driver(store, *, chaos="", resume=False, workers=1):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_CHAOS", None)
    if chaos:
        env["REPRO_CHAOS"] = chaos
    cmd = [sys.executable, str(DRIVER), str(store)]
    if resume:
        cmd.append("--resume")
    if workers > 1:
        cmd.extend(["--workers", str(workers)])
    return subprocess.run(
        cmd, env=env, cwd=REPO_ROOT, capture_output=True, text=True
    )


def run_repro(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_CHAOS", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


@pytest.fixture(scope="module")
def fleet_baseline(tmp_path_factory):
    """Digest and keyed-store bytes of an uninterrupted drill run."""
    store = tmp_path_factory.mktemp("fleet-pristine")
    proc = run_driver(store)
    assert proc.returncode == 0, proc.stderr
    return {
        "digest": proc.stdout.strip().splitlines()[-1],
        "fleet": (store / "fleet.jsonl").read_bytes(),
        "billing": (store / "billing.jsonl").read_bytes(),
    }


#: Crash points against the fleet's keyed stores. mid_record uses #2 so
#: the torn line is a record (hit #1 is the store header).
FLEET_KILL_SPECS = [
    "kill:before_append@fleet.jsonl#1",
    "kill:mid_record@fleet.jsonl#2",
    "kill:after_append@fleet.jsonl#3",
    "kill:mid_record@billing.jsonl#2",
    "kill:after_append@billing.jsonl#1",
]


def check_fleet_store_integrity(store, baseline):
    """Resumed drill stores must be byte-identical, verified, and sane."""
    assert (store / "fleet.jsonl").read_bytes() == baseline["fleet"]
    assert (store / "billing.jsonl").read_bytes() == baseline["billing"]
    verify = run_repro("campaign", "verify", str(store))
    assert verify.returncode == 0, verify.stdout + verify.stderr

    # Graceful degradation read back from disk: naive placement exactly
    # when the round opened below the confidence floor.
    spec = FleetSpec()  # the policy floor is spec-level, drill uses default
    rounds = KeyedLog(str(store / "fleet.jsonl")).records()
    assert rounds
    for record in rounds:
        assert (record["mode"] == "naive") == (
            record["confidence_in"] < spec.confidence_floor
        )

    # Zero corrupted billing records: every invoice line read back must
    # be finite, non-negative, and carry a valid decision basis.
    billing = KeyedLog(str(store / "billing.jsonl")).records()
    assert billing
    for record in billing:
        assert record["basis"] in ("estimate", "bound")
        assert math.isfinite(record["charge"]) and record["charge"] >= 0
        assert math.isfinite(record["effective_slowdown"])
        assert record["effective_slowdown"] >= 1.0


@pytest.mark.parametrize("spec", FLEET_KILL_SPECS)
def test_fleet_resume_after_sigkill_is_bit_identical(
    tmp_path, fleet_baseline, spec
):
    store = tmp_path / "store"
    killed = run_driver(store, chaos=spec)
    assert killed.returncode == -signal.SIGKILL, (
        f"{spec}: expected SIGKILL, got rc={killed.returncode}\n"
        f"{killed.stdout}{killed.stderr}"
    )
    resumed = run_driver(store, resume=True)
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout.strip().splitlines()[-1] == fleet_baseline["digest"]
    check_fleet_store_integrity(store, fleet_baseline)


def test_fleet_resume_of_completed_run_is_idempotent(
    tmp_path, fleet_baseline
):
    store = tmp_path / "store"
    assert run_driver(store).returncode == 0
    resumed = run_driver(store, resume=True)
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout.strip().splitlines()[-1] == fleet_baseline["digest"]
    check_fleet_store_integrity(store, fleet_baseline)


def test_fleet_drill_exercises_the_chaos_plane(fleet_baseline):
    digest = json.loads(fleet_baseline["digest"])
    counters = digest["counters"]
    assert counters["node_kills"] > 0
    assert counters["naive_rounds"] > 0  # degradation actually happened
    assert counters["bound_decisions"] > 0
    assert digest["unserved"] == []  # chaos never starved the stream
