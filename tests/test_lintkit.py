"""Tests for the simulator-invariant linter (repro.lintkit)."""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lintkit import lint_text
from repro.lintkit import baseline as baseline_mod
from repro.lintkit.base import all_rules, module_name_for

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lintkit_fixtures"

#: rule -> (expected finding count in the bad fixture, gate module used)
RULE_FIXTURES = {
    "DET001": (9, "repro.cache.fixture"),
    "DET002": (5, "repro.cache.fixture"),
    "CYC001": (5, "repro.cache.fixture"),
    "PKL001": (4, "fixture_module"),  # ungated: fires outside repro too
    "ACC001": (2, "repro.cache.fixture"),
    "TEL001": (4, "repro.models.fixture"),
    "DOC001": (4, "repro.obs.fixture"),
    "IO001": (4, "repro.resilience.fixture"),
    "VEC001": (5, "repro.vector.fixture"),
    # Flow rules (repro.lintkit.flow): whole-program, so lint_text's
    # one-module project is the entire universe the analysis sees.
    "NDT001": (4, "repro.harness.fixture"),
    "UNIT001": (4, "repro.cpu.fixture"),
    "PUR001": (3, "fixture_module"),
    "DUAL001": (3, "repro.vector.fixture.passes"),
}


def lint_fixture(name, module, apply_suppressions=True):
    source = (FIXTURES / name).read_text()
    return lint_text(
        source,
        path=str(FIXTURES / name),
        module=module,
        apply_suppressions=apply_suppressions,
    )


def run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lintkit", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


# ----------------------------------------------------------------------
# Fixture files: known-bad snippets are caught, known-good ones pass.

@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_bad_fixture_is_caught(rule):
    expected_count, module = RULE_FIXTURES[rule]
    findings = lint_fixture(
        f"{rule.lower()}_bad.py", module, apply_suppressions=False
    )
    assert findings, f"{rule} bad fixture produced no findings"
    assert {f.rule for f in findings} == {rule}
    assert len(findings) == expected_count


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_good_fixture_is_clean(rule):
    _, module = RULE_FIXTURES[rule]
    findings = lint_fixture(f"{rule.lower()}_good.py", module)
    assert findings == [], [f.render() for f in findings]


def test_every_registered_simulator_rule_has_fixtures():
    codes = {c for c in all_rules() if not c.startswith("LINT")}
    assert codes == set(RULE_FIXTURES)
    for code in codes:
        assert (FIXTURES / f"{code.lower()}_bad.py").is_file()
        assert (FIXTURES / f"{code.lower()}_good.py").is_file()


# ----------------------------------------------------------------------
# Specific rule semantics worth pinning beyond the fixtures.

def test_det001_gated_outside_simulation_packages():
    source = "import random\nx = random.random()\n"
    assert lint_text(source, module="repro.experiments.fig99") == []
    assert lint_text(source, module="repro.cache.evict") != []


def test_det001_allows_seeded_rng_instance():
    source = "import random\nrng = random.Random(42)\ny = rng.random()\n"
    assert lint_text(source, module="repro.mem.scheduler") == []


def test_det002_sorted_wrapper_is_clean():
    source = "def f(s):\n    return [x for x in sorted(set(s))]\n"
    assert lint_text(source, module="repro.cache.evict") == []


def test_cyc001_floor_division_is_clean():
    bad = "def f(a, b):\n    total_cycles = a / b\n    return total_cycles\n"
    good = bad.replace("a / b", "a // b")
    assert {f.rule for f in lint_text(bad, module="repro.engine")} == {"CYC001"}
    assert lint_text(good, module="repro.engine") == []


def test_pkl001_fires_without_a_package_gate():
    source = "def f(pool):\n    return pool.submit(lambda: 1)\n"
    findings = lint_text(source, module="anywhere.at.all")
    assert [f.rule for f in findings] == ["PKL001"]


def test_acc001_derived_total_is_a_witness():
    source = (
        "class C:\n"
        "    def rec(self, hit):\n"
        "        if hit:\n"
        "            self.hits += 1\n"
        "        else:\n"
        "            self.misses += 1\n"
    )
    witnessed = source + (
        "    @property\n"
        "    def accesses(self):\n"
        "        return self.hits + self.misses\n"
    )
    assert {f.rule for f in lint_text(source, module="repro.cache.c")} == {"ACC001"}
    assert lint_text(witnessed, module="repro.cache.c") == []


def test_doc001_gated_to_documented_packages():
    source = "class Widget:\n    pass\n"
    assert {f.rule for f in lint_text(source, module="repro.obs.sinks")} == {
        "DOC001"
    }
    assert {f.rule for f in lint_text(source, module="repro.models.asm")} == {
        "DOC001"
    }
    # Outside the documented packages the rule stays silent.
    assert lint_text(source, module="repro.harness.runner") == []


def test_doc001_exemptions():
    module = "repro.obs.sinks"
    documented = 'class Widget:\n    """Doc."""\n'
    assert lint_text(documented, module=module) == []
    private = "class _Widget:\n    def helper(self):\n        pass\n"
    assert lint_text(private, module=module) == []
    dunder = (
        'class Widget:\n    """Doc."""\n\n'
        "    def __len__(self):\n        return 0\n"
    )
    assert lint_text(dunder, module=module) == []
    nested = (
        'def outer():\n    """Doc."""\n\n'
        "    def inner():\n        pass\n    return inner\n"
    )
    assert lint_text(nested, module=module) == []


def test_tel001_allows_raw_reads_only_inside_attach():
    bad = (
        "class M:\n"
        '    """Doc."""\n'
        "    def estimate(self):\n"
        '        """Doc."""\n'
        "        return self.ctrl.queueing_cycles[0]\n"
    )
    good = (
        "class M:\n"
        '    """Doc."""\n'
        "    def attach(self, system):\n"
        '        """Doc."""\n'
        "        ctrl = system.ctrl\n"
        "        self.bank.external('q', lambda c: ctrl.queueing_cycles[c])\n"
    )
    assert {f.rule for f in lint_text(bad, module="repro.models.asm")} == {"TEL001"}
    assert lint_text(good, module="repro.models.asm") == []
    # The shared accounting helpers *own* these counters and are exempt;
    # so is everything outside repro.models.
    assert lint_text(bad, module="repro.models.perrequest") == []
    assert lint_text(bad, module="repro.harness.runner") == []


def test_io001_gated_to_persistence_packages():
    source = 'def f(path):\n    with open(path, "w") as h:\n        h.write("x")\n'
    assert {f.rule for f in lint_text(source, module="repro.resilience.campaign")} == {
        "IO001"
    }
    assert {f.rule for f in lint_text(source, module="repro.parallel")} == {
        "IO001"
    }
    # The atomic helper itself is the sanctioned wrapper and is exempt.
    assert lint_text(source, module="repro.durability.atomic") == []
    # Outside the persistence packages the rule stays silent.
    assert lint_text(source, module="repro.workloads.tracefile") == []


def test_io001_ignores_reads_and_computed_modes():
    module = "repro.resilience.campaign"
    reads = 'def f(p):\n    return open(p).read() + open(p, "r").read()\n'
    assert lint_text(reads, module=module) == []
    # A computed mode is not statically decidable; the rule stays quiet
    # rather than guessing.
    computed = "def f(p, m):\n    return open(p, m)\n"
    assert lint_text(computed, module=module) == []


# ----------------------------------------------------------------------
# Framework behaviour: suppressions, baseline, module naming, errors.

def test_inline_suppression_and_rationale():
    flagged = "import random\nx = random.random()\n"
    suppressed = (
        "import random\n"
        "x = random.random()  # lint: ignore[DET001] -- reseeded below\n"
    )
    blanket = "import random\nx = random.random()  # lint: ignore\n"
    other_rule = (
        "import random\nx = random.random()  # lint: ignore[CYC001]\n"
    )
    module = "repro.models.m"
    assert lint_text(flagged, module=module) != []
    assert lint_text(suppressed, module=module) == []
    assert lint_text(blanket, module=module) == []
    assert lint_text(other_rule, module=module) != []  # wrong code


def test_skip_file_marker():
    source = "# lint: skip-file\nimport random\nx = random.random()\n"
    assert lint_text(source, module="repro.models.m") == []
    assert lint_text(
        source, module="repro.models.m", apply_suppressions=False
    ) != []


def test_decorator_line_suppressions_stack():
    # Codes on decorator lines and the def line union: each decorator
    # can acknowledge a different rule for a finding reported on the
    # def line below.
    module = "repro.obs.sinks"
    source = (
        "@alpha  # lint: ignore[CYC001]\n"
        "@beta  # lint: ignore[DOC001]\n"
        "def exported():\n"
        "    pass\n"
    )
    assert lint_text(source, module=module) == []
    # None of the stacked codes matching still reports.
    wrong = source.replace("ignore[DOC001]", "ignore[TEL001]")
    assert [f.rule for f in lint_text(wrong, module=module)] == ["DOC001"]


def test_syntax_error_reported_not_raised():
    findings = lint_text("def broken(:\n", module="repro.models.m")
    assert [f.rule for f in findings] == ["LINT000"]


def test_module_name_derivation():
    path = REPO_ROOT / "src" / "repro" / "cache" / "cache.py"
    assert module_name_for(str(path)) == "repro.cache.cache"
    package = REPO_ROOT / "src" / "repro" / "cache" / "__init__.py"
    assert module_name_for(str(package)) == "repro.cache"


def test_baseline_grandfathers_old_findings_only(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    findings = lint_text(
        bad.read_text(), path=str(bad), module="repro.cache.b"
    )
    sources = {str(bad): bad.read_text().splitlines()}
    baseline_file = tmp_path / "baseline.json"
    baseline_mod.write(str(baseline_file), findings, sources)

    allowed = baseline_mod.load(str(baseline_file))
    fresh, grandfathered = baseline_mod.filter_baselined(
        findings, sources, allowed
    )
    assert fresh == [] and grandfathered == 1

    # A *new* identical call elsewhere in the file is still caught: the
    # fingerprint includes an occurrence index among identical lines.
    bad.write_text(
        "import random\nx = random.random()\ny = random.random()\n"
    )
    findings2 = lint_text(
        bad.read_text(), path=str(bad), module="repro.cache.b"
    )
    sources2 = {str(bad): bad.read_text().splitlines()}
    fresh2, grandfathered2 = baseline_mod.filter_baselined(
        findings2, sources2, allowed
    )
    assert grandfathered2 == 1
    assert len(fresh2) == 1


def test_baseline_survives_edits_above_but_not_rename(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    findings = lint_text(
        bad.read_text(), path=str(bad), module="repro.cache.b"
    )
    sources = {str(bad): bad.read_text().splitlines()}
    allowed = [d for _, d in baseline_mod.fingerprints(findings, sources)]

    # Fingerprints are line-number free: unrelated lines added above the
    # finding keep it grandfathered.
    moved = "import random\n\nHELPER = 1\nx = random.random()\n"
    bad.write_text(moved)
    findings2 = lint_text(moved, path=str(bad), module="repro.cache.b")
    fresh2, grand2 = baseline_mod.filter_baselined(
        findings2, {str(bad): moved.splitlines()}, allowed
    )
    assert fresh2 == [] and grand2 == 1

    # The normalized path is part of the identity: a rename invalidates
    # the entry, and the finding resurfaces for review.
    renamed = tmp_path / "renamed.py"
    renamed.write_text(moved)
    findings3 = lint_text(moved, path=str(renamed), module="repro.cache.r")
    fresh3, grand3 = baseline_mod.filter_baselined(
        findings3, {str(renamed): moved.splitlines()}, allowed
    )
    assert grand3 == 0 and len(fresh3) == 1


def test_identical_lines_collide_into_occurrence_indices(tmp_path):
    # Two findings with identical rule/path/stripped-line text must not
    # share a fingerprint: the occurrence index disambiguates them.
    source = (
        "import random\n"
        "def a():\n"
        "    return random.random()\n"
        "def b():\n"
        "    return random.random()\n"
    )
    bad = tmp_path / "bad.py"
    bad.write_text(source)
    findings = lint_text(source, path=str(bad), module="repro.cache.b")
    sources = {str(bad): source.splitlines()}
    digests = [d for _, d in baseline_mod.fingerprints(findings, sources)]
    assert len(digests) == 2
    assert len(set(digests)) == 2

    # Baselining only the first occurrence leaves the second fresh.
    fresh, grandfathered = baseline_mod.filter_baselined(
        findings, sources, digests[:1]
    )
    assert grandfathered == 1 and len(fresh) == 1


# ----------------------------------------------------------------------
# CLI: the checked-in tree is clean against the checked-in baseline.

def test_repro_lint_clean_on_repo():
    result = run_cli("src", "--baseline", "lint-baseline.json")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stderr


def test_checked_in_baseline_grandfathers_known_rules_only():
    """The simulator-invariant rules hold with NO grandfathered findings.
    The model-zoo DOC001 debt has been paid down; the only remaining
    baselined site is the one IO001 scratch-file write in the fault
    injectors (the FlakyModel sentinel: scratch test state, not campaign
    state — everything durable goes through repro.durability.atomic)."""
    data = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
    assert data["version"] == 1
    rules = {f["rule"] for f in data["findings"]}
    assert rules <= {"IO001"}, rules
    for finding in data["findings"]:
        path = finding["path"].replace("\\", "/")
        assert path == "src/repro/resilience/inject.py"


def test_cli_reports_violations_with_json_output(tmp_path):
    bad = tmp_path / "payload.py"
    bad.write_text("def f(pool):\n    return pool.submit(lambda: 1)\n")
    result = run_cli(str(bad), "--format", "json")
    assert result.returncode == 1
    report = json.loads(result.stdout)
    assert report["files_scanned"] == 1
    assert [f["rule"] for f in report["findings"]] == ["PKL001"]


def test_cli_list_rules_and_bad_select():
    listed = run_cli("--list-rules")
    assert listed.returncode == 0
    for code in RULE_FIXTURES:
        assert code in listed.stdout
    bogus = run_cli("src", "--select", "NOPE999")
    assert bogus.returncode == 2


def test_cli_write_baseline_roundtrip(tmp_path):
    bad = tmp_path / "payload.py"
    bad.write_text("def f(pool):\n    return pool.submit(lambda: 1)\n")
    baseline = tmp_path / "base.json"
    wrote = run_cli(str(bad), "--baseline", str(baseline), "--write-baseline")
    assert wrote.returncode == 0
    rerun = run_cli(str(bad), "--baseline", str(baseline))
    assert rerun.returncode == 0, rerun.stdout + rerun.stderr


def test_cli_sarif_output_shape(tmp_path):
    bad = tmp_path / "payload.py"
    bad.write_text("def f(pool):\n    return pool.submit(lambda: 1)\n")
    result = run_cli(str(bad), "--format", "sarif")
    assert result.returncode == 1
    log = json.loads(result.stdout)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["PKL001"]
    (res,) = run["results"]
    assert res["ruleId"] == "PKL001"
    region = res["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1 and region["startColumn"] >= 1
    # A clean tree still emits a valid (empty) SARIF log on exit 0.
    good = tmp_path / "ok.py"
    good.write_text("X = 1\n")
    clean = run_cli(str(good), "--format", "sarif")
    assert clean.returncode == 0
    assert json.loads(clean.stdout)["runs"][0]["results"] == []


def test_cli_budget_seconds(tmp_path):
    target = tmp_path / "ok.py"
    target.write_text("X = 1\n")
    within = run_cli(str(target), "--budget-seconds", "120")
    assert within.returncode == 0
    blown = run_cli(str(target), "--budget-seconds", "0")
    assert blown.returncode == 1
    assert "budget exceeded" in blown.stderr


def test_cli_changed_only_filters_to_changed_files(tmp_path):
    def git(*argv):
        subprocess.run(
            ["git", *argv], cwd=tmp_path, check=True, capture_output=True
        )

    git("init", "-q")
    git("config", "user.email", "lint@test")
    git("config", "user.name", "lint")
    stale = tmp_path / "stale.py"
    fresh = tmp_path / "fresh.py"
    payload = "def f(pool):\n    return pool.submit(lambda: 1)\n"
    stale.write_text(payload)
    fresh.write_text("X = 1\n")
    git("add", ".")
    git("commit", "-qm", "seed")
    fresh.write_text(payload)

    full = run_cli(str(tmp_path), "--format", "json", cwd=tmp_path)
    assert full.returncode == 1
    assert len(json.loads(full.stdout)["findings"]) == 2

    only = run_cli(
        str(tmp_path), "--changed-only", "--format", "json", cwd=tmp_path
    )
    assert only.returncode == 1
    report = json.loads(only.stdout)
    # Both files were parsed, but only the modified one is reported.
    assert report["files_scanned"] == 2
    paths = {f["path"] for f in report["findings"]}
    assert paths == {str(fresh)} or paths == {"fresh.py"}, paths

    # An untracked file counts as changed too.
    extra = tmp_path / "extra.py"
    extra.write_text(payload)
    wider = run_cli(
        str(tmp_path), "--changed-only", "--format", "json", cwd=tmp_path
    )
    names = {
        os.path.basename(f["path"])
        for f in json.loads(wider.stdout)["findings"]
    }
    assert names == {"fresh.py", "extra.py"}


# ----------------------------------------------------------------------
# Strict typing gate (exercised fully in the CI lint job; here only when
# mypy happens to be installed, since the test env has no network).

@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_on_gated_modules():
    result = subprocess.run(
        [
            "mypy",
            "src/repro/engine.py",
            "src/repro/models/base.py",
            "src/repro/parallel.py",
            "src/repro/lintkit",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
