"""Tests for the simulator-invariant linter (repro.lintkit)."""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lintkit import lint_text
from repro.lintkit import baseline as baseline_mod
from repro.lintkit.base import all_rules, module_name_for

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lintkit_fixtures"

#: rule -> (expected finding count in the bad fixture, gate module used)
RULE_FIXTURES = {
    "DET001": (8, "repro.cache.fixture"),
    "DET002": (5, "repro.cache.fixture"),
    "CYC001": (4, "repro.cache.fixture"),
    "PKL001": (4, "fixture_module"),  # ungated: fires outside repro too
    "ACC001": (2, "repro.cache.fixture"),
    "TEL001": (4, "repro.models.fixture"),
    "DOC001": (4, "repro.obs.fixture"),
    "IO001": (4, "repro.resilience.fixture"),
    "VEC001": (5, "repro.vector.fixture"),
}


def lint_fixture(name, module, apply_suppressions=True):
    source = (FIXTURES / name).read_text()
    return lint_text(
        source,
        path=str(FIXTURES / name),
        module=module,
        apply_suppressions=apply_suppressions,
    )


def run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lintkit", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


# ----------------------------------------------------------------------
# Fixture files: known-bad snippets are caught, known-good ones pass.

@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_bad_fixture_is_caught(rule):
    expected_count, module = RULE_FIXTURES[rule]
    findings = lint_fixture(
        f"{rule.lower()}_bad.py", module, apply_suppressions=False
    )
    assert findings, f"{rule} bad fixture produced no findings"
    assert {f.rule for f in findings} == {rule}
    assert len(findings) == expected_count


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_good_fixture_is_clean(rule):
    _, module = RULE_FIXTURES[rule]
    findings = lint_fixture(f"{rule.lower()}_good.py", module)
    assert findings == [], [f.render() for f in findings]


def test_every_registered_simulator_rule_has_fixtures():
    codes = {c for c in all_rules() if not c.startswith("LINT")}
    assert codes == set(RULE_FIXTURES)
    for code in codes:
        assert (FIXTURES / f"{code.lower()}_bad.py").is_file()
        assert (FIXTURES / f"{code.lower()}_good.py").is_file()


# ----------------------------------------------------------------------
# Specific rule semantics worth pinning beyond the fixtures.

def test_det001_gated_outside_simulation_packages():
    source = "import random\nx = random.random()\n"
    assert lint_text(source, module="repro.experiments.fig99") == []
    assert lint_text(source, module="repro.cache.evict") != []


def test_det001_allows_seeded_rng_instance():
    source = "import random\nrng = random.Random(42)\ny = rng.random()\n"
    assert lint_text(source, module="repro.mem.scheduler") == []


def test_det002_sorted_wrapper_is_clean():
    source = "def f(s):\n    return [x for x in sorted(set(s))]\n"
    assert lint_text(source, module="repro.cache.evict") == []


def test_cyc001_floor_division_is_clean():
    bad = "def f(a, b):\n    total_cycles = a / b\n    return total_cycles\n"
    good = bad.replace("a / b", "a // b")
    assert {f.rule for f in lint_text(bad, module="repro.engine")} == {"CYC001"}
    assert lint_text(good, module="repro.engine") == []


def test_pkl001_fires_without_a_package_gate():
    source = "def f(pool):\n    return pool.submit(lambda: 1)\n"
    findings = lint_text(source, module="anywhere.at.all")
    assert [f.rule for f in findings] == ["PKL001"]


def test_acc001_derived_total_is_a_witness():
    source = (
        "class C:\n"
        "    def rec(self, hit):\n"
        "        if hit:\n"
        "            self.hits += 1\n"
        "        else:\n"
        "            self.misses += 1\n"
    )
    witnessed = source + (
        "    @property\n"
        "    def accesses(self):\n"
        "        return self.hits + self.misses\n"
    )
    assert {f.rule for f in lint_text(source, module="repro.cache.c")} == {"ACC001"}
    assert lint_text(witnessed, module="repro.cache.c") == []


def test_doc001_gated_to_documented_packages():
    source = "class Widget:\n    pass\n"
    assert {f.rule for f in lint_text(source, module="repro.obs.sinks")} == {
        "DOC001"
    }
    assert {f.rule for f in lint_text(source, module="repro.models.asm")} == {
        "DOC001"
    }
    # Outside the documented packages the rule stays silent.
    assert lint_text(source, module="repro.harness.runner") == []


def test_doc001_exemptions():
    module = "repro.obs.sinks"
    documented = 'class Widget:\n    """Doc."""\n'
    assert lint_text(documented, module=module) == []
    private = "class _Widget:\n    def helper(self):\n        pass\n"
    assert lint_text(private, module=module) == []
    dunder = (
        'class Widget:\n    """Doc."""\n\n'
        "    def __len__(self):\n        return 0\n"
    )
    assert lint_text(dunder, module=module) == []
    nested = (
        'def outer():\n    """Doc."""\n\n'
        "    def inner():\n        pass\n    return inner\n"
    )
    assert lint_text(nested, module=module) == []


def test_tel001_allows_raw_reads_only_inside_attach():
    bad = (
        "class M:\n"
        '    """Doc."""\n'
        "    def estimate(self):\n"
        '        """Doc."""\n'
        "        return self.ctrl.queueing_cycles[0]\n"
    )
    good = (
        "class M:\n"
        '    """Doc."""\n'
        "    def attach(self, system):\n"
        '        """Doc."""\n'
        "        ctrl = system.ctrl\n"
        "        self.bank.external('q', lambda c: ctrl.queueing_cycles[c])\n"
    )
    assert {f.rule for f in lint_text(bad, module="repro.models.asm")} == {"TEL001"}
    assert lint_text(good, module="repro.models.asm") == []
    # The shared accounting helpers *own* these counters and are exempt;
    # so is everything outside repro.models.
    assert lint_text(bad, module="repro.models.perrequest") == []
    assert lint_text(bad, module="repro.harness.runner") == []


def test_io001_gated_to_persistence_packages():
    source = 'def f(path):\n    with open(path, "w") as h:\n        h.write("x")\n'
    assert {f.rule for f in lint_text(source, module="repro.resilience.campaign")} == {
        "IO001"
    }
    assert {f.rule for f in lint_text(source, module="repro.parallel")} == {
        "IO001"
    }
    # The atomic helper itself is the sanctioned wrapper and is exempt.
    assert lint_text(source, module="repro.durability.atomic") == []
    # Outside the persistence packages the rule stays silent.
    assert lint_text(source, module="repro.workloads.tracefile") == []


def test_io001_ignores_reads_and_computed_modes():
    module = "repro.resilience.campaign"
    reads = 'def f(p):\n    return open(p).read() + open(p, "r").read()\n'
    assert lint_text(reads, module=module) == []
    # A computed mode is not statically decidable; the rule stays quiet
    # rather than guessing.
    computed = "def f(p, m):\n    return open(p, m)\n"
    assert lint_text(computed, module=module) == []


# ----------------------------------------------------------------------
# Framework behaviour: suppressions, baseline, module naming, errors.

def test_inline_suppression_and_rationale():
    flagged = "import random\nx = random.random()\n"
    suppressed = (
        "import random\n"
        "x = random.random()  # lint: ignore[DET001] -- reseeded below\n"
    )
    blanket = "import random\nx = random.random()  # lint: ignore\n"
    other_rule = (
        "import random\nx = random.random()  # lint: ignore[CYC001]\n"
    )
    module = "repro.models.m"
    assert lint_text(flagged, module=module) != []
    assert lint_text(suppressed, module=module) == []
    assert lint_text(blanket, module=module) == []
    assert lint_text(other_rule, module=module) != []  # wrong code


def test_skip_file_marker():
    source = "# lint: skip-file\nimport random\nx = random.random()\n"
    assert lint_text(source, module="repro.models.m") == []
    assert lint_text(
        source, module="repro.models.m", apply_suppressions=False
    ) != []


def test_syntax_error_reported_not_raised():
    findings = lint_text("def broken(:\n", module="repro.models.m")
    assert [f.rule for f in findings] == ["LINT000"]


def test_module_name_derivation():
    path = REPO_ROOT / "src" / "repro" / "cache" / "cache.py"
    assert module_name_for(str(path)) == "repro.cache.cache"
    package = REPO_ROOT / "src" / "repro" / "cache" / "__init__.py"
    assert module_name_for(str(package)) == "repro.cache"


def test_baseline_grandfathers_old_findings_only(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    findings = lint_text(
        bad.read_text(), path=str(bad), module="repro.cache.b"
    )
    sources = {str(bad): bad.read_text().splitlines()}
    baseline_file = tmp_path / "baseline.json"
    baseline_mod.write(str(baseline_file), findings, sources)

    allowed = baseline_mod.load(str(baseline_file))
    fresh, grandfathered = baseline_mod.filter_baselined(
        findings, sources, allowed
    )
    assert fresh == [] and grandfathered == 1

    # A *new* identical call elsewhere in the file is still caught: the
    # fingerprint includes an occurrence index among identical lines.
    bad.write_text(
        "import random\nx = random.random()\ny = random.random()\n"
    )
    findings2 = lint_text(
        bad.read_text(), path=str(bad), module="repro.cache.b"
    )
    sources2 = {str(bad): bad.read_text().splitlines()}
    fresh2, grandfathered2 = baseline_mod.filter_baselined(
        findings2, sources2, allowed
    )
    assert grandfathered2 == 1
    assert len(fresh2) == 1


# ----------------------------------------------------------------------
# CLI: the checked-in tree is clean against the checked-in baseline.

def test_repro_lint_clean_on_repo():
    result = run_cli("src", "--baseline", "lint-baseline.json")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stderr


def test_checked_in_baseline_grandfathers_known_rules_only():
    """The simulator-invariant rules hold with NO grandfathered findings;
    only DOC001 (docstring gaps predating the rule) and the one IO001
    scratch-file site in the fault injectors may be baselined."""
    data = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
    assert data["version"] == 1
    rules = {f["rule"] for f in data["findings"]}
    assert rules <= {"DOC001", "IO001"}, rules
    for finding in data["findings"]:
        path = finding["path"].replace("\\", "/")
        if finding["rule"] == "DOC001":
            # Only pre-existing model-zoo gaps are grandfathered: new
            # code (the observability layer) must be documented from the
            # start.
            assert "/models/" in path
        else:
            # The FlakyModel sentinel is scratch test state, not
            # campaign state; everything durable goes through
            # repro.durability.atomic.
            assert path == "src/repro/resilience/inject.py"


def test_cli_reports_violations_with_json_output(tmp_path):
    bad = tmp_path / "payload.py"
    bad.write_text("def f(pool):\n    return pool.submit(lambda: 1)\n")
    result = run_cli(str(bad), "--format", "json")
    assert result.returncode == 1
    report = json.loads(result.stdout)
    assert report["files_scanned"] == 1
    assert [f["rule"] for f in report["findings"]] == ["PKL001"]


def test_cli_list_rules_and_bad_select():
    listed = run_cli("--list-rules")
    assert listed.returncode == 0
    for code in RULE_FIXTURES:
        assert code in listed.stdout
    bogus = run_cli("src", "--select", "NOPE999")
    assert bogus.returncode == 2


def test_cli_write_baseline_roundtrip(tmp_path):
    bad = tmp_path / "payload.py"
    bad.write_text("def f(pool):\n    return pool.submit(lambda: 1)\n")
    baseline = tmp_path / "base.json"
    wrote = run_cli(str(bad), "--baseline", str(baseline), "--write-baseline")
    assert wrote.returncode == 0
    rerun = run_cli(str(bad), "--baseline", str(baseline))
    assert rerun.returncode == 0, rerun.stdout + rerun.stderr


# ----------------------------------------------------------------------
# Strict typing gate (exercised fully in the CI lint job; here only when
# mypy happens to be installed, since the test env has no network).

@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_on_gated_modules():
    result = subprocess.run(
        [
            "mypy",
            "src/repro/engine.py",
            "src/repro/models/base.py",
            "src/repro/parallel.py",
            "src/repro/lintkit",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
