"""Unit tests for the trace-driven core model."""

from typing import List, Optional

import pytest

from repro.config import CoreConfig
from repro.cpu.core import Core
from repro.cpu.trace import TraceRecord
from repro.engine import Engine


class FakeHierarchy:
    """Deterministic memory backend: hits after ``latency`` cycles, or
    deferred completions released manually (for miss modelling)."""

    def __init__(self, engine: Engine, latency: int = 20, defer: bool = False):
        self.engine = engine
        self.latency = latency
        self.defer = defer
        self.pending: List = []
        self.accesses: List = []

    def access(self, core, line_addr, is_write, on_complete):
        self.accesses.append((self.engine.now, line_addr, is_write))
        if not self.defer:
            return self.engine.now + self.latency
        self.pending.append(on_complete)
        return None

    def release_all(self, at_time):
        for callback in self.pending:
            self.engine.schedule_at(at_time, lambda cb=callback, t=at_time: cb(t))
        self.pending = []


def _trace(records):
    return iter([TraceRecord(*r) for r in records])


def test_issue_width_paces_compute(small_system_config):
    engine = Engine()
    hierarchy = FakeHierarchy(engine, latency=1)
    # 10 records of 299 compute instructions each: 100 cycles of frontend
    # per record at width 3.
    records = [(299, i, False) for i in range(10)]
    core = Core(engine, 0, CoreConfig(issue_width=3), _trace(records), hierarchy.access)
    core.start()
    engine.run()
    issue_times = [t for t, _, _ in hierarchy.accesses]
    assert issue_times[1] - issue_times[0] == 100
    assert core.position == 10 * 300


def test_window_limits_outstanding_misses():
    engine = Engine()
    hierarchy = FakeHierarchy(engine, defer=True)
    # Zero-gap loads: the 128-entry window holds at most 128 instructions.
    records = [(0, i, False) for i in range(300)]
    config = CoreConfig(window_size=128, mshr_entries=1000)
    core = Core(engine, 0, config, _trace(records), hierarchy.access)
    core.start()
    engine.run(until=1000)
    assert len(hierarchy.pending) == 128


def test_mshr_limits_outstanding_misses():
    engine = Engine()
    hierarchy = FakeHierarchy(engine, defer=True)
    records = [(0, i, False) for i in range(100)]
    config = CoreConfig(window_size=1000, mshr_entries=8)
    core = Core(engine, 0, config, _trace(records), hierarchy.access)
    core.start()
    engine.run(until=1000)
    assert len(hierarchy.pending) == 8


def test_fill_unblocks_core():
    engine = Engine()
    hierarchy = FakeHierarchy(engine, defer=True)
    records = [(0, i, False) for i in range(200)]
    config = CoreConfig(window_size=64, mshr_entries=64)
    core = Core(engine, 0, config, _trace(records), hierarchy.access)
    core.start()
    engine.run(until=500)
    outstanding_before = len(hierarchy.accesses)
    hierarchy.release_all(600)
    engine.run(until=1000)
    assert len(hierarchy.accesses) > outstanding_before


def test_committed_instructions_in_order():
    engine = Engine()
    hierarchy = FakeHierarchy(engine, defer=True)
    records = [(9, 1, False), (9, 2, False)]
    config = CoreConfig(issue_width=1)
    core = Core(engine, 0, config, _trace(records), hierarchy.access)
    core.start()
    engine.run(until=100)
    # Both loads issued, none completed: nothing retires past the first.
    assert core.committed_instructions(100) == 9
    hierarchy.release_all(110)
    engine.run(until=200)
    assert core.committed_instructions(200) == 20


def test_stores_do_not_block_retirement():
    engine = Engine()
    hierarchy = FakeHierarchy(engine, defer=True)  # defers everything
    records = [(9, 1, True), (9, 2, True)]  # stores
    core = Core(engine, 0, CoreConfig(issue_width=1), _trace(records), hierarchy.access)
    core.start()
    engine.run(until=100)
    assert core.committed_instructions(100) == 20


def test_finished_trace_marks_core_done():
    engine = Engine()
    hierarchy = FakeHierarchy(engine, latency=1)
    core = Core(engine, 0, CoreConfig(), _trace([(0, 1, False)]), hierarchy.access)
    core.start()
    engine.run()
    assert core.finished


def test_memory_stalls_slow_down_ipc():
    """A miss-heavy core must be slower than a hit-heavy core — the
    frontend must not hide stalls beyond the window (regression test)."""

    def run_with_latency(latency):
        engine = Engine()
        hierarchy = FakeHierarchy(engine, latency=latency)
        records = [(49, i, False) for i in range(200)]
        core = Core(engine, 0, CoreConfig(), _trace(records), hierarchy.access)
        core.start()
        return engine.run()

    fast = run_with_latency(10)
    slow = run_with_latency(500)
    assert slow > fast * 3
