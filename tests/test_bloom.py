"""Unit tests for the counting Bloom filter."""

import pytest

from repro.cache.bloom import CountingBloomFilter


def test_insert_and_membership():
    bloom = CountingBloomFilter(1024)
    bloom.insert(42)
    assert 42 in bloom
    assert 43 not in bloom


def test_remove_restores_absence():
    bloom = CountingBloomFilter(1024)
    bloom.insert(7)
    bloom.remove(7)
    assert 7 not in bloom


def test_no_false_negatives():
    bloom = CountingBloomFilter(4096)
    keys = list(range(0, 2000, 7))
    for key in keys:
        bloom.insert(key)
    assert all(key in bloom for key in keys)


def test_false_positive_rate_reasonable():
    bloom = CountingBloomFilter(4096, num_hashes=4)
    for key in range(200):
        bloom.insert(key)
    false_positives = sum(1 for key in range(10_000, 20_000) if key in bloom)
    assert false_positives / 10_000 < 0.05


def test_small_filter_aliases():
    """A tiny filter saturates — the degradation FST suffers in Fig 3."""
    bloom = CountingBloomFilter(32, num_hashes=2)
    for key in range(100):
        bloom.insert(key)
    assert bloom.load > 0.9


def test_remove_unknown_key_is_noop():
    bloom = CountingBloomFilter(64)
    bloom.remove(5)  # must not raise or underflow
    bloom.insert(6)
    bloom.remove(5)
    assert 6 in bloom


def test_counting_supports_duplicates():
    bloom = CountingBloomFilter(256)
    bloom.insert(9)
    bloom.insert(9)
    bloom.remove(9)
    assert 9 in bloom
    bloom.remove(9)
    assert 9 not in bloom


def test_clear():
    bloom = CountingBloomFilter(128)
    bloom.insert(1)
    bloom.clear()
    assert 1 not in bloom and bloom.load == 0.0


def test_invalid_params():
    with pytest.raises(ValueError):
        CountingBloomFilter(0)
    with pytest.raises(ValueError):
        CountingBloomFilter(16, num_hashes=0)
