"""Unit tests for the fleet tier's building blocks (``repro.cloud``).

Each piece is tested in isolation: the deterministic tenant stream, the
Yun-style worst-case slowdown bound, confidence-gated admission control,
ASM-aware vs naive placement with per-node circuit breakers, supervised
migration backoff, SLA decisions with the bound backstop, slowdown-fair
billing, the seeded chaos plane, and the keyed idempotent store the
supervisor persists through. The end-to-end fleet behaviour (replay
determinism, crash/resume) lives in ``test_cloud_fleet.py``.
"""

import math

import pytest

from repro.cloud.admission import AdmissionController
from repro.cloud.billing import BillingRecord, billing_key, charge_for
from repro.cloud.chaos import STRAGGLER_CONFIDENCE_CAP, FleetChaos
from repro.cloud.node import NodeState, node_mix, worst_case_slowdown_bound
from repro.cloud.scheduler import FleetScheduler, node_breaker_key
from repro.cloud.sla import SlaTracker, effective_slowdown
from repro.cloud.spec import FleetChaosSpec, FleetSpec
from repro.cloud.tenants import tenant_stream
from repro.config import scaled_config
from repro.durability.store import KeyedLog


# -- tenant stream ------------------------------------------------------

def test_tenant_stream_is_deterministic():
    spec = FleetSpec(num_tenants=8, seed=5)
    assert tenant_stream(spec) == tenant_stream(spec)


def test_tenant_stream_tenant_depends_only_on_seed_and_index():
    # Tenant i must not depend on how many tenants exist after it.
    long = tenant_stream(FleetSpec(num_tenants=8, seed=5))
    short = tenant_stream(FleetSpec(num_tenants=4, seed=5))
    assert long[:4] == short


def test_tenant_stream_arrival_batching_and_demand():
    spec = FleetSpec(num_tenants=6, arrivals_per_round=2, tenant_quanta=3)
    stream = tenant_stream(spec)
    assert [t.arrival_round for t in stream] == [0, 0, 1, 1, 2, 2]
    assert all(t.demand_quanta == 3 for t in stream)
    assert [t.tenant_id for t in stream] == list(range(6))


def test_tenant_stream_hog_fraction_extremes():
    assert all(
        t.is_hog
        for t in tenant_stream(FleetSpec(num_tenants=6, hog_fraction=1.0))
    )
    assert not any(
        t.is_hog
        for t in tenant_stream(FleetSpec(num_tenants=6, hog_fraction=0.0))
    )


# -- worst-case bound ---------------------------------------------------

def test_worst_case_bound_alone_is_one():
    assert worst_case_slowdown_bound(scaled_config(), 0) == 1.0


def test_worst_case_bound_monotonic_in_corunners():
    config = scaled_config()
    bounds = [worst_case_slowdown_bound(config, n) for n in range(9)]
    assert bounds[1] > 1.0
    assert all(b2 >= b1 for b1, b2 in zip(bounds, bounds[1:]))


def test_worst_case_bound_rejects_negative_corunners():
    with pytest.raises(ValueError):
        worst_case_slowdown_bound(scaled_config(), -1)


# -- SLA decisions ------------------------------------------------------

def test_effective_slowdown_trusts_confident_estimates():
    decision = effective_slowdown(2.0, 1.0, 10.0, floor=0.75)
    assert decision.basis == "estimate"
    assert decision.effective_slowdown == 2.0


def test_effective_slowdown_falls_back_to_bound_when_degraded():
    for estimate, confidence in [
        (2.0, 0.5),            # confidence below the floor
        (math.inf, 1.0),       # non-finite estimate
        (0.5, 1.0),            # sub-1 slowdown is itself corrupt
    ]:
        decision = effective_slowdown(estimate, confidence, 10.0, floor=0.75)
        assert decision.basis == "bound"
        assert decision.effective_slowdown == 10.0


def test_effective_slowdown_clamps_estimate_to_bound():
    # An estimate above the worst case is evidence of corruption.
    decision = effective_slowdown(20.0, 1.0, 10.0, floor=0.75)
    assert decision.basis == "estimate"
    assert decision.effective_slowdown == 10.0


def test_sla_tracker_accounts_violations_and_basis():
    sla = SlaTracker(sla_slowdown=3.0, floor=0.75)
    decision = sla.record(
        1, estimate=5.0, confidence=1.0, bound=8.0, actual=4.0, quanta=2
    )
    assert decision.violated and decision.oracle_violated
    degraded = sla.record(
        1, estimate=2.0, confidence=0.1, bound=8.0, actual=2.0, quanta=2
    )
    assert degraded.basis == "bound" and degraded.violated
    assert not degraded.oracle_violated
    account = sla.account(1)
    assert account.served_quanta == 4
    assert account.violations == 2
    assert account.oracle_violations == 1
    assert account.bound_decisions == 1
    assert sla.total_violations == 2
    assert sla.total_oracle_violations == 1


# -- admission control --------------------------------------------------

def _tenants(n, **kwargs):
    return tenant_stream(FleetSpec(num_tenants=n, seed=5, **kwargs))


def test_admission_sheds_beyond_max_queue():
    admission = AdmissionController(max_queue=2, floor=0.75)
    shed = admission.offer(_tenants(4))
    assert [t.tenant_id for t in shed] == [2, 3]
    assert admission.queue_length == 2
    assert admission.shed == 2


def test_admission_is_fifo_and_capacity_limited():
    admission = AdmissionController(max_queue=16, floor=0.75)
    admission.offer(_tenants(4))
    admitted = admission.admit(1.0, free_cores=2)
    assert [t.tenant_id for t in admitted] == [0, 1]
    assert admission.queued_ids == [2, 3]
    assert admission.admitted == 2


def test_admission_pauses_below_confidence_floor():
    admission = AdmissionController(max_queue=16, floor=0.75)
    admission.offer(_tenants(2))
    assert admission.admit(0.5, free_cores=4) == []
    assert admission.queue_length == 2


def test_requeue_goes_to_front_and_never_sheds():
    admission = AdmissionController(max_queue=2, floor=0.75)
    stream = _tenants(4)
    admission.offer(stream[:2])
    admission.requeue(stream[2:])  # over max_queue, still accepted
    assert admission.queued_ids == [2, 3, 0, 1]
    assert admission.shed == 0


# -- scheduler ----------------------------------------------------------

def _scheduler(**kwargs):
    return FleetScheduler(FleetSpec(num_nodes=3, cores_per_node=2, **kwargs))


def test_asm_placement_prefers_low_pressure_nodes():
    scheduler = _scheduler()
    scheduler.pressure = {0: 5.0, 1: 1.2, 2: 3.0}
    tenant = _tenants(1)[0]
    assert scheduler.place(tenant, 0, "asm") == 1


def test_naive_placement_is_first_fit_by_node_id():
    scheduler = _scheduler()
    scheduler.pressure = {0: 5.0, 1: 1.2, 2: 3.0}
    stream = _tenants(3)
    assert scheduler.place(stream[0], 0, "naive") == 0
    assert scheduler.place(stream[1], 0, "naive") == 0  # node 0 has room
    assert scheduler.place(stream[2], 0, "naive") == 1


def test_mode_degrades_exactly_below_floor():
    scheduler = _scheduler(placement="asm", confidence_floor=0.75)
    assert scheduler.mode_for(0.75) == "asm"
    assert scheduler.mode_for(0.7499) == "naive"
    assert scheduler.asm_rounds == 1 and scheduler.naive_rounds == 1
    always_naive = _scheduler(placement="naive")
    assert always_naive.mode_for(1.0) == "naive"


def test_repeated_deterministic_failure_trips_node_breaker():
    scheduler = _scheduler()
    scheduler.note_node_round(0, ok=False, min_confidence=0.0)
    assert scheduler.breaker.allows(node_breaker_key(0))
    scheduler.note_node_round(0, ok=False, min_confidence=0.0)
    assert not scheduler.breaker.allows(node_breaker_key(0))
    assert [n.node_id for n in scheduler.candidates(0)] == [1, 2]
    # A healthy round closes the circuit again.
    scheduler.note_node_round(0, ok=True, min_confidence=1.0)
    assert scheduler.breaker.allows(node_breaker_key(0))


def test_chaos_kills_are_transient_and_never_trip():
    scheduler = _scheduler()
    for _ in range(5):
        scheduler.note_node_kill(1)
    assert scheduler.breaker.allows(node_breaker_key(1))


def test_migration_burns_budget_with_cooldown():
    scheduler = _scheduler(migration_max_attempts=2)
    assert scheduler.consider_migration(3, round_index=0)
    # Cooldown: the very next round is always too soon.
    assert not scheduler.consider_migration(3, round_index=1)
    assert scheduler.migration_denied == 1
    late = 100
    assert scheduler.consider_migration(3, round_index=late)
    # Budget (2 attempts) exhausted: denied forever after.
    assert not scheduler.consider_migration(3, round_index=late + 100)
    assert scheduler.migrations == 2
    assert scheduler.migration_attempts(3) == 2


# -- billing ------------------------------------------------------------

def test_fair_billing_discounts_interference():
    assert charge_for("fair", 1.0, 2, 4.0) == pytest.approx(0.5)
    assert charge_for("flat", 1.0, 2, 4.0) == pytest.approx(2.0)
    # Effective slowdowns below 1 never inflate the charge.
    assert charge_for("fair", 1.0, 2, 0.5) == pytest.approx(2.0)
    assert charge_for("fair", 1.0, 0, 4.0) == 0.0


def test_billing_record_key_is_stable():
    assert billing_key(3, 7) == "r0003/t0007"
    record = BillingRecord(
        round_index=3, tenant_id=7, node_id=1, quanta=1, estimate=2.0,
        confidence=1.0, bound=8.0, effective_slowdown=2.0, basis="estimate",
        charge=0.5,
    )
    assert record.key == "r0003/t0007"
    assert record.to_json()["basis"] == "estimate"


# -- chaos plane --------------------------------------------------------

def test_chaos_draws_are_deterministic_and_seeded():
    spec = FleetChaosSpec(
        node_kill_rate=0.3, straggler_rate=0.3, telemetry_rate=0.5, seed=1
    )
    chaos = FleetChaos(spec)
    draws = [chaos.events(r, n) for r in range(10) for n in range(3)]
    again = [chaos.events(r, n) for r in range(10) for n in range(3)]
    assert draws == again
    other = FleetChaos(
        FleetChaosSpec(
            node_kill_rate=0.3, straggler_rate=0.3, telemetry_rate=0.5,
            seed=2,
        )
    )
    assert draws != [other.events(r, n) for r in range(10) for n in range(3)]


def test_killed_nodes_draw_nothing_else():
    spec = FleetChaosSpec(
        node_kill_rate=1.0, straggler_rate=1.0, telemetry_rate=1.0
    )
    events = FleetChaos(spec).events(0, 0)
    assert events.kill and not events.straggler and events.telemetry is None
    assert 0.0 < STRAGGLER_CONFIDENCE_CAP < 1.0


def test_node_state_kill_evacuates_and_restarts():
    node = NodeState(node_id=0, cores=2, tenants=[4, 5])
    assert node.free_cores == 0
    evacuated = node.kill(3, restart_rounds=2)
    assert evacuated == [4, 5]
    assert node.tenants == [] and node.kills == 1
    assert not node.is_up(3) and not node.is_up(4) and node.is_up(5)


def test_node_mix_seed_is_fleet_constant():
    # The alone-run cache keys on the mix seed: it must not vary by round
    # or node, or every round would recompute every alone profile.
    stream = _tenants(2)
    mix_a = node_mix("f", 7, 0, 0, stream)
    mix_b = node_mix("f", 7, 5, 1, stream)
    assert mix_a.seed == mix_b.seed == 7
    assert mix_a.specs == mix_b.specs
    assert mix_a.name != mix_b.name


# -- keyed durable store ------------------------------------------------

def test_keyed_log_is_idempotent_and_last_wins(tmp_path):
    path = str(tmp_path / "fleet.jsonl")
    log = KeyedLog(path)
    assert log.put("r0000", {"mode": "asm"})
    size_after_first = (tmp_path / "fleet.jsonl").stat().st_size
    # Exact replay: skipped, no bytes written.
    assert not log.put("r0000", {"mode": "asm"})
    assert (tmp_path / "fleet.jsonl").stat().st_size == size_after_first
    # Changed payload under the same key: appended, last record wins.
    assert log.put("r0000", {"mode": "naive"})
    assert log.put("r0001", {"mode": "asm"})
    reopened = KeyedLog(path)
    assert reopened.keys() == ["r0000", "r0001"]
    assert reopened.get("r0000") == {"key": "r0000", "mode": "naive"}
    assert len(reopened) == 2 and "r0001" in reopened
    # The reopened view skips replays too (the resume fast path).
    assert not reopened.put("r0001", {"mode": "asm"})
