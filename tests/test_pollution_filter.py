"""Unit tests for FST's pollution filter."""

from repro.cache.pollution_filter import PollutionFilter


def test_exact_filter_tracks_contention():
    pf = PollutionFilter()  # exact
    assert pf.is_exact
    pf.on_evicted_by_other(10)
    assert pf.is_contention_miss(10)
    assert not pf.is_contention_miss(11)


def test_refetch_clears_entry():
    pf = PollutionFilter()
    pf.on_evicted_by_other(5)
    pf.on_refetch(5)
    assert not pf.is_contention_miss(5)


def test_refetch_of_untracked_line_is_noop():
    pf = PollutionFilter()
    pf.on_refetch(99)
    assert not pf.is_contention_miss(99)


def test_bloom_variant_basic_flow():
    pf = PollutionFilter(num_counters=512)
    assert not pf.is_exact
    pf.on_evicted_by_other(123)
    assert pf.is_contention_miss(123)
    pf.on_refetch(123)
    assert not pf.is_contention_miss(123)


def test_bloom_variant_avoids_duplicate_insertion():
    pf = PollutionFilter(num_counters=512)
    pf.on_evicted_by_other(7)
    pf.on_evicted_by_other(7)  # already present: not inserted again
    pf.on_refetch(7)
    assert not pf.is_contention_miss(7)


def test_clear():
    for pf in (PollutionFilter(), PollutionFilter(num_counters=128)):
        pf.on_evicted_by_other(3)
        pf.clear()
        assert not pf.is_contention_miss(3)
