"""Unit tests for the shared, partitionable LLC."""

import pytest

from repro.cache.shared_cache import SharedCache
from repro.config import CacheConfig


@pytest.fixture
def llc(small_cache_config):
    return SharedCache(small_cache_config, num_cores=2)


def test_per_core_stats(llc):
    llc.access(0, 1)
    llc.access(0, 1)
    llc.access(1, 2)
    assert llc.hits == [1, 0]
    assert llc.misses == [1, 1]
    assert llc.accesses_of(0) == 2


def test_eviction_listener_reports_owner_and_evictor(llc):
    events = []
    llc.add_eviction_listener(lambda addr, owner, evictor: events.append((addr, owner, evictor)))
    num_sets = llc.num_sets
    llc.access(0, 5)
    for i in range(1, 5):
        llc.access(1, 5 + i * num_sets)
    assert events, "an eviction should have occurred"
    addr, owner, evictor = events[0]
    assert addr == 5 and owner == 0 and evictor == 1


def test_partition_validation(llc):
    with pytest.raises(ValueError):
        llc.set_partition([1, 1])  # does not sum to associativity (4)
    with pytest.raises(ValueError):
        llc.set_partition([5, -1])
    with pytest.raises(ValueError):
        llc.set_partition([4])  # wrong length
    llc.set_partition([2, 2])
    llc.set_partition(None)


def test_partition_enforced_lazily(llc):
    num_sets = llc.num_sets
    # Core 0 fills a set completely.
    for i in range(4):
        llc.access(0, 2 + i * num_sets)
    llc.set_partition([1, 3])
    # Core 1's inserts evict core 0 (over quota) first.
    events = []
    llc.add_eviction_listener(lambda a, o, e: events.append(o))
    for i in range(3):
        llc.access(1, 2 + (10 + i) * num_sets)
    assert events == [0, 0, 0]


def test_partition_respects_own_quota(llc):
    llc.set_partition([2, 2])
    num_sets = llc.num_sets
    for i in range(2):
        llc.access(0, 3 + i * num_sets)
        llc.access(1, 3 + (8 + i) * num_sets)
    events = []
    llc.add_eviction_listener(lambda a, o, e: events.append((o, e)))
    llc.access(0, 3 + 20 * num_sets)
    # Core 0 at quota evicts its own line.
    assert events == [(0, 0)]


def test_allocate_without_stats(llc):
    result = llc.allocate(0, 42)
    assert not result.hit
    assert llc.hits == [0, 0] and llc.misses == [0, 0]
    assert llc.contains(42)
    # Re-allocating a resident line is a no-op "hit".
    assert llc.allocate(0, 42).hit


def test_occupancy_of(llc):
    for i in range(10):
        llc.access(0, i)
    assert llc.occupancy_of(0) == 10
    assert llc.occupancy_of(1) == 0
