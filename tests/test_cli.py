"""Tests for the command-line interface."""

import pytest

from repro.cli import DESCRIPTIONS, EXPERIMENTS, build_parser, main


def test_every_experiment_has_a_description():
    assert set(EXPERIMENTS) == set(DESCRIPTIONS)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figNaN"])


def test_db_experiment_end_to_end(capsys, tmp_path):
    out_file = tmp_path / "db.txt"
    code = main(["db", "--mixes", "1", "--quanta", "1", "--out", str(out_file)])
    assert code == 0
    printed = capsys.readouterr().out
    assert "mean_err%" in printed
    assert out_file.read_text().strip()


def test_fig11_experiment_runs(capsys):
    assert main(["fig11", "--quanta", "1"]) == 0
    assert "naive-qos" in capsys.readouterr().out
