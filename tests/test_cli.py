"""Tests for the command-line interface."""

from repro.cli import DESCRIPTIONS, EXPERIMENTS, build_parser, main


def test_every_experiment_has_a_description():
    assert set(EXPERIMENTS) == set(DESCRIPTIONS)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment_lists_valid_names(capsys):
    assert main(["figNaN"]) == 2
    err = capsys.readouterr().err
    assert "figNaN" in err
    for name in EXPERIMENTS:
        assert name in err


def test_parser_accepts_resilience_flags():
    args = build_parser().parse_args(
        ["fig02", "--resume", "--keep-going", "--check-invariants",
         "--seed", "7", "--campaign-dir", ""]
    )
    assert args.resume and args.keep_going and args.check_invariants
    assert args.seed == 7
    assert args.campaign_dir == ""


def test_db_experiment_end_to_end(capsys, tmp_path):
    out_file = tmp_path / "db.txt"
    code = main([
        "db", "--mixes", "1", "--quanta", "1",
        "--out", str(out_file),
        "--campaign-dir", str(tmp_path / "campaign"),
    ])
    assert code == 0
    printed = capsys.readouterr().out
    assert "mean_err%" in printed
    assert "campaign db:" in printed
    assert out_file.read_text().strip()
    assert (tmp_path / "campaign" / "db" / "runs.jsonl").exists()


def test_cli_resume_reuses_checkpoints(capsys, tmp_path):
    argv = [
        "db", "--mixes", "1", "--quanta", "1",
        "--campaign-dir", str(tmp_path / "campaign"),
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv + ["--resume"]) == 0
    second = capsys.readouterr().out
    assert "1 resumed" in second
    # The resumed table is byte-for-byte the freshly computed one.
    assert first.split("\n[db finished")[0] == second.split("\n[db finished")[0]


def test_cli_seed_changes_mixes(capsys, tmp_path):
    base = ["db", "--mixes", "1", "--quanta", "1",
            "--campaign-dir", str(tmp_path / "c")]
    assert main(base + ["--seed", "1"]) == 0
    one = capsys.readouterr().out
    assert main(base + ["--seed", "2"]) == 0
    two = capsys.readouterr().out
    assert one.split("finished in")[0] != two.split("finished in")[0]


def test_fig11_experiment_runs(capsys, tmp_path):
    assert main(["fig11", "--quanta", "1",
                 "--campaign-dir", str(tmp_path / "c")]) == 0
    assert "naive-qos" in capsys.readouterr().out


def test_parser_accepts_retry_flags():
    args = build_parser().parse_args(
        ["fig02", "--max-retries", "2", "--retry-backoff", "0.01",
         "--cell-budget", "5"]
    )
    assert args.max_retries == 2
    assert args.retry_backoff == 0.01
    assert args.cell_budget == 5.0


def test_list_includes_campaign_verbs(capsys):
    assert main(["list"]) == 0
    assert "campaign" in capsys.readouterr().out


def test_campaign_verb_dispatches(capsys, tmp_path):
    # Unknown directory: the durability CLI owns the error path.
    assert main(["campaign", "verify", str(tmp_path / "nope")]) == 2
    assert "no such store" in capsys.readouterr().err


def test_campaign_verify_after_experiment(capsys, tmp_path):
    campaign_dir = tmp_path / "campaign"
    assert main(["db", "--mixes", "1", "--quanta", "1",
                 "--campaign-dir", str(campaign_dir)]) == 0
    capsys.readouterr()
    assert main(["campaign", "verify", str(campaign_dir)]) == 0
    out = capsys.readouterr().out
    assert "intact" in out and "DAMAGED" not in out
