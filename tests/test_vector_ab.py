"""A/B harness, CLI ``--engine`` flag, and ``repro bench`` verb tests.

The expensive full drill (``repro bench ab``) runs in CI; here the same
machinery is exercised at reduced scale — small quanta, two cores — so
the bit-identity contract is enforced on every test run.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.config import scaled_config
from repro.perfbench import bench_main, merge_results
from repro.telemetry.spec import TelemetrySpec
from repro.vector.ab import AbReport, check_merge_order, compare_mixes, compare_runs
from repro.workloads.mixes import random_mixes


def _small_config(num_cores=2):
    return scaled_config(num_cores).with_quantum(100_000, 5_000)


# ----------------------------------------------------------------------
# A/B harness


def test_compare_runs_bit_identical():
    mix = random_mixes(1, 2, seed=5)[0]
    report = compare_runs(mix, _small_config(), quanta=2)
    assert report.ok, report.summary()
    assert report.compared == 2
    assert "bit-identical" in report.summary()


def test_compare_runs_with_telemetry_faults():
    # Faults are injected deterministically at counter-read time, so a
    # faulted run must still be bit-identical across engines.
    mix = random_mixes(1, 2, seed=6)[0]
    spec = TelemetrySpec.parse("dropped-read:0.1", seed=3)
    report = compare_runs(mix, _small_config(), quanta=1, telemetry=spec)
    assert report.ok, report.summary()


def test_compare_mixes_merges_reports():
    report = compare_mixes(2, 2, quanta=1, config=_small_config(), seed=9)
    assert report.ok, report.summary()
    assert report.compared == 2  # one record per mix per quantum


def test_check_merge_order_round_trip():
    report = check_merge_order(config=_small_config(), cycles=20_000, seed=7)
    assert report.ok, report.summary()
    assert report.compared > 0  # the run produced accesses to round-trip


def test_ab_report_merge_prefixes_labels():
    top = AbReport(label="ab")
    child = AbReport(label="run:mix0", compared=3)
    child.mismatches.append("quantum 0 field 'shared_ipc' differs")
    top.merge(child)
    assert not top.ok
    assert top.compared == 3
    assert top.mismatches == ["run:mix0: quantum 0 field 'shared_ipc' differs"]
    assert "MISMATCH" in top.summary()


# ----------------------------------------------------------------------
# CLI --engine flag


def test_cli_engine_columnar_end_to_end(capsys, tmp_path):
    code = cli_main([
        "fig02", "--mixes", "1", "--quanta", "1",
        "--engine", "columnar",
        "--campaign-dir", str(tmp_path / "c"),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "asm_err%" in out


def test_cli_engine_flag_warns_when_unsupported(capsys, tmp_path):
    code = cli_main([
        "fig11", "--quanta", "1",
        "--engine", "columnar",
        "--campaign-dir", str(tmp_path / "c"),
    ])
    assert code == 0
    err = capsys.readouterr().err
    assert "does not support --engine" in err


def test_cli_engine_flag_validates_choices(capsys):
    with pytest.raises(SystemExit):
        cli_main(["fig02", "--engine", "gpu"])


def test_cli_list_mentions_bench(capsys):
    assert cli_main(["list"]) == 0
    assert "bench" in capsys.readouterr().out


# ----------------------------------------------------------------------
# repro bench verbs


def test_bench_run_micro_only_captures_json(capsys, tmp_path):
    out = tmp_path / "bench.json"
    code = bench_main([
        "run", "--micro-only",
        "--micro-events", "2000", "--columnar-events", "5000",
        "--label", "test", "--notes", "test-host",
        "--out", str(out),
    ])
    assert code == 0
    data = json.loads(out.read_text())
    assert data["notes"]["test"] == "test-host"
    assert "python" in data["platform"]
    micro = data["engine_microbench"]["test"]
    assert micro["events_per_s"] > 0
    columnar = data["columnar_microbench"]["test"]
    assert columnar["events_per_s"] > 0
    assert columnar["backend"] in ("numpy", "python")
    assert columnar["equivalent_to_event_engine"] is True


def test_bench_compare_reports_ratio(capsys, tmp_path):
    out = tmp_path / "bench.json"
    merge_results(out, "engine_microbench", {"events_per_s": 100.0}, "old")
    merge_results(out, "engine_microbench", {"events_per_s": 300.0}, "new")

    assert bench_main(["compare", "old", "new", "--json", str(out)]) == 0
    result = json.loads(capsys.readouterr().out)
    assert result["events_per_s"]["ratio"] == 3.0

    # Regression gate: after/before below --min-ratio fails.
    assert bench_main([
        "compare", "old", "new", "--json", str(out), "--min-ratio", "5.0",
    ]) == 1
    # Missing labels are a usage error, not a crash.
    assert bench_main(["compare", "old", "nope", "--json", str(out)]) == 2


def test_bench_merge_folds_files(capsys, tmp_path):
    a, b, dest = tmp_path / "a.json", tmp_path / "b.json", tmp_path / "all.json"
    merge_results(a, "engine_microbench", {"events_per_s": 1.0}, "hostA")
    merge_results(b, "engine_microbench", {"events_per_s": 2.0}, "hostB")
    merge_results(b, "sweep", {"serial_wall_s": 3.0}, "hostB")
    assert bench_main(["merge", str(a), str(b), "--into", str(dest)]) == 0
    merged = json.loads(dest.read_text())
    assert set(merged["engine_microbench"]) == {"hostA", "hostB"}
    assert "sweep" in merged


def test_bench_ab_exit_codes(capsys, monkeypatch):
    import repro.vector.ab as ab_mod

    captured_kwargs = {}

    def fake_run_ab(**kwargs):
        captured_kwargs.update(kwargs)
        return AbReport(label="ab", compared=5)

    monkeypatch.setattr(ab_mod, "run_ab", fake_run_ab)
    code = bench_main([
        "ab", "--mixes", "3", "--quanta", "1", "--cores", "2",
        "--seed", "11", "--skip-experiments", "--telemetry-faults", "",
    ])
    assert code == 0
    assert "bit-identical" in capsys.readouterr().out
    assert captured_kwargs == {
        "num_mixes": 3,
        "quanta": 1,
        "num_cores": 2,
        "seed": 11,
        "include_experiments": False,
        "telemetry_faults": None,
    }

    def failing_run_ab(**kwargs):
        report = AbReport(label="ab", compared=1)
        report.mismatches.append("quantum 0 diverged")
        return report

    monkeypatch.setattr(ab_mod, "run_ab", failing_run_ab)
    assert bench_main(["ab"]) == 1
    assert "MISMATCH" in capsys.readouterr().out
