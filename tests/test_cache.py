"""Unit tests for the set-associative write-back cache."""

import pytest

from repro.cache.cache import SetAssocCache
from repro.config import CacheConfig


@pytest.fixture
def cache(small_cache_config):
    return SetAssocCache(small_cache_config)


def test_cold_miss_then_hit(cache):
    assert not cache.access(100).hit
    assert cache.access(100).hit
    assert cache.hits == 1 and cache.misses == 1


def test_eviction_reports_victim_line_address(cache):
    num_sets = cache.num_sets
    base = 7  # all addresses map to set 7
    for i in range(4):
        cache.access(base + i * num_sets)
    result = cache.access(base + 4 * num_sets)
    assert not result.hit
    assert result.evicted_line_addr == base  # LRU victim
    assert result.writeback_line_addr is None  # clean


def test_dirty_victim_triggers_writeback(cache):
    num_sets = cache.num_sets
    cache.access(3, is_write=True)
    for i in range(1, 5):
        cache.access(3 + i * num_sets)
    # line 3 was LRU and dirty
    results = [cache.access(3 + 5 * num_sets)]
    writebacks = [r.writeback_line_addr for r in results if r.writeback_line_addr]
    # the dirty line was evicted at some point during the fills above or now
    assert cache.contains(3) is False


def test_write_marks_line_dirty_and_hit_keeps_it(cache):
    cache.access(5)
    cache.access(5, is_write=True)
    num_sets = cache.num_sets
    for i in range(1, 4):
        cache.access(5 + i * num_sets)
    result = cache.access(5 + 4 * num_sets)
    assert result.writeback_line_addr == 5


def test_contains_does_not_disturb_lru(cache):
    num_sets = cache.num_sets
    for i in range(4):
        cache.access(1 + i * num_sets)
    # Probing the LRU line must not promote it.
    assert cache.contains(1)
    result = cache.access(1 + 4 * num_sets)
    assert result.evicted_line_addr == 1


def test_invalidate(cache):
    cache.access(9)
    assert cache.invalidate(9)
    assert not cache.contains(9)
    assert not cache.invalidate(9)


def test_addresses_in_different_sets_do_not_conflict(cache):
    for addr in range(cache.num_sets):
        cache.access(addr)
    for addr in range(cache.num_sets):
        assert cache.contains(addr)


def test_reset_stats(cache):
    cache.access(1)
    cache.access(1)
    cache.reset_stats()
    assert cache.hits == 0 and cache.misses == 0 and cache.accesses == 0
