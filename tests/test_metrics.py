"""Unit tests for evaluation metrics."""

import math

import pytest

from repro.harness import metrics


def test_estimation_error_pct():
    assert metrics.estimation_error_pct(2.0, 2.0) == 0.0
    assert metrics.estimation_error_pct(3.0, 2.0) == pytest.approx(50.0)
    assert metrics.estimation_error_pct(1.0, 2.0) == pytest.approx(50.0)
    with pytest.raises(ValueError):
        metrics.estimation_error_pct(1.0, 0.0)


def test_mean_and_stdev():
    assert metrics.mean([1, 2, 3]) == 2
    assert metrics.stdev([1, 1, 1]) == 0
    assert metrics.stdev([2, 4]) == pytest.approx(math.sqrt(2))
    with pytest.raises(ValueError):
        metrics.mean([])


def test_max_slowdown():
    assert metrics.max_slowdown([1.5, 3.0, 2.0]) == 3.0
    with pytest.raises(ValueError):
        metrics.max_slowdown([])


def test_harmonic_speedup():
    # Four unslowed applications: harmonic speedup 1.
    assert metrics.harmonic_speedup([1, 1, 1, 1]) == pytest.approx(1.0)
    # Uniform 2x slowdown halves it.
    assert metrics.harmonic_speedup([2, 2]) == pytest.approx(0.5)


def test_weighted_speedup():
    assert metrics.weighted_speedup([1, 2]) == pytest.approx(1.5)
    with pytest.raises(ValueError):
        metrics.weighted_speedup([0.0])


def test_error_histogram():
    hist = metrics.error_histogram([5, 15, 25, 75], [0, 10, 20, 50])
    assert hist == pytest.approx([0.25, 0.25, 0.25, 0.25])
    with pytest.raises(ValueError):
        metrics.error_histogram([], [0, 10])


def test_summarize_errors():
    summary = metrics.summarize_errors({"asm": [10.0, 20.0], "fst": []})
    assert summary["asm"]["mean"] == 15.0
    assert summary["asm"]["max"] == 20.0
    assert summary["asm"]["n"] == 2
    assert "fst" not in summary
