"""Tests for the observability layer (repro.obs).

The load-bearing guarantee is bit-identity: attaching a trace bus and a
metrics registry must not change a single bit of the simulated results.
The rest covers the sinks, the metrics instruments and their conservation
law, the trace inspector against the model's own statistics, the CLI
verbs, and the campaign profile mode.
"""

import json

import pytest

from repro.config import scaled_config
from repro.harness.runner import run_workload
from repro.models.asm import AsmModel
from repro.obs import (
    ALL_CATEGORIES,
    CACHE,
    DEFAULT_CATEGORIES,
    EPOCH,
    MODEL,
    POLICY,
    QUANTUM,
    JsonlSink,
    MetricsRegistry,
    NullSink,
    RingBufferSink,
    TraceBus,
    TraceEvent,
    mask_for,
    names_for,
    read_jsonl,
)
from repro.obs.inspect import render_summary, summarize_events
from repro.policies.asm_cache import AsmCachePolicy
from repro.resilience.campaign import Campaign, result_to_json
from repro.workloads.mixes import make_mix

CONFIG = scaled_config(2).with_quantum(50_000, 5_000)


def _mix(seed=3):
    return make_mix(["mcf", "bzip2"], seed=seed)


def _run(obs=None, run_metrics=None, quanta=2, policies=True):
    factories = {
        "asm": lambda: AsmModel(sampled_sets=CONFIG.ats_sampled_sets)
    }
    policy_factories = (
        [lambda models: AsmCachePolicy(models["asm"])] if policies else None
    )
    return run_workload(
        _mix(),
        CONFIG,
        model_factories=factories,
        policy_factories=policy_factories,
        quanta=quanta,
        obs=obs,
        run_metrics=run_metrics,
    )


def _fingerprint(result):
    return json.dumps(result_to_json(result), sort_keys=True)


# ----------------------------------------------------------------------
# Bit-identity: observability is passive.

def test_disabled_and_enabled_bus_are_bit_identical():
    baseline = _fingerprint(_run())
    masked = TraceBus([RingBufferSink()], categories=0)
    assert _fingerprint(_run(obs=masked)) == baseline
    full = TraceBus([RingBufferSink()], categories=ALL_CATEGORIES)
    metrics = MetricsRegistry()
    assert _fingerprint(_run(obs=full, run_metrics=metrics)) == baseline
    # The instrumented run actually observed something.
    assert full.sinks[0].total > 0
    assert len(metrics.snapshots) == 2


def test_masked_bus_receives_no_events():
    ring = RingBufferSink()
    _run(obs=TraceBus([ring], categories=0))
    assert ring.total == 0


def test_category_mask_filters_events():
    ring = RingBufferSink()
    _run(obs=TraceBus([ring], categories=QUANTUM | POLICY))
    cats = {e.category for e in ring.events()}
    assert cats <= {QUANTUM, POLICY}
    assert QUANTUM in cats


def test_cache_category_traces_accesses():
    ring = RingBufferSink(capacity=200_000)
    _run(obs=TraceBus([ring], categories=CACHE), quanta=1)
    accesses = [e for e in ring.events() if e.category == CACHE]
    assert accesses, "CACHE category should emit per-access events"
    assert {e.kind for e in accesses} == {"access"}
    assert all(isinstance(e.data["hit"], bool) for e in accesses)


# ----------------------------------------------------------------------
# Category masks.

def test_mask_for_round_trip():
    assert mask_for(["quantum", "model"]) == QUANTUM | MODEL
    assert mask_for(["all"]) == ALL_CATEGORIES
    assert mask_for(["default"]) == DEFAULT_CATEGORIES
    assert DEFAULT_CATEGORIES == ALL_CATEGORIES & ~CACHE
    assert names_for(QUANTUM | EPOCH) == ["quantum", "epoch"]
    with pytest.raises(ValueError, match="unknown trace category"):
        mask_for(["nope"])


# ----------------------------------------------------------------------
# Sinks.

def test_ring_buffer_bounds():
    ring = RingBufferSink(capacity=16)
    for i in range(100):
        ring.write(TraceEvent(cycle=i, category=QUANTUM, kind="quantum"))
    assert len(ring) == 16
    assert ring.total == 100
    assert ring.dropped == 84
    assert [e.cycle for e in ring.events()] == list(range(84, 100))
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


def test_jsonl_sink_round_trip(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    events = [
        TraceEvent(1, QUANTUM, "quantum", {"index": 0, "shared_ipc": [0.5]}),
        TraceEvent(2, MODEL, "estimates",
                   {"model": "asm", "stats": [{"car_alone": 0.1}]}),
    ]
    sink = JsonlSink(path)
    for event in events:
        sink.write(event)
    sink.close()
    assert read_jsonl(path) == events
    with pytest.raises(ValueError, match="closed"):
        sink.write(events[0])
    sink.close()  # idempotent

    # A torn trailing line (interrupted run) is skipped, not fatal.
    with open(path, "a") as handle:
        handle.write('{"cycle": 3, "cat')
    assert read_jsonl(path) == events


def test_null_sink_counts():
    null = NullSink()
    bus = TraceBus([null])
    bus.emit(5, QUANTUM, "quantum", index=0)
    bus.emit(5, CACHE, "access", core=0, hit=True)
    assert null.count == 2


def test_bus_emit_rechecks_mask():
    ring = RingBufferSink()
    bus = TraceBus([ring], categories=QUANTUM)
    bus.emit(1, CACHE, "access", core=0, hit=True)  # masked: no-op
    bus.emit(1, QUANTUM, "quantum", index=0)
    assert ring.total == 1


# ----------------------------------------------------------------------
# Metrics.

def test_metrics_snapshot_conservation():
    metrics = MetricsRegistry()
    result = _run(run_metrics=metrics, quanta=3)
    assert len(metrics.snapshots) == len(result.records) == 3
    prev_events = 0
    for snap in metrics.snapshots:
        for core in range(2):
            hits = snap[f"core{core}.demand_hits"]
            misses = snap[f"core{core}.demand_misses"]
            assert hits + misses == snap[f"core{core}.demand_accesses"]
        assert snap["engine.events"] >= prev_events
        prev_events = snap["engine.events"]
        hist = snap["queueing_delay"]
        assert sum(hist["counts"]) == hist["count"]
    # CAR gauges from the model ride along.
    assert "asm.core0.car_alone" in metrics.snapshots[-1]
    assert metrics.snapshots[-1]["asm.core0.car_shared"] > 0


def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    counter.inc()
    counter.inc(2)
    assert counter.value == 3
    with pytest.raises(ValueError, match="cannot decrease"):
        counter.inc(-1)
    registry.gauge("g").set(1.5)
    hist = registry.histogram("h", edges=(10, 20))
    for value in (5, 15, 100):
        hist.observe(value)
    assert hist.counts == [1, 1, 1]
    assert hist.count == 3 and hist.mean == 40.0
    snap = registry.snapshot()
    assert snap["c"] == 3 and snap["g"] == 1.5
    assert snap["h"]["counts"] == [1, 1, 1]


def test_metrics_registry_name_collisions():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError, match="already used"):
        registry.gauge("x")
    registry.histogram("h", edges=(1, 2))
    with pytest.raises(ValueError, match="already exists"):
        registry.histogram("h", edges=(3, 4))
    with pytest.raises(ValueError, match="ascending"):
        registry.histogram("bad", edges=(5, 1))


# ----------------------------------------------------------------------
# Inspector: the summary must agree with the model's own statistics.

def test_summarize_matches_asm_quantum_stats():
    model = AsmModel(sampled_sets=CONFIG.ats_sampled_sets)
    policy = AsmCachePolicy(model)
    captured = []

    def capture_hook(system):
        # Appended after the model/policy listeners, so it sees each
        # quantum's final last_quantum statistics.
        system.quantum_listeners.append(
            lambda: captured.append(
                [(s.car_alone, s.car_shared) for s in model.last_quantum]
            )
        )

    ring = RingBufferSink(capacity=65536)
    bus = TraceBus([ring], categories=DEFAULT_CATEGORIES)
    run_workload(
        _mix(),
        CONFIG,
        model_factories={"asm": lambda: model},
        policy_factories=[lambda models: policy],
        quanta=2,
        system_hooks=[capture_hook],
        obs=bus,
    )
    summaries = summarize_events(ring.events())
    assert [s.index for s in summaries] == [0, 1]
    for summary, expected in zip(summaries, captured):
        stats = summary.models["asm"]["stats"]
        for core, (car_alone, car_shared) in enumerate(expected):
            assert stats[core]["car_alone"] == car_alone
            assert stats[core]["car_shared"] == car_shared
        # Epoch ownership fractions cover every epoch exactly once.
        assert summary.total_epochs == CONFIG.quantum_cycles // CONFIG.epoch_cycles
        assert sum(
            summary.epoch_fraction(c) for c in summary.epoch_counts
        ) == pytest.approx(1.0)
    # Policy decisions recorded in the trace match the policy object.
    reallocations = [e for s in summaries for e in s.reallocations()]
    skips = [e for s in summaries for e in s.skips()]
    assert len(skips) == policy.skipped_reallocations
    if policy.last_allocation is not None:
        assert reallocations[-1]["allocation"] == policy.last_allocation
    text = render_summary(summaries)
    assert "quantum 0 @" in text and "CAR_alone" in text


def test_summarize_empty_trace():
    assert summarize_events([]) == []
    assert "no quantum boundaries" in render_summary([])


# ----------------------------------------------------------------------
# Engine run observer.

def test_engine_run_observer_fires_once_per_run():
    from repro.harness.system import System

    calls = []
    system = System(CONFIG, _mix().traces(), seed=0)
    system.engine.run_observer = lambda events, seconds: calls.append(
        (events, seconds)
    )
    system.run_until(10_000)
    assert len(calls) == 1
    events, seconds = calls[0]
    assert events > 0 and seconds >= 0.0


# ----------------------------------------------------------------------
# CLI verbs.

def test_trace_summarize_cli(capsys):
    from repro.obs.cli import trace_main

    rc = trace_main([
        "summarize", "--quanta", "1",
        "--quantum-cycles", "50000", "--epoch-cycles", "5000",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "quantum 0 @" in out
    assert "CAR_alone" in out and "CAR_shared" in out


def test_trace_show_cli_with_jsonl(tmp_path, capsys):
    from repro.obs.cli import trace_main

    path = str(tmp_path / "t.jsonl")
    rc = trace_main([
        "show", "--quanta", "1", "--limit", "5",
        "--quantum-cycles", "50000", "--epoch-cycles", "5000",
        "--out", path,
    ])
    assert rc == 0
    assert "quantum" in capsys.readouterr().out
    events = read_jsonl(path)
    assert any(e.category == QUANTUM for e in events)
    rc = trace_main(["show", "--input", path, "--limit", "0"])
    assert rc == 0
    assert len(capsys.readouterr().out.strip().splitlines()) == len(events)


def test_profile_cli(capsys):
    from repro.obs.cli import profile_main

    rc = profile_main([
        "--quanta", "1",
        "--quantum-cycles", "50000", "--epoch-cycles", "5000",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "engine.drain" in out
    assert "hierarchy.access" in out
    assert "events/s" in out


def test_cli_dispatches_trace_verb(capsys):
    from repro.cli import main

    rc = main(["trace", "summarize", "--quanta", "1",
               "--quantum-cycles", "50000", "--epoch-cycles", "5000"])
    assert rc == 0
    assert "quantum 0 @" in capsys.readouterr().out


def test_cli_list_mentions_obs_verbs(capsys):
    from repro.cli import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "trace" in out and "profile" in out


# ----------------------------------------------------------------------
# Stage profiler.

def test_stage_profiler_results_bit_identical():
    from repro.obs.profile import StageProfiler

    baseline = _fingerprint(_run())
    profiler = StageProfiler()
    factories = {
        "asm": lambda: AsmModel(sampled_sets=CONFIG.ats_sampled_sets)
    }
    profiled = run_workload(
        _mix(),
        CONFIG,
        model_factories=factories,
        policy_factories=[lambda models: AsmCachePolicy(models["asm"])],
        quanta=2,
        system_hooks=[profiler.attach],
    )
    assert _fingerprint(profiled) == baseline
    stages = profiler.stages
    assert stages["engine.drain"].calls > 0
    assert stages["hierarchy.access"].calls > 0
    assert "AsmModel:asm" in stages and "AsmCachePolicy:asm-cache" in stages
    assert "engine.drain" in profiler.table()


# ----------------------------------------------------------------------
# Campaign profile mode.

def test_campaign_profile_mode(tmp_path):
    store_dir = str(tmp_path / "camp")
    campaign = Campaign("obs-test", store_dir, profile=True)
    mix = _mix()
    factories = {
        "asm": lambda: AsmModel(sampled_sets=CONFIG.ats_sampled_sets)
    }
    result = campaign.run_mix(
        mix, CONFIG, quanta=2, model_factories=factories
    )
    assert result is not None
    assert len(campaign.cell_timings) == 1
    timing = campaign.cell_timings[0]
    assert timing.mix == mix.name and timing.events > 0
    table = campaign.timing_table()
    assert mix.name in table and "events/s" in table
    key = campaign.run_key(mix, CONFIG, 2, "")
    snapshots = campaign.store.get_metrics(key)
    assert snapshots is not None and len(snapshots) == 2
    for snap in snapshots:
        hits = snap["core0.demand_hits"]
        misses = snap["core0.demand_misses"]
        assert hits + misses == snap["core0.demand_accesses"]


def test_campaign_profile_results_match_unprofiled(tmp_path):
    factories = {
        "asm": lambda: AsmModel(sampled_sets=CONFIG.ats_sampled_sets)
    }
    plain = Campaign("plain", None).run_mix(
        _mix(), CONFIG, quanta=2, model_factories=factories
    )
    profiled = Campaign("prof", None, profile=True).run_mix(
        _mix(), CONFIG, quanta=2, model_factories=factories
    )
    assert _fingerprint(plain) == _fingerprint(profiled)
