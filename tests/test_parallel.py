"""Tests for the parallel campaign execution layer (repro.parallel)."""

import pickle

import pytest

from repro.config import scaled_config
from repro.experiments.common import survey_errors
from repro.harness.runner import AloneProfile, AloneRunCache, run_workload
from repro.parallel import CellSpec, WorkerRunError, run_cells
from repro.resilience.campaign import Campaign
from repro.durability.retry import RetryPolicy
from repro.resilience.inject import (
    benign_model_factories,
    exploding_model_factories,
    flaky_model_factories,
    process_killer_factories,
)
from repro.workloads.mixes import make_mix, random_mixes

# Small platform so each cell simulates quickly.
CONFIG = scaled_config().with_quantum(50_000, 5_000)


def _mixes(count, seed=7):
    return random_mixes(count, CONFIG.num_cores, seed=seed)


def _cell(mix, builder=benign_model_factories, args=(), quanta=2):
    return CellSpec(
        mix=mix,
        config=CONFIG,
        quanta=quanta,
        model_builder=builder,
        model_builder_args=args,
    )


# ----------------------------------------------------------------------
# Determinism: a parallel sweep is bit-identical to a serial one.

def test_parallel_survey_matches_serial():
    mixes = _mixes(3)
    serial = survey_errors(
        mixes, CONFIG, quanta=2, workers=1,
        model_builder=benign_model_factories,
    )
    parallel = survey_errors(
        mixes, CONFIG, quanta=2, workers=2,
        model_builder=benign_model_factories,
    )
    assert serial.model_names == parallel.model_names
    assert serial.overall == parallel.overall
    assert serial.per_app == parallel.per_app
    assert serial.per_workload == parallel.per_workload


def test_run_cells_parallel_matches_serial_results():
    cells = [_cell(mix) for mix in _mixes(2)]
    serial = Campaign("t", None).run_cells(cells, workers=1)
    parallel = Campaign("t", None).run_cells(cells, workers=2)
    assert [r.records for r in serial] == [r.records for r in parallel]


def test_parallel_results_bit_identical_to_serial():
    """The determinism contract DET001/DET002 protect statically: the
    *serialized* records of a parallel sweep are byte-for-byte equal to a
    serial one — float formatting included, not just value equality."""
    import json

    from repro.resilience.campaign import result_to_json

    cells = [_cell(mix) for mix in _mixes(2)]
    serial = Campaign("t", None).run_cells(cells, workers=1)
    parallel = Campaign("t", None).run_cells(cells, workers=2)
    for left, right in zip(serial, parallel):
        assert json.dumps(result_to_json(left), sort_keys=True) == \
            json.dumps(result_to_json(right), sort_keys=True)


def test_random_mixes_independent_of_count():
    # Per-index seeding: mix i does not depend on how many mixes are drawn.
    longer = random_mixes(5, 4, seed=11)
    shorter = random_mixes(3, 4, seed=11)
    assert longer[:3] == shorter


# ----------------------------------------------------------------------
# Fault isolation in workers.

def test_worker_exception_captured_and_sweep_continues():
    mixes = _mixes(3)
    cells = [
        _cell(mixes[0]),
        _cell(mixes[1], builder=exploding_model_factories, args=(0,)),
        _cell(mixes[2]),
    ]
    campaign = Campaign("t", None, keep_going=True)
    results = campaign.run_cells(cells, workers=2)
    assert results[0] is not None and results[2] is not None
    assert results[1] is None
    assert len(campaign.failures) == 1
    failure = campaign.failures[0]
    assert failure.error_type == "InjectedFault"
    assert failure.mix_name == mixes[1].name
    assert "InjectedFault" in failure.traceback


def test_worker_exception_raises_without_keep_going():
    cells = [_cell(_mixes(1)[0], builder=exploding_model_factories, args=(0,))]
    campaign = Campaign("t", None)
    with pytest.raises(WorkerRunError) as excinfo:
        campaign.run_cells(cells, workers=2)
    assert excinfo.value.failure.error_type == "InjectedFault"


def test_worker_hard_crash_recorded_and_pool_recovers():
    mixes = _mixes(2)
    # The crashing cell is submitted first so crash attribution (which
    # scans futures in submission order) is deterministic.
    cells = [
        _cell(mixes[0], builder=process_killer_factories),
        _cell(mixes[1]),
    ]
    campaign = Campaign("t", None, keep_going=True)
    results = campaign.run_cells(cells, workers=2)
    assert results[0] is None
    assert results[1] is not None  # pool was rebuilt and the cell re-run
    assert len(campaign.failures) == 1
    assert campaign.failures[0].error_type == "WorkerCrash"


# ----------------------------------------------------------------------
# Checkpoint/resume through the parallel path.

def test_parallel_resume_after_partial_sweep(tmp_path):
    store = str(tmp_path / "campaign")
    mixes = _mixes(3)
    cells = [_cell(mix) for mix in mixes]

    # A sweep that dies after two cells: only their results are stored.
    first = Campaign("t", store)
    partial = first.run_cells(cells[:2], workers=2)
    assert first.computed == 2

    # Resume computes only the missing cell and reuses stored profiles.
    resumed = Campaign("t", store, resume=True)
    results = resumed.run_cells(cells, workers=2)
    assert resumed.resumed == 2
    assert resumed.computed == 1
    assert all(r is not None for r in results)
    assert [r.records for r in results[:2]] == [r.records for r in partial]

    # The resumed sweep equals a from-scratch serial sweep.
    scratch = Campaign("t", None).run_cells(cells, workers=1)
    assert [r.records for r in results] == [r.records for r in scratch]


def test_parallel_reuses_stored_alone_profiles(tmp_path):
    store = str(tmp_path / "campaign")
    mix = _mixes(1)[0]
    Campaign("t", store).run_cells([_cell(mix)], workers=2)

    again = Campaign("t", store)  # no resume: run cells afresh
    again.run_cells([_cell(mix)], workers=2)
    cache = again.alone_cache()
    assert cache.store_hits == mix.num_cores
    assert cache.misses == 0


# ----------------------------------------------------------------------
# Picklability of the payloads the pool ships around.

def test_run_result_pickle_roundtrip():
    mix = make_mix(["mcf", "libquantum", "astar", "povray"], seed=3)
    result = run_workload(
        mix, CONFIG, model_factories=benign_model_factories(), quanta=1
    )
    clone = pickle.loads(pickle.dumps(result))
    assert clone == result
    assert clone.mean_actual_slowdowns() == result.mean_actual_slowdowns()


def test_alone_profile_pickle_roundtrip():
    profile = AloneProfile(checkpoint_interval=2000,
                           instructions=[100, 250, 400])
    clone = pickle.loads(pickle.dumps(profile))
    assert clone == profile
    assert clone.time_at(300) == profile.time_at(300)


def test_cell_spec_is_picklable():
    cell = _cell(_mixes(1)[0])
    clone = pickle.loads(pickle.dumps(cell))
    assert clone == cell
    assert clone.model_builder is benign_model_factories


# ----------------------------------------------------------------------
# Alone-run cache statistics.

def test_alone_cache_counts_hits_and_misses():
    cache = AloneRunCache()
    mix = _mixes(1)[0]
    cache.get(mix, 0, CONFIG, 10_000)
    cache.get(mix, 0, CONFIG, 10_000)
    cache.get(mix, 1, CONFIG, 10_000)
    assert cache.stats() == {
        "hits": 1, "misses": 2, "lookups": 3, "store_hits": 0, "entries": 2,
    }
    assert "1 hits" in cache.summary()
    assert "2 computed" in cache.summary()


def test_campaign_summary_includes_alone_cache_line():
    campaign = Campaign("t", None)
    campaign.run_cells([_cell(_mixes(1)[0], quanta=1)], workers=1)
    assert "alone-run cache" in campaign.summary()


# ----------------------------------------------------------------------
# Supervised retry through the parallel path.

def _retrying_campaign(**kwargs):
    return Campaign(
        "t", None,
        retry_policy=RetryPolicy(max_attempts=3, backoff_s=0.0, jitter=0.0),
        **kwargs,
    )


def test_parallel_retry_recovers_worker_crash(tmp_path):
    mixes = _mixes(2)
    sentinel = str(tmp_path / "sentinel")
    cells = [
        _cell(mixes[0], builder=flaky_model_factories,
              args=(sentinel, "kill"), quanta=1),
        _cell(mixes[1], quanta=1),
    ]
    campaign = _retrying_campaign()
    results = campaign.run_cells(cells, workers=2)
    assert results[0] is not None and results[1] is not None
    assert campaign.retried_cells == 1
    assert campaign.retry_attempts >= 1
    assert campaign.failures == [] and campaign.degraded == []
    assert "recovered by retry" in campaign.summary()


def test_parallel_retry_result_matches_serial_retry(tmp_path):
    mix = _mixes(1)[0]
    parallel_sentinel = str(tmp_path / "parallel")
    serial_sentinel = str(tmp_path / "serial")
    parallel_campaign = _retrying_campaign()
    [parallel_result] = parallel_campaign.run_cells(
        [_cell(mix, builder=flaky_model_factories,
               args=(parallel_sentinel, "kill"), quanta=1)],
        workers=2,
    )
    serial_campaign = _retrying_campaign()
    serial_result = serial_campaign.run_mix(
        mix, CONFIG, quanta=1,
        model_factories=flaky_model_factories(serial_sentinel, "raise"),
    )
    from repro.resilience.campaign import result_to_json

    assert result_to_json(parallel_result) == result_to_json(serial_result)


def test_parallel_circuit_breaker_stops_deterministic_retries():
    mixes = _mixes(2)
    cells = [
        _cell(mixes[0], builder=exploding_model_factories, args=(0,), quanta=1),
        _cell(mixes[1], quanta=1),
    ]
    campaign = _retrying_campaign(keep_going=True)
    results = campaign.run_cells(cells, workers=2)
    assert results[0] is None and results[1] is not None
    # One retry proves the InjectedFault repeats; the circuit opens and
    # the third permitted attempt is never made.
    assert campaign.retry_attempts == 1
    assert [d.reason for d in campaign.degraded] == ["circuit_open"]
    assert campaign.degraded[0].attempts == 2
    assert len(campaign.failures) == 1


def test_parallel_degraded_cell_raises_without_keep_going():
    cells = [_cell(_mixes(1)[0], builder=exploding_model_factories,
                   args=(0,), quanta=1)]
    campaign = _retrying_campaign()
    with pytest.raises(WorkerRunError):
        campaign.run_cells(cells, workers=2)
    assert [d.reason for d in campaign.degraded] == ["circuit_open"]
