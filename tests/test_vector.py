"""Tests for the columnar backend's kernels, passes and staging plane.

Every kernel test runs under both backends (numpy when available, and the
pure-Python fallback via ``force_fallback``) — the fallback is what CI's
dependency-free legs exercise, so the two must agree everywhere.
"""

import random

import pytest

from repro.config import CacheConfig, DramConfig, SystemConfig, scaled_config
from repro.vector import columns as col
from repro.vector import passes
from repro.vector.batch import BatchPlane, RequestBatch, merge_streams, split_by_core


@pytest.fixture(params=["fallback", "numpy"] if col.HAVE_NUMPY else ["fallback"])
def backend(request):
    col.force_fallback(request.param == "fallback")
    yield request.param
    col.force_fallback(False)


def _rng(seed=1234):
    return random.Random(seed)


# ----------------------------------------------------------------------
# Kernels


def test_backend_reporting(backend):
    assert col.backend() == ("python" if backend == "fallback" else "numpy")


def test_elementwise_kernels_match_python(backend):
    rng = _rng()
    data = [rng.randrange(1 << 30) for _ in range(257)]
    c = col.column(data)
    assert col.tolist(c) == data
    assert col.size(c) == len(data)
    assert col.tolist(col.mod(c, 64)) == [v % 64 for v in data]
    assert col.tolist(col.floordiv(c, 64)) == [v // 64 for v in data]
    assert col.tolist(col.add_scalar(c, 7)) == [v + 7 for v in data]
    assert col.tolist(col.mul_scalar(c, 3)) == [v * 3 for v in data]
    other = col.column(list(reversed(data)))
    assert col.tolist(col.add(c, other)) == [
        a + b for a, b in zip(data, reversed(data))
    ]
    assert col.tolist(col.sub(c, other)) == [
        a - b for a, b in zip(data, reversed(data))
    ]
    total = 0
    expected_cumsum = []
    for v in data:
        total += v
        expected_cumsum.append(total)
    assert col.tolist(col.cumsum(c)) == expected_cumsum


def test_mask_kernels_match_python(backend):
    rng = _rng(5)
    data = [rng.randrange(8) for _ in range(100)]
    c = col.column(data)
    mask = col.eq_scalar(c, 3)
    expected = [v == 3 for v in data]
    assert [bool(b) for b in col.tolist(col.mask_to_column(mask))] == expected
    assert col.count_true(mask) == sum(expected)
    inv = col.logical_not(mask)
    assert col.count_true(inv) == len(data) - sum(expected)
    both = col.logical_and(mask, col.eq_scalar(c, 3))
    assert col.count_true(both) == sum(expected)
    assert col.true_indices(mask) == [i for i, v in enumerate(expected) if v]


def test_take_stable_order_group_by(backend):
    rng = _rng(9)
    keys = [rng.randrange(5) for _ in range(64)]
    c = col.column(keys)
    order = col.stable_order(c)
    sorted_keys = [keys[i] for i in order]
    assert sorted_keys == sorted(keys)
    # Stability: equal keys keep original relative order.
    for k in set(keys):
        positions = [i for i in order if keys[i] == k]
        assert positions == sorted(positions)
    assert col.tolist(col.take(c, list(order))) == sorted_keys

    groups = list(col.group_by(c))
    assert [k for k, _ in groups] == sorted(set(keys))
    for k, idx in groups:
        assert [keys[i] for i in idx] == [k] * len(idx)
        assert list(idx) == sorted(idx)  # original order within the group


def test_eq_prev_and_scatter(backend):
    data = [3, 3, 5, 5, 5, 2]
    c = col.column(data)
    assert [bool(b) for b in col.tolist(col.mask_to_column(col.eq_prev(c)))] == [
        False, True, False, True, True, False,
    ]
    mask = col.mask_column([True, False, True])
    scattered = col.scatter_mask(6, [5, 1, 0], mask)
    assert [bool(b) for b in col.tolist(col.mask_to_column(scattered))] == [
        True, False, False, False, False, True,
    ]


def test_merge_order_breaks_ties_by_seq(backend):
    cycles = col.column([7, 3, 7, 3])
    seqs = col.column([2, 1, 0, 3])
    assert list(col.merge_order(cycles, seqs)) == [1, 3, 2, 0]


def test_concat_and_full(backend):
    a, b = col.column([1, 2]), col.column([3])
    assert col.tolist(col.concat([a, b])) == [1, 2, 3]
    assert col.tolist(col.full(3, 9)) == [9, 9, 9]
    m = col.concat_masks([col.mask_column([True]), col.mask_column([False])])
    assert [bool(x) for x in col.tolist(col.mask_to_column(m))] == [True, False]


def test_firing_arithmetic(backend):
    assert col.firing_count(10, 50, 7) == len(range(10, 50, 7))
    assert col.tolist(col.firing_cycles(10, 6, 7)) == list(range(10, 52, 7))


# ----------------------------------------------------------------------
# LLC / ATS passes


def _cache():
    return CacheConfig(size_bytes=64 * 1024, associativity=4, latency=10)


def test_llc_classify_matches_config(backend):
    cache = _cache()
    addrs = [_rng(3).randrange(1 << 24) for _ in range(50)]
    set_idx, tags = passes.llc_classify(col.column(addrs), cache)
    assert col.tolist(set_idx) == [cache.set_index(a) for a in addrs]
    assert col.tolist(tags) == [a // cache.num_sets for a in addrs]


def test_sampled_set_mask(backend):
    set_idx = col.column(list(range(16)))
    mask = passes.sampled_set_mask(set_idx, 4)
    assert col.true_indices(mask) == [0, 4, 8, 12]
    all_mask = passes.sampled_set_mask(set_idx, 1)
    assert col.count_true(all_mask) == 16


def test_ats_access_batch_equals_scalar_access(backend):
    from repro.cache.auxtag import AuxiliaryTagStore

    cache = _cache()
    rng = _rng(77)
    addrs = [rng.randrange(4096) for _ in range(600)]

    scalar = AuxiliaryTagStore(cache, sampled_sets=32)
    outcomes = [scalar.access(a) for a in addrs]

    batched = AuxiliaryTagStore(cache, sampled_sets=32)
    sampled, hits = batched.access_batch(addrs)

    assert sampled == [o.sampled for o in outcomes]
    assert hits == [o.hit for o in outcomes]
    for attr in ("sampled_hits", "sampled_misses", "way_hits", "total_accesses"):
        assert getattr(batched, attr) == getattr(scalar, attr)
    # Tag state too: a subsequent identical access stream behaves the same.
    follow = [rng.randrange(4096) for _ in range(100)]
    assert [scalar.access(a).hit for a in follow] == list(
        batched.access_batch(follow)[1]
    )


def test_ats_access_batch_interleaved_spans(backend):
    """Splitting one stream into arbitrary spans never changes state."""
    from repro.cache.auxtag import AuxiliaryTagStore

    cache = _cache()
    rng = _rng(31)
    addrs = [rng.randrange(2048) for _ in range(400)]
    one = AuxiliaryTagStore(cache, sampled_sets=16)
    one.access_batch(addrs)
    many = AuxiliaryTagStore(cache, sampled_sets=16)
    i = 0
    while i < len(addrs):
        span = rng.randrange(1, 37)
        many.access_batch(addrs[i : i + span])
        i += span
    assert one.sampled_hits == many.sampled_hits
    assert one.way_hits == many.way_hits


# ----------------------------------------------------------------------
# DRAM passes vs the scalar oracle


def _dram():
    return DramConfig()


def test_dram_locate_matches_mapping(backend):
    from repro.mem.dram import DramMapping

    dram = DramConfig(channels=2, ranks_per_channel=2)
    mapping = DramMapping(dram)
    addrs = [_rng(8).randrange(1 << 26) for _ in range(200)]
    channels, banks, rows = passes.dram_locate(col.column(addrs), dram)
    expected = [mapping.locate(a) for a in addrs]
    assert list(zip(col.tolist(channels), col.tolist(banks), col.tolist(rows))) == expected


def test_row_buffer_scan_matches_service_request(backend):
    """The grouped scan reproduces the bank state machine of the scalar
    oracle for a fresh-bank back-to-back drain."""
    from repro.mem.dram import Channel, service_request
    from repro.mem.request import MemRequest

    dram = _dram()
    rng = _rng(13)
    # Single channel: many requests, few rows per bank to force all three
    # transition classes.
    reqs = []
    for _ in range(300):
        bank = rng.randrange(dram.banks_per_rank)
        row = rng.randrange(3)
        reqs.append((bank, row))

    channel = Channel(dram.banks_per_rank)
    now = 0
    oracle = []
    for bank, row in reqs:
        request = MemRequest(0, 0, is_write=False, arrival_time=now)
        request.bank = bank
        request.row = row
        completion, row_hit, _ = service_request(channel, request, now, dram)
        oracle.append((completion, row_hit))
        now = completion

    keys = col.column([b for b, _ in reqs])
    rows = col.column([r for _, r in reqs])
    hits, closed, conflicts = passes.row_buffer_scan(keys, rows)
    hits_l = [bool(b) for b in col.tolist(col.mask_to_column(hits))]
    closed_l = [bool(b) for b in col.tolist(col.mask_to_column(closed))]
    conflicts_l = [bool(b) for b in col.tolist(col.mask_to_column(conflicts))]

    assert hits_l == [h for _, h in oracle]
    # The three classes partition the batch.
    for h, c, x in zip(hits_l, closed_l, conflicts_l):
        assert h + c + x == 1

    latencies = passes.row_latencies(hits, closed, dram)
    completions = passes.replay_completions(latencies, dram, start=0)
    assert col.tolist(completions) == [c for c, _ in oracle]


def test_replay_assumption_holds_for_ddr3_timing():
    """tRAS never binds back-to-back: tRCD + CL + burst >= tRAS."""
    dram = _dram()
    assert dram.trcd + dram.cas_latency + dram.burst_time >= dram.tras


# ----------------------------------------------------------------------
# Batch plane and merge round-trip


class _Hierarchy:
    def __init__(self):
        self.access_listeners = []


def test_batch_plane_stages_and_flushes(backend):
    plane = BatchPlane(2)
    host = _Hierarchy()
    plane.bind(host)
    assert host.access_listeners == []  # lazy until a consumer registers
    seen = []
    plane.register(seen.append)
    assert host.access_listeners == [plane.stage]

    plane.stage(0, 100, False, True, 5)
    plane.stage(1, 200, True, False, 6)
    plane.flush()
    assert len(seen) == 1
    batch = seen[0]
    assert col.tolist(batch.addrs) == [100, 200]
    assert col.tolist(batch.cores) == [0, 1]
    assert [bool(h) for h in col.tolist(col.mask_to_column(batch.hits))] == [
        True, False,
    ]
    assert plane.requests_staged == 2 and plane.batches_flushed == 1
    plane.flush()  # empty flush is a no-op
    assert len(seen) == 1
    plane.flush_owner(3)  # adapter ignores the owner
    assert len(seen) == 1


def test_groups_by_core_orders_within_core(backend):
    batch = RequestBatch(
        cycles=col.column([1, 2, 3, 4]),
        addrs=col.column([10, 20, 30, 40]),
        cores=col.column([1, 0, 1, 0]),
        kinds=col.mask_column([False] * 4),
        hits=col.mask_column([True] * 4),
    )
    groups = dict((core, list(idx)) for core, idx in batch.groups_by_core())
    assert groups == {0: [1, 3], 1: [0, 2]}


def test_split_merge_round_trip(backend):
    rng = _rng(21)
    n = 500
    cycles_list = sorted(rng.randrange(10_000) for _ in range(n))
    batch = RequestBatch(
        cycles=col.column(cycles_list),
        addrs=col.column([rng.randrange(1 << 20) for _ in range(n)]),
        cores=col.column([rng.randrange(4) for _ in range(n)]),
        kinds=col.mask_column([rng.random() < 0.3 for _ in range(n)]),
        hits=col.mask_column([rng.random() < 0.6 for _ in range(n)]),
    )
    merged = merge_streams(split_by_core(batch))
    for field in ("cycles", "addrs", "cores"):
        assert col.tolist(getattr(merged, field)) == col.tolist(
            getattr(batch, field)
        )
    for field in ("kinds", "hits"):
        assert [bool(b) for b in col.tolist(col.mask_to_column(getattr(merged, field)))] == [
            bool(b) for b in col.tolist(col.mask_to_column(getattr(batch, field)))
        ]


# ----------------------------------------------------------------------
# Config plumbing


def test_engine_field_validates():
    SystemConfig(engine="columnar").validate()
    with pytest.raises(ValueError):
        SystemConfig(engine="gpu").validate()
    assert scaled_config().with_engine("columnar").engine == "columnar"


def test_config_fingerprint_unchanged_by_engine_field():
    """The engine field must not invalidate pre-existing campaign stores:
    default-engine configs fingerprint exactly as before the field existed
    (digests captured on the pre-change tree), and the columnar variant
    gets its own key."""
    from repro.resilience.faults import config_fingerprint

    assert config_fingerprint(SystemConfig()) == "cd734d0265708e27"
    assert config_fingerprint(scaled_config()) == "80f750177cde756e"
    assert config_fingerprint(scaled_config(8)) == "c7608857799a8f65"
    columnar = scaled_config().with_engine("columnar")
    assert config_fingerprint(columnar) == "e78ac93833d1d461"
    assert config_fingerprint(columnar) != config_fingerprint(scaled_config())


def test_alone_cache_key_excludes_engine():
    """Alone profiles are engine-independent and shared across backends."""
    from repro.harness.runner import AloneRunCache

    cache = AloneRunCache()
    event_key = cache._config_key(scaled_config())
    columnar_key = cache._config_key(scaled_config().with_engine("columnar"))
    assert event_key == columnar_key
