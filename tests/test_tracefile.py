"""Tests for trace file I/O."""

import itertools

import pytest

from repro.cpu.trace import TraceRecord
from repro.workloads.synthetic import SyntheticTrace
from repro.workloads.catalog import spec_by_name
from repro.workloads.tracefile import load_trace, save_trace


def test_roundtrip(tmp_path):
    records = [
        TraceRecord(gap=5, line_addr=0xABC, is_write=False),
        TraceRecord(gap=0, line_addr=0xDEF, is_write=True),
    ]
    path = tmp_path / "trace.txt"
    assert save_trace(records, path) == 2
    assert list(load_trace(path)) == records


def test_roundtrip_gzip(tmp_path):
    records = list(
        itertools.islice(SyntheticTrace(spec_by_name("gcc"), seed=1), 500)
    )
    path = tmp_path / "trace.txt.gz"
    save_trace(records, path)
    assert list(load_trace(path)) == records


def test_save_with_limit(tmp_path):
    trace = SyntheticTrace(spec_by_name("mcf"), seed=2)
    path = tmp_path / "trace.txt"
    assert save_trace(trace, path, limit=100) == 100
    assert len(list(load_trace(path))) == 100


def test_loop_replays(tmp_path):
    records = [TraceRecord(gap=1, line_addr=2, is_write=False)]
    path = tmp_path / "trace.txt"
    save_trace(records, path)
    looped = list(itertools.islice(load_trace(path, loop=True), 5))
    assert looped == records * 5


def test_comments_and_blank_lines_ignored(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("# header\n\n3 ff R\n# mid\n1 a W\n")
    records = list(load_trace(path))
    assert records == [
        TraceRecord(3, 0xFF, False),
        TraceRecord(1, 0xA, True),
    ]


def test_malformed_line_raises(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("1 ff X\n")
    with pytest.raises(ValueError, match="malformed"):
        list(load_trace(path))


def test_loop_on_empty_trace_raises(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("# empty\n")
    with pytest.raises(ValueError, match="no records"):
        next(load_trace(path, loop=True))


def test_loaded_trace_drives_simulation(tmp_path):
    """A recorded trace must be a drop-in replacement for a generator."""
    import dataclasses

    from repro.config import scaled_config
    from repro.harness.system import System

    path = tmp_path / "trace.txt"
    save_trace(SyntheticTrace(spec_by_name("gcc"), seed=3), path, limit=2000)
    config = dataclasses.replace(scaled_config(), num_cores=1)
    system = System(config, [load_trace(path, loop=True)], enable_epochs=False)
    system.run_until(50_000)
    assert system.cores[0].committed_instructions(50_000) > 0
