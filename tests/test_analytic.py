"""Tests for the closed-form fidelity tier (repro.analytic)."""

import filecmp
import time as _time
from pathlib import Path

import pytest

from repro.analytic.cpi import solve_alone, solve_shared
from repro.analytic.crossval import (
    ASM_DIVERGENCE_TOLERANCE_PCT,
    DivergenceReport,
    compare_results,
    cross_validate,
)
from repro.analytic.reuse import _PROFILE_CACHE, extract_profile, profile_mix
from repro.analytic.runner import (
    ENGINE_FOR_FIDELITY,
    FIDELITY_TIERS,
    resolve_fidelity,
    run_analytic,
)
from repro.config import SystemConfig, scaled_config
from repro.experiments import fidelity_sweep
from repro.experiments.common import (
    default_mixes,
    survey_errors,
    unsampled_models,
)
from repro.harness.system import System
from repro.lintkit import lint_paths
from repro.parallel import CellSpec, run_cells
from repro.resilience.campaign import Campaign
from repro.workloads.mixes import make_mix

REPO_ROOT = Path(__file__).resolve().parent.parent

# Small platform so the event-oracle legs simulate quickly.
CONFIG = scaled_config().with_quantum(50_000, 5_000)


def _mix(seed=1):
    return make_mix(["mcf", "bzip2", "libquantum", "h264ref"], seed=seed)


# ----------------------------------------------------------------------
# Profiles and the closed-form solve.

def test_profile_measures_the_generator():
    profile = extract_profile(_mix(), 0, sample_accesses=4096)
    assert profile.accesses == 4096
    assert 0.0 <= profile.cold_frac <= 1.0
    assert 0.0 <= profile.write_frac <= 1.0
    assert profile.reuse_frac == pytest.approx(1.0 - profile.cold_frac)
    assert profile.instructions_per_access() >= 1.0
    # D(n) is increasing, concave-ish, and bounded by n.
    assert profile.distinct_lines(0) == 0.0
    d1, d100 = profile.distinct_lines(1), profile.distinct_lines(100)
    assert 0.0 < d1 <= 1.0
    assert d1 <= d100 <= 100.0


def test_profile_memoised_per_process():
    mix = _mix(3)
    first = extract_profile(mix, 1, sample_accesses=2048)
    assert extract_profile(mix, 1, sample_accesses=2048) is first


def test_shared_solve_never_beats_alone():
    mix = _mix(2)
    profiles = profile_mix(mix, sample_accesses=4096)
    shared = solve_shared(profiles, CONFIG)
    for profile, rates in zip(profiles, shared):
        alone = solve_alone(profile, CONFIG)
        # Interference can only slow a core down.
        assert rates.cpi >= alone.cpi - 1e-9
        assert rates.hit_rate <= alone.hit_rate + 1e-9


# ----------------------------------------------------------------------
# The runner: RunResult shape, determinism, dispatch guards.

def test_run_analytic_result_shape():
    result = run_analytic(_mix(), CONFIG, quanta=3)
    assert len(result.records) == 3
    for record in result.records:
        assert set(record.estimates) == {"analytic", "asm"}
        assert record.estimates["asm"] == record.actual_slowdowns
        assert record.confidence["asm"] == [1.0] * 4
        assert all(s >= 1.0 - 1e-6 for s in record.actual_slowdowns)
    # Estimating its own ground truth, the survey error is exactly zero.
    assert result.mean_error("asm") == 0.0


def test_run_analytic_deterministic():
    a = run_analytic(_mix(5), CONFIG, quanta=2)
    _PROFILE_CACHE.clear()
    b = run_analytic(_mix(5), CONFIG, quanta=2)
    assert a.records == b.records


def test_resolve_fidelity_mapping():
    assert resolve_fidelity(CONFIG, "") is CONFIG
    for fidelity in FIDELITY_TIERS:
        assert (
            resolve_fidelity(CONFIG, fidelity).engine
            == ENGINE_FOR_FIDELITY[fidelity]
        )
    with pytest.raises(ValueError, match="unknown fidelity"):
        resolve_fidelity(CONFIG, "approximate")


def test_system_rejects_analytic_engine():
    config = CONFIG.with_engine("analytic")
    config.validate()  # the config itself is legal...
    with pytest.raises(ValueError, match="never construct a System"):
        System(config, traces=[iter(())] * config.num_cores)


# ----------------------------------------------------------------------
# Fidelity dispatch through campaigns and the pool.

def test_cellspec_fidelity_parallel_matches_serial():
    mixes = default_mixes(2, CONFIG.num_cores, seed=9)
    cells = [
        CellSpec(mix=mix, config=CONFIG, quanta=2, fidelity="analytical")
        for mix in mixes
    ]
    serial = run_cells(Campaign("t", None), cells, workers=1)
    parallel = run_cells(Campaign("t", None), cells, workers=2)
    assert [r.records for r in serial] == [r.records for r in parallel]
    for result in serial:
        assert result.config.engine == "analytic"


def test_survey_at_analytical_fidelity():
    mixes = default_mixes(2, CONFIG.num_cores, seed=4)
    survey = survey_errors(
        mixes, CONFIG, quanta=2, fidelity="analytical",
        model_builder=unsampled_models,
    )
    # The surrogate's estimate IS its ground truth; models it did not
    # run simply collect no errors instead of poisoning the survey.
    assert survey.mean_error("asm") == 0.0
    assert survey.overall.get("fst", []) == []


# ----------------------------------------------------------------------
# Cross-validation against the event oracle.

def test_crossval_within_documented_tolerance(tmp_path):
    campaign = Campaign("xval", str(tmp_path / "camp"))
    mixes = default_mixes(2, CONFIG.num_cores, seed=42)
    report = cross_validate(
        campaign, mixes, CONFIG, quanta=1, sample_size=2
    )
    assert report is not None
    assert report.mean_abs_pct("asm") < ASM_DIVERGENCE_TOLERANCE_PCT
    # The report also landed in the store, next to the other records.
    records = campaign.store.load_divergence()
    assert len(records) == 1
    assert records[0]["key"] == "xval:"
    assert records[0]["summary"]["asm"]["count"] == float(
        2 * CONFIG.num_cores
    )


def test_divergence_report_byte_equal_across_runs(tmp_path):
    mixes = default_mixes(1, CONFIG.num_cores, seed=11)
    paths = []
    for name in ("a", "b"):
        campaign = Campaign("xval", str(tmp_path / name))
        _PROFILE_CACHE.clear()
        cross_validate(campaign, mixes, CONFIG, quanta=1, sample_size=1)
        paths.append(tmp_path / name / "divergence.jsonl")
    assert filecmp.cmp(paths[0], paths[1], shallow=False)


def test_compare_results_self_is_zero():
    # The analytic tier's estimate IS its measured slowdown, so a run
    # compared against itself diverges by exactly zero everywhere.
    result = run_analytic(_mix(8), CONFIG, quanta=2)
    entries = compare_results(result, result)
    assert entries
    assert all(entry.abs_pct == 0.0 for entry in entries)
    report = DivergenceReport(fidelity="analytical", entries=entries)
    assert report.mean_abs_pct("asm") == 0.0


def test_fidelity_sweep_columnar_row_is_exact(tmp_path):
    campaign = Campaign("fidelity", str(tmp_path / "camp"))
    result = fidelity_sweep.run(
        num_mixes=1, quanta=1, config=CONFIG, campaign=campaign
    )
    table = result.format_table()
    assert "analytical" in table and "columnar" in table
    # Columnar is the bit-exact backend: measured slowdowns match the
    # oracle exactly, which is the self-check of the whole comparison.
    columnar = result.tiers["columnar"].report
    assert columnar.summary()["actual"]["max_abs_pct"] == 0.0
    analytic = result.tiers["analytical"].report
    assert analytic.mean_abs_pct("asm") < ASM_DIVERGENCE_TOLERANCE_PCT
    # One persisted report per surrogate tier.
    assert len(campaign.store.load_divergence()) == 2


# ----------------------------------------------------------------------
# Documentation and speed acceptance.

def test_doc001_clean_on_analytic_package():
    findings = lint_paths(
        [str(REPO_ROOT / "src" / "repro" / "analytic")], select=["DOC001"]
    )
    assert findings == []


def test_paper_scale_cell_under_ten_seconds():
    # Acceptance bound: a 4-core, 100M-cycle analytic cell in < 10 s
    # (the archived BENCH_perf.json run measures ~0.5 s cold).
    config = SystemConfig()  # paper-scale platform, 5M-cycle quanta
    mix = default_mixes(1, config.num_cores, seed=42)[0]
    _PROFILE_CACHE.clear()
    start = _time.perf_counter()
    result = run_analytic(mix, config, quanta=20)  # 20 x 5M cycles
    wall = _time.perf_counter() - start
    assert len(result.records) == 20
    assert wall < 10.0
