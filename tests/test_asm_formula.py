"""White-box tests of the ASM arithmetic (Section 4.2/4.3 formulas).

These inject crafted counter values into an attached AsmModel and verify
the estimate matches the paper's equations computed by hand — independent
of simulator behaviour.
"""

import dataclasses

import pytest

from repro.config import scaled_config
from repro.harness.system import System
from repro.models.asm import AsmModel
from repro.workloads.mixes import make_mix


@pytest.fixture
def attached_asm():
    config = dataclasses.replace(
        scaled_config().with_quantum(100_000, 5_000),
        epoch_warmup_cycles=0,
        num_cores=2,
    )
    mix = make_mix(["gcc", "mcf"], seed=1)
    system = System(config, mix.traces(), seed=1)
    asm = AsmModel(sampled_sets=None)
    asm.attach(system)
    return system, asm, config


def _inject(asm, core, *, epochs, hits, misses, ats_hits, hit_time,
            miss_time, accesses, queueing=0):
    asm._epoch_count[core] = epochs
    asm._epoch_hits[core] = hits
    asm._epoch_misses[core] = misses
    asm._epoch_sampled_ats_accesses[core] = hits + misses
    asm._epoch_sampled_ats_hits[core] = ats_hits
    asm._epoch_sampled_shared_hits[core] = hits
    asm._epoch_hit_time[core].busy_cycles = hit_time
    asm._epoch_miss_time[core].busy_cycles = miss_time
    asm._accesses[core] = accesses
    # The guarded read path cross-checks physical invariants (hits +
    # misses == accesses, epoch counts within quantum counts); keep the
    # crafted counters consistent so the formula path runs unguarded.
    asm._hits[core] = max(hits, accesses // 2)
    asm._misses[core] = accesses - asm._hits[core]
    asm.system.controller.queueing_cycles[core] = (
        asm._queueing._base[core] + queueing
    )


def test_formula_without_corrections(attached_asm):
    system, asm, config = attached_asm
    E = config.epoch_cycles
    # 4 epochs, 100 hits + 100 misses during them, no contention (ats_hits
    # == shared hits), no queueing: CAR_alone = 200 / (4 * 5000).
    _inject(asm, 0, epochs=4, hits=100, misses=100, ats_hits=100,
            hit_time=2000, miss_time=15000, accesses=1000)
    estimates = asm.estimate_slowdowns()
    car_alone = 200 / (4 * E)
    car_shared = 1000 / config.quantum_cycles
    assert estimates[0] == pytest.approx(max(1.0, car_alone / car_shared))


def test_formula_with_contention_excess(attached_asm):
    system, asm, config = attached_asm
    E = config.epoch_cycles
    # 50 contention misses (ats_hits 150 vs 100 shared hits);
    # avg_miss = 15000/100 = 150, avg_hit = 2000/100 = 20 -> excess 50*130.
    _inject(asm, 0, epochs=4, hits=100, misses=100, ats_hits=150,
            hit_time=2000, miss_time=15000, accesses=1000)
    estimates = asm.estimate_slowdowns()
    excess = 50 * (150 - 20)
    denom = 4 * E - excess
    expected = (200 / denom) / (1000 / config.quantum_cycles)
    assert estimates[0] == pytest.approx(expected)


def test_formula_with_queueing_correction(attached_asm):
    system, asm, config = attached_asm
    E = config.epoch_cycles
    # No contention, 1000 queueing cycles over 100 misses -> qd = 10;
    # ats_misses = 100 (hit fraction 0.5 of 200 accesses).
    _inject(asm, 0, epochs=4, hits=100, misses=100, ats_hits=100,
            hit_time=2000, miss_time=15000, accesses=1000, queueing=1000)
    estimates = asm.estimate_slowdowns()
    ats_misses = 200 * (1 - 100 / 200)
    denom = 4 * E - ats_misses * (1000 / 100)
    expected = (200 / denom) / (1000 / config.quantum_cycles)
    assert estimates[0] == pytest.approx(expected)


def test_queueing_correction_disabled(attached_asm):
    system, asm, config = attached_asm
    asm.queueing_correction = False
    _inject(asm, 0, epochs=4, hits=100, misses=100, ats_hits=100,
            hit_time=2000, miss_time=15000, accesses=1000, queueing=1000)
    estimates = asm.estimate_slowdowns()
    expected = (200 / (4 * config.epoch_cycles)) / (
        1000 / config.quantum_cycles
    )
    assert estimates[0] == pytest.approx(max(1.0, expected))


def test_no_epochs_yields_neutral_estimate(attached_asm):
    _, asm, _ = attached_asm
    estimates = asm.estimate_slowdowns()
    assert estimates == [1.0, 1.0]


def test_degenerate_denominator_clamped(attached_asm):
    system, asm, config = attached_asm
    # Absurd contention: excess would exceed the prioritised cycles.
    _inject(asm, 0, epochs=1, hits=10, misses=1000, ats_hits=1010,
            hit_time=100, miss_time=500_000, accesses=2000)
    estimates = asm.estimate_slowdowns()
    assert 1.0 <= estimates[0] <= 50.0


def test_car_for_ways_formula(attached_asm):
    system, asm, config = attached_asm
    stats = asm.last_quantum[0]
    stats.quantum_hits = 100
    stats.quantum_misses = 100
    stats.avg_hit_time = 20.0
    stats.avg_miss_time = 220.0
    stats.quantum_cycles = config.quantum_cycles
    # hits_with_ways(n): 0 hits at 0 ways, 150 at full ways.
    stats.utility_curve = [0.0] + [150.0] * config.llc.associativity
    # With full ways: delta_hits = 50, cycles = Q - 50*200.
    car = asm.car_for_ways(0, config.llc.associativity)
    expected = 200 / (config.quantum_cycles - 50 * 200)
    assert car == pytest.approx(expected)
    # With 0 ways: delta_hits = -100 -> cycles grow.
    car0 = asm.car_for_ways(0, 0)
    expected0 = 200 / (config.quantum_cycles + 100 * 200)
    assert car0 == pytest.approx(expected0)
