"""Unit tests for the stride prefetcher."""

from repro.cpu.prefetcher import StridePrefetcher

import pytest


def test_no_prefetch_before_confidence():
    pf = StridePrefetcher(degree=2, distance=4)
    assert pf.observe(100) == []
    assert pf.observe(101) == []  # first stride observation: not confident


def test_prefetches_after_stable_stride():
    pf = StridePrefetcher(degree=2, distance=4)
    pf.observe(100)
    pf.observe(101)
    targets = pf.observe(102)
    assert targets == [106, 107]


def test_negative_stride_supported():
    pf = StridePrefetcher(degree=1, distance=2)
    pf.observe(100)
    pf.observe(98)
    targets = pf.observe(96)
    assert targets == [92]


def test_stride_change_resets_confidence():
    pf = StridePrefetcher(degree=1, distance=1)
    pf.observe(0)
    pf.observe(1)
    assert pf.observe(2)  # confident
    assert pf.observe(10) == []  # stride broke (8 seen once)
    assert pf.observe(18)  # stride 8 seen twice: confident again


def test_duplicate_filter_suppresses_reissue():
    pf = StridePrefetcher(degree=1, distance=4)
    pf.observe(0)
    pf.observe(1)
    first = pf.observe(2)
    second = pf.observe(3)
    assert first == [6]
    assert second == [7], "6 was already prefetched"


def test_zero_stride_never_prefetches():
    pf = StridePrefetcher()
    for _ in range(10):
        assert pf.observe(5) == []


def test_reset_clears_state():
    pf = StridePrefetcher(degree=1, distance=1)
    pf.observe(0)
    pf.observe(1)
    pf.observe(2)
    pf.reset()
    assert pf.observe(3) == []


def test_invalid_params():
    with pytest.raises(ValueError):
        StridePrefetcher(degree=0)
    with pytest.raises(ValueError):
        StridePrefetcher(distance=0)
