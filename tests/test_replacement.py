"""Unit tests for LRU set machinery."""

from repro.cache.replacement import Line, LruSet


def test_insert_until_full_then_evict_lru():
    lru = LruSet(2)
    assert lru.insert(Line(1)) is None
    assert lru.insert(Line(2)) is None
    victim = lru.insert(Line(3))
    assert victim is not None and victim.tag == 1


def test_touch_promotes_to_mru():
    lru = LruSet(2)
    lru.insert(Line(1))
    lru.insert(Line(2))
    lru.touch(lru.find(1))
    victim = lru.insert(Line(3))
    assert victim.tag == 2


def test_stack_position_is_mru_distance():
    lru = LruSet(4)
    for tag in (1, 2, 3):
        lru.insert(Line(tag))
    assert lru.stack_position(3) == 0
    assert lru.stack_position(2) == 1
    assert lru.stack_position(1) == 2
    assert lru.stack_position(99) is None


def test_evict_removes_specific_tag():
    lru = LruSet(4)
    lru.insert(Line(1))
    lru.insert(Line(2))
    assert lru.evict(1).tag == 1
    assert lru.find(1) is None
    assert lru.evict(1) is None
    assert lru.occupancy() == 1


def test_insert_with_quota_evicts_over_quota_owner_first():
    lru = LruSet(4)
    # Owner 0 holds 3 lines, owner 1 holds 1.
    for tag in (1, 2, 3):
        lru.insert(Line(tag, owner=0))
    lru.insert(Line(4, owner=1))
    # Quota: owner 0 may hold 2 ways, owner 1 may hold 2.
    victim = lru.insert_with_quota(Line(5, owner=1), [2, 2])
    # Owner 0 is over quota; its LRU line (tag 1) goes.
    assert victim.tag == 1 and victim.owner == 0


def test_insert_with_quota_self_evicts_within_quota():
    lru = LruSet(2)
    lru.insert(Line(1, owner=0))
    lru.insert(Line(2, owner=1))
    # Both owners within quota [1, 1]: inserting owner 0 evicts its own line.
    victim = lru.insert_with_quota(Line(3, owner=0), [1, 1])
    assert victim.tag == 1 and victim.owner == 0


def test_insert_with_quota_zero_quota_owner_always_evicted():
    lru = LruSet(2)
    lru.insert(Line(1, owner=0))
    lru.insert(Line(2, owner=0))
    victim = lru.insert_with_quota(Line(3, owner=1), [0, 2])
    assert victim.owner == 0
