"""Tests for the run orchestration and ground-truth machinery."""

import math

import pytest

from repro.config import scaled_config
from repro.harness.runner import (
    AloneProfile,
    AloneRunCache,
    run_alone,
    run_workload,
)
from repro.models.asm import AsmModel
from repro.workloads.mixes import make_mix


def test_alone_profile_interpolation():
    profile = AloneProfile(checkpoint_interval=100, instructions=[50, 100, 150])
    assert profile.time_at(0) == 0.0
    assert profile.time_at(50) == 100.0
    assert profile.time_at(75) == 150.0
    assert profile.time_at(150) == 300.0


def test_alone_profile_extrapolates_past_range():
    profile = AloneProfile(checkpoint_interval=100, instructions=[50, 100])
    # Slope of last interval: 50 instructions per 100 cycles.
    assert profile.time_at(125) == pytest.approx(250.0)


def test_alone_profile_empty_assumes_one_ipc():
    profile = AloneProfile(checkpoint_interval=100, instructions=[])
    assert profile.time_at(0) == 0.0
    assert profile.time_at(250) == 250.0


def test_alone_profile_single_checkpoint_extrapolates():
    profile = AloneProfile(checkpoint_interval=100, instructions=[50])
    # Only one checkpoint: extrapolate with its own rate (50 per 100 cycles).
    assert profile.time_at(100) == pytest.approx(200.0)


def test_alone_profile_flat_tail_uses_average_rate():
    # The run stalled at 60 instructions: the last interval's slope is 0.
    profile = AloneProfile(checkpoint_interval=10, instructions=[30, 60, 60])
    # Whole-profile average: 60 insts over 3 checkpoints = 20 per interval.
    assert profile.time_at(80) == pytest.approx((3 + 20 / 20) * 10)


def test_alone_profile_zero_progress_is_unreachable():
    profile = AloneProfile(checkpoint_interval=10, instructions=[0, 0])
    assert profile.time_at(5) == float("inf")


def test_alone_profile_cycles_for_span_monotone():
    profile = AloneProfile(checkpoint_interval=10, instructions=[10, 30, 60])
    assert profile.cycles_for_span(10, 30) == pytest.approx(10.0)
    assert profile.cycles_for_span(0, 60) == pytest.approx(30.0)


def test_run_alone_produces_monotone_profile():
    config = scaled_config()
    mix = make_mix(["gcc"], seed=1)
    profile = run_alone(mix.trace_for_core(0), config, cycles=100_000)
    assert len(profile.instructions) == 50
    assert all(
        a <= b for a, b in zip(profile.instructions, profile.instructions[1:])
    )
    assert profile.instructions[-1] > 0


def test_alone_cache_reuses_profiles():
    config = scaled_config().with_quantum(100_000, 5_000)
    mix = make_mix(["gcc", "mcf"], seed=2)
    cache = AloneRunCache()
    run_workload(mix, config, quanta=1, alone_cache=cache)
    assert len(cache) == 2
    run_workload(mix, config, quanta=1, alone_cache=cache)
    assert len(cache) == 2  # second run hits the cache


def test_run_workload_ground_truth_sane():
    config = scaled_config().with_quantum(200_000, 5_000)
    mix = make_mix(["mcf", "bzip2", "libquantum", "h264ref"], seed=1)
    result = run_workload(
        mix,
        config,
        model_factories={"asm": lambda: AsmModel(sampled_sets=16)},
        quanta=2,
    )
    assert len(result.records) == 2
    for record in result.records:
        for core in range(4):
            actual = record.actual_slowdowns[core]
            assert not math.isnan(actual)
            # Interference can only slow applications down (within noise).
            assert actual > 0.9
            assert record.estimates["asm"][core] >= 1.0


def test_run_result_aggregates():
    config = scaled_config().with_quantum(150_000, 5_000)
    mix = make_mix(["mcf", "ft"], seed=4)
    result = run_workload(
        mix,
        config,
        model_factories={"asm": lambda: AsmModel(sampled_sets=16)},
        quanta=2,
    )
    slowdowns = result.mean_actual_slowdowns()
    assert len(slowdowns) == 2
    assert result.max_slowdown() == max(slowdowns)
    assert 0 < result.harmonic_speedup() <= 1.5
    errors = result.errors_for("asm")
    assert len(errors) == 2
    assert result.mean_error("asm") >= 0


def test_run_workload_is_deterministic():
    config = scaled_config().with_quantum(100_000, 5_000)
    mix = make_mix(["mcf", "ft"], seed=4)
    a = run_workload(mix, config, quanta=1)
    b = run_workload(mix, config, quanta=1)
    assert a.records[0].instructions == b.records[0].instructions
    assert a.records[0].actual_slowdowns == b.records[0].actual_slowdowns


def test_profile_sink_receives_run_profile():
    config = scaled_config().with_quantum(100_000, 5_000)
    mix = make_mix(["mcf", "ft"], seed=4)
    profiles = []
    run_workload(mix, config, quanta=2, profile_sink=profiles.append)
    assert len(profiles) == 1
    profile = profiles[0]
    assert profile.events_executed > 0
    assert profile.events_per_second > 0
    assert len(profile.quantum_times_s) == 2
    assert profile.wall_time_s >= profile.alone_time_s
    assert 0.0 <= profile.share("alone") <= 1.0
    assert 0.0 <= profile.share("shared") <= 1.0


def test_profiling_does_not_change_results():
    config = scaled_config().with_quantum(100_000, 5_000)
    mix = make_mix(["mcf", "ft"], seed=4)
    plain = run_workload(mix, config, quanta=1)
    profiled = run_workload(mix, config, quanta=1, profile_sink=lambda p: None)
    assert plain.records == profiled.records
