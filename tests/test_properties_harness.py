"""Property-based tests for the harness layer (alone profiles, traces,
metrics) — complements test_properties.py's substrate coverage."""

import itertools
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness import metrics
from repro.harness.runner import AloneProfile
from repro.workloads.synthetic import AppSpec, SyntheticTrace


# -- AloneProfile -----------------------------------------------------------
profiles = st.lists(
    st.integers(min_value=0, max_value=50), min_size=1, max_size=50
).map(lambda deltas: AloneProfile(100, list(itertools.accumulate(deltas))))


@given(profiles, st.integers(0, 3000))
@settings(max_examples=60, deadline=None)
def test_profile_time_monotone_in_instructions(profile, inst):
    t1 = profile.time_at(inst)
    t2 = profile.time_at(inst + 1)
    assert t2 >= t1 >= 0


@given(profiles, st.integers(0, 1500), st.integers(0, 1500))
@settings(max_examples=60, deadline=None)
def test_profile_span_additivity(profile, a, b):
    lo, hi = sorted((a, b))
    mid = (lo + hi) // 2
    if profile.instructions[-1] == 0 and hi > 0:
        # A zero-progress profile makes every instruction beyond it
        # unreachable in alone time: spans are infinite, not additive.
        assert math.isinf(profile.time_at(hi))
        return
    total = profile.cycles_for_span(lo, hi)
    split = profile.cycles_for_span(lo, mid) + profile.cycles_for_span(mid, hi)
    assert math.isclose(total, split, rel_tol=1e-9, abs_tol=1e-6)


@given(profiles)
@settings(max_examples=40, deadline=None)
def test_profile_checkpoint_inversion(profile):
    """time_at(instructions[k]) is within the checkpoint that recorded it."""
    for k, inst in enumerate(profile.instructions):
        if k > 0 and inst == profile.instructions[k - 1]:
            continue  # stalled interval: inversion maps to its first index
        t = profile.time_at(inst)
        assert t <= (k + 1) * profile.checkpoint_interval + 1e-9


# -- SyntheticTrace ---------------------------------------------------------
specs = st.builds(
    AppSpec,
    name=st.just("prop"),
    apki=st.floats(min_value=0.5, max_value=50, allow_nan=False),
    reuse_prob=st.floats(min_value=0.0, max_value=1.0),
    reuse_depth=st.integers(min_value=1, max_value=10_000),
    footprint_lines=st.integers(min_value=10, max_value=1_000_000),
    seq_frac=st.floats(min_value=0.0, max_value=1.0),
    write_frac=st.floats(min_value=0.0, max_value=1.0),
)


@given(specs, st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_trace_records_within_bounds(spec, seed):
    base = 1 << 28
    trace = SyntheticTrace(spec, seed=seed, base_line=base)
    for record in itertools.islice(trace, 200):
        assert record.gap >= 0
        assert base <= record.line_addr < base + spec.footprint_lines
        assert isinstance(record.is_write, bool)


@given(specs, st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_trace_determinism_property(spec, seed):
    a = list(itertools.islice(SyntheticTrace(spec, seed=seed), 100))
    b = list(itertools.islice(SyntheticTrace(spec, seed=seed), 100))
    assert a == b


# -- metrics ---------------------------------------------------------------
slowdown_lists = st.lists(
    st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
    min_size=1,
    max_size=16,
)


@given(slowdown_lists)
@settings(max_examples=60, deadline=None)
def test_harmonic_speedup_bounds(slowdowns):
    hs = metrics.harmonic_speedup(slowdowns)
    assert 0 < hs <= 1.0
    assert hs <= 1.0 / min(slowdowns) + 1e-9


@given(slowdown_lists)
@settings(max_examples=60, deadline=None)
def test_weighted_vs_harmonic_consistency(slowdowns):
    n = len(slowdowns)
    ws = metrics.weighted_speedup(slowdowns)
    hs = metrics.harmonic_speedup(slowdowns)
    # Arithmetic mean of speedups >= harmonic mean of speedups.
    assert ws / n >= hs - 1e-9


@given(
    st.floats(min_value=0.1, max_value=50, allow_nan=False),
    st.floats(min_value=0.1, max_value=50, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_error_symmetric_in_sign_of_deviation(actual, delta):
    over = metrics.estimation_error_pct(actual + delta, actual)
    under = metrics.estimation_error_pct(actual - delta, actual)
    assert math.isclose(over, under, rel_tol=1e-9)
