"""Shared fixtures: small, fast system configurations."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, CoreConfig, DramConfig, SystemConfig


@pytest.fixture
def small_cache_config() -> CacheConfig:
    # 64 sets x 4 ways x 64B = 16KB
    return CacheConfig(size_bytes=16 * 1024, associativity=4, latency=20)


@pytest.fixture
def small_system_config() -> SystemConfig:
    """A deliberately tiny platform so unit/integration tests run fast."""
    return SystemConfig(
        num_cores=2,
        core=CoreConfig(),
        l1=CacheConfig(size_bytes=8 * 1024, associativity=2, latency=1),
        llc=CacheConfig(size_bytes=32 * 1024, associativity=8, latency=20),
        dram=DramConfig(),
        quantum_cycles=100_000,
        epoch_cycles=5_000,
        ats_sampled_sets=8,
    )
