"""Unit tests for the telemetry layer: fault specs, the counter bank and
every injector class (repro.telemetry)."""

import pytest

from repro.telemetry import CounterBank, TelemetrySpec
from repro.telemetry.counters import (
    FLAG_DELAYED,
    FLAG_DROPPED,
    FLAG_EPOCH_GLITCH,
    FLAG_SATURATED,
)
from repro.telemetry.spec import DEFAULT_FAULT_RATE, FAULT_CLASSES, fault_u01


def spec(fault_class, rate, **kw):
    return TelemetrySpec(fault_class=fault_class, rate=rate, **kw)


# ---------------------------------------------------------------------------
# TelemetrySpec


def test_parse_class_and_rate():
    parsed = TelemetrySpec.parse("dropped-read:0.05", seed=7)
    assert parsed.fault_class == "dropped_read"
    assert parsed.rate == 0.05
    assert parsed.seed == 7


def test_parse_defaults_the_rate():
    assert TelemetrySpec.parse("saturation").rate == DEFAULT_FAULT_RATE


@pytest.mark.parametrize("text", ["bogus", "saturation:nope", "saturation:2"])
def test_parse_rejects_bad_specs(text):
    with pytest.raises(ValueError):
        TelemetrySpec.parse(text)


def test_spec_validation():
    with pytest.raises(ValueError):
        spec("not_a_class", 0.1)
    with pytest.raises(ValueError):
        spec("saturation", -0.1)
    with pytest.raises(ValueError):
        spec("saturation", 0.1, counter_bits=1)


def test_json_roundtrip_ignores_unknown_keys():
    original = spec("wraparound", 0.25, seed=3, counter_bits=12)
    data = original.to_json()
    assert TelemetrySpec.from_json(data) == original
    data["future_field"] = "ignored"
    assert TelemetrySpec.from_json(data) == original


def test_fault_u01_is_deterministic_and_site_keyed():
    a = fault_u01(1, "asm", "counter", 0, "read", 5)
    assert a == fault_u01(1, "asm", "counter", 0, "read", 5)
    assert 0.0 <= a < 1.0
    assert a != fault_u01(1, "asm", "counter", 0, "read", 6)
    assert a != fault_u01(2, "asm", "counter", 0, "read", 5)
    assert a != fault_u01(1, "fst", "counter", 0, "read", 5)


# ---------------------------------------------------------------------------
# Healthy bank (no spec): plain counters, true values everywhere.


def test_healthy_bank_reads_true_values():
    bank = CounterBank(2)
    vec = bank.vec("accesses")
    vec.add(0)
    vec.add(0, 5)
    vec.add(1)
    assert vec.read(0) == 6
    assert vec.read(1) == 1
    # Oracle view for simulator-side invariant checkers.
    assert vec[0] == 6
    assert list(vec) == [6, 1]
    assert len(vec) == 2
    assert bank.collect_flags(0) == []
    vec.reset()
    assert list(vec) == [0, 0]


def test_healthy_external_read_and_delta():
    backing = [10, 20]
    bank = CounterBank(2)
    sample = bank.external("queueing", lambda core: backing[core])
    assert sample.read(0) == 10
    sample.rebase()
    backing[0] += 7
    assert sample.delta(0) == 7
    assert sample.delta(1) == 0


def test_duplicate_registration_is_rejected():
    bank = CounterBank(1)
    bank.vec("x")
    bank.external("y", lambda core: 0)
    with pytest.raises(ValueError):
        bank.vec("x")
    with pytest.raises(ValueError):
        bank.external("y", lambda core: 0)


def test_zero_rate_spec_never_fires():
    for fault_class in FAULT_CLASSES:
        bank = CounterBank(2, spec(fault_class, 0.0), salt="m")
        vec = bank.vec("c")
        ats = bank.vec("s", kind="ats")
        vec.add(0, 1_000_000)
        ats.add(0, 123)
        assert vec.read(0) == 1_000_000
        assert ats.read(0) == 123
        assert bank.attribute_epoch(0) == 0
        assert bank.faults_injected == 0
        assert bank.collect_flags(0) == []


# ---------------------------------------------------------------------------
# Width faults: saturation flags at the all-ones pattern, wraparound is
# silent. rate=1.0 makes every per-(counter, core) instance narrow.


def test_saturation_caps_and_flags():
    bank = CounterBank(1, spec("saturation", 1.0, counter_bits=4))
    vec = bank.vec("c")
    vec.add(0, 100)
    assert vec.read(0) == 15  # 2**4 - 1: the recognisable all-ones pattern
    assert FLAG_SATURATED in bank.collect_flags(0)
    assert vec[0] == 100  # the oracle still sees the truth


def test_saturation_below_the_limit_is_exact():
    bank = CounterBank(1, spec("saturation", 1.0, counter_bits=4))
    vec = bank.vec("c")
    vec.add(0, 9)
    assert vec.read(0) == 9
    assert bank.collect_flags(0) == []


def test_wraparound_is_silent():
    bank = CounterBank(1, spec("wraparound", 1.0, counter_bits=4))
    vec = bank.vec("c")
    vec.add(0, 21)
    assert vec.read(0) == 21 % 16
    assert bank.collect_flags(0) == []


# ---------------------------------------------------------------------------
# Read-transaction faults.


def test_dropped_read_returns_zero_and_flags():
    bank = CounterBank(1, spec("dropped_read", 1.0))
    vec = bank.vec("c")
    vec.add(0, 42)
    assert vec.read(0) == 0
    assert FLAG_DROPPED in bank.collect_flags(0)


def test_delayed_read_replays_the_previous_sample():
    bank = CounterBank(1, spec("delayed_read", 1.0))
    vec = bank.vec("c")
    vec.add(0, 5)
    assert vec.read(0) == 0  # nothing sampled yet: the mailbox is empty
    vec.add(0, 3)
    assert vec.read(0) == 5  # previous quantum's sample
    assert FLAG_DELAYED in bank.collect_flags(0)


def test_ats_corruption_only_touches_ats_counters_and_is_silent():
    bank = CounterBank(1, spec("ats_corruption", 1.0))
    plain = bank.vec("c")
    ats = bank.vec("s", kind="ats")
    plain.add(0, 10)
    ats.add(0, 10)
    assert plain.read(0) == 10
    corrupted = ats.read(0)
    assert corrupted > 10  # perturbed upward
    assert bank.collect_flags(0) == []  # silent by design
    assert bank.faults_injected > 0


# ---------------------------------------------------------------------------
# Epoch-ownership glitches.


def test_epoch_glitch_misattributes_and_flags_both_cores():
    bank = CounterBank(4, spec("epoch_glitch", 1.0))
    attributed = bank.attribute_epoch(1)
    assert attributed != 1
    assert 0 <= attributed < 4
    assert FLAG_EPOCH_GLITCH in bank.collect_flags(1)
    assert FLAG_EPOCH_GLITCH in bank.collect_flags(attributed)


def test_epoch_glitch_needs_a_victim():
    bank = CounterBank(1, spec("epoch_glitch", 1.0))
    assert bank.attribute_epoch(0) == 0  # nowhere to misattribute to


def test_epoch_glitch_stream_is_deterministic():
    def stream():
        bank = CounterBank(4, spec("epoch_glitch", 0.5, seed=9), salt="asm")
        return [bank.attribute_epoch(i % 4) for i in range(32)]

    first = stream()
    assert first == stream()
    assert any(first[i] != i % 4 for i in range(32))  # some glitches fired


def test_collect_flags_pops():
    bank = CounterBank(1, spec("dropped_read", 1.0))
    vec = bank.vec("c")
    vec.read(0)
    assert bank.collect_flags(0) == [FLAG_DROPPED]
    assert bank.collect_flags(0) == []


def test_bank_reset_zeroes_vecs_in_place():
    bank = CounterBank(2)
    vec = bank.vec("c")
    alias = vec.values
    vec.add(0, 3)
    bank.reset()
    assert alias == [0, 0]
    assert vec.values is alias
