"""Smoke tests for the example scripts.

Full executions take tens of seconds each (they are exercised manually and
in the docs); here we verify that every example imports cleanly and
exposes a ``main`` entry point — catching API drift immediately.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "cache_partitioning",
        "qos_guarantee",
        "cloud_billing",
        "job_migration",
        "memory_scheduling",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)  # __main__ guard prevents execution
        assert callable(getattr(module, "main", None)), path.stem
    finally:
        sys.modules.pop(spec.name, None)
