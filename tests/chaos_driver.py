"""Subprocess driver for the chaos kill/resume tests.

Runs a tiny but real campaign (two 2-core mixes, one quantum each)
against a store directory and prints one line of canonical JSON — the
full serialized results — to stdout. The parent test harness runs this
driver three ways:

* clean, serial: the baseline digest;
* under ``REPRO_CHAOS`` with a kill plan (optionally ``--workers 2`` so
  the kill lands mid-parallel-campaign): the process dies by SIGKILL at
  the planned crash point, leaving a possibly-torn store behind;
* again on the same store with ``--resume``: must exit 0 and print a
  digest bit-identical to the baseline.

Determinism end to end is the point: every digest printed by this
driver for the same arguments must be byte-equal, no matter how many
times the campaign crashed and resumed in between.
"""

import argparse
import json
import sys

from repro.config import scaled_config
from repro.durability.retry import RetryPolicy
from repro.parallel import CellSpec
from repro.resilience.campaign import Campaign, result_to_json
from repro.resilience.inject import exploding_model_factories
from repro.workloads.mixes import make_mix


def build_mixes():
    return [
        make_mix(["mcf", "bzip2"], seed=11),
        make_mix(["ft", "libquantum"], seed=12),
    ]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("store", help="campaign store directory")
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--quanta", type=int, default=1)
    parser.add_argument(
        "--faults",
        action="store_true",
        help="profile cells (appends to metrics.jsonl) and run an extra "
        "deterministically-failing mix whose give-up record lands in "
        "degraded.jsonl — so the kill matrix can tear those stores too",
    )
    args = parser.parse_args(argv)

    config = scaled_config().with_quantum(50_000, 5_000)
    mixes = build_mixes()
    if args.faults:
        campaign = Campaign(
            "chaos_drill",
            args.store,
            resume=args.resume,
            keep_going=True,
            profile=True,
            retry_policy=RetryPolicy(
                max_attempts=2, backoff_s=0.0, jitter=0.0
            ),
        )
    else:
        campaign = Campaign("chaos_drill", args.store, resume=args.resume)
    if args.workers > 1:
        cells = [
            CellSpec(mix=mix, config=config, quanta=args.quanta)
            for mix in mixes
        ]
        results = campaign.run_cells(cells, workers=args.workers)
    else:
        results = [
            campaign.run_mix(mix, config, quanta=args.quanta) for mix in mixes
        ]
    if args.faults:
        # A mix whose model raises at quantum 0, every attempt: the
        # supervisor retries once, the breaker proves the failure
        # deterministic, and the give-up appends to degraded.jsonl.
        results.append(
            campaign.run_mix(
                make_mix(["mcf", "bzip2"], seed=13),
                config,
                quanta=args.quanta,
                variant="faulty",
                model_factories=exploding_model_factories(0),
            )
        )
    digest = [
        result_to_json(result) if result is not None else None
        for result in results
    ]
    print(json.dumps(digest, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
