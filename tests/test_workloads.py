"""Unit tests for synthetic workloads, the catalog, hog and mixes."""

import itertools

import pytest

from repro.workloads.catalog import (
    CATALOG,
    intensity_class,
    spec_by_name,
    specs_sorted_by_intensity,
)
from repro.workloads.hog import hog_spec
from repro.workloads.mixes import make_mix, random_mixes
from repro.workloads.synthetic import AppSpec, SyntheticTrace


def _take(trace, n):
    return list(itertools.islice(trace, n))


def test_trace_is_deterministic():
    spec = spec_by_name("mcf")
    a = _take(SyntheticTrace(spec, seed=7), 500)
    b = _take(SyntheticTrace(spec, seed=7), 500)
    assert a == b


def test_different_seeds_differ():
    spec = spec_by_name("mcf")
    a = _take(SyntheticTrace(spec, seed=1), 200)
    b = _take(SyntheticTrace(spec, seed=2), 200)
    assert a != b


def test_base_line_offsets_address_space():
    spec = spec_by_name("gcc")
    records = _take(SyntheticTrace(spec, seed=3, base_line=1 << 28), 1000)
    assert all(r.line_addr >= 1 << 28 for r in records)
    assert all(r.line_addr < (1 << 28) + spec.footprint_lines for r in records)


def test_mean_gap_tracks_apki():
    spec = spec_by_name("libquantum")
    records = _take(SyntheticTrace(spec, seed=4), 20_000)
    mean_gap = sum(r.gap for r in records) / len(records)
    assert mean_gap == pytest.approx(spec.mean_gap, rel=0.1)


def test_write_fraction():
    spec = spec_by_name("lbm")  # write_frac 0.3
    records = _take(SyntheticTrace(spec, seed=5), 20_000)
    writes = sum(r.is_write for r in records) / len(records)
    assert writes == pytest.approx(spec.write_frac, abs=0.03)


def test_streaming_app_has_sequential_runs():
    spec = spec_by_name("libquantum")  # seq_frac 0.95, reuse tiny
    records = _take(SyntheticTrace(spec, seed=6), 2000)
    seq_pairs = sum(
        1
        for a, b in zip(records, records[1:])
        if b.line_addr - a.line_addr == 1
    )
    assert seq_pairs / len(records) > 0.6


def test_cache_sensitive_app_reuses_lines():
    spec = spec_by_name("ft")  # reuse_prob 0.88
    records = _take(SyntheticTrace(spec, seed=7), 30_000)
    distinct = len({r.line_addr for r in records})
    assert distinct < len(records) * 0.5, "hot set must be re-referenced"


def test_spec_validation():
    with pytest.raises(ValueError):
        AppSpec("x", apki=0, reuse_prob=0.5, reuse_depth=10,
                footprint_lines=100, seq_frac=0.5)
    with pytest.raises(ValueError):
        AppSpec("x", apki=1, reuse_prob=1.5, reuse_depth=10,
                footprint_lines=100, seq_frac=0.5)
    with pytest.raises(ValueError):
        AppSpec("x", apki=1, reuse_prob=0.5, reuse_depth=0,
                footprint_lines=100, seq_frac=0.5)


def test_catalog_contents():
    assert len(CATALOG) >= 25
    suites = {spec.suite for spec in CATALOG.values()}
    assert suites == {"spec", "nas", "db"}
    for name in ("mcf", "libquantum", "bzip2", "ft", "tpcc", "ycsb"):
        assert name in CATALOG


def test_catalog_sorted_by_intensity():
    specs = specs_sorted_by_intensity("spec")
    apkis = [s.apki for s in specs]
    assert apkis == sorted(apkis)
    assert all(s.suite == "spec" for s in specs)


def test_spec_by_name_unknown():
    with pytest.raises(KeyError):
        spec_by_name("doom3")


def test_intensity_classes_cover_catalog():
    classes = {intensity_class(s) for s in CATALOG.values()}
    assert classes == {"low", "medium", "high"}


def test_hog_intensity_scales_apki():
    weak = hog_spec(0.1)
    strong = hog_spec(1.0)
    assert strong.apki > weak.apki * 5


def test_hog_cache_pressure_shifts_profile():
    bandwidth = hog_spec(1.0, cache_pressure=0.0)
    capacity = hog_spec(1.0, cache_pressure=1.0)
    assert bandwidth.seq_frac > capacity.seq_frac
    assert capacity.reuse_prob > bandwidth.reuse_prob


def test_hog_validation():
    with pytest.raises(ValueError):
        hog_spec(1.5)
    with pytest.raises(ValueError):
        hog_spec(0.5, cache_pressure=-0.1)


def test_make_mix():
    mix = make_mix(["mcf", "ft"], seed=5)
    assert mix.num_cores == 2
    assert mix.name == "mcf+ft"
    traces = mix.traces()
    assert len(traces) == 2


def test_mix_alone_trace_matches_shared_trace():
    mix = make_mix(["mcf", "ft"], seed=5)
    shared = _take(mix.traces()[1], 300)
    alone = _take(mix.trace_for_core(1), 300)
    assert shared == alone


def test_random_mixes_deterministic_and_distinct():
    a = random_mixes(5, 4, seed=10)
    b = random_mixes(5, 4, seed=10)
    assert [m.specs for m in a] == [m.specs for m in b]
    assert len({m.specs for m in a}) > 1


def test_random_mixes_core_count():
    for mix in random_mixes(3, 8, seed=2):
        assert mix.num_cores == 8
