"""Unit tests for the experiment-harness helpers (no simulation)."""

import math

import pytest

from repro.config import scaled_config
from repro.experiments.common import (
    EQUAL_OVERHEAD_FILTER_COUNTERS,
    ErrorSurvey,
    fairness_of_runs,
    format_table,
    headline_models,
    sampled_models,
    unsampled_models,
)
from repro.harness.runner import QuantumRecord, RunResult
from repro.workloads.mixes import make_mix


def _fake_result(names, actual, estimates):
    mix = make_mix(names, seed=0)
    record = QuantumRecord(
        index=0,
        instructions=[100] * len(names),
        shared_ipc=[1.0] * len(names),
        actual_slowdowns=actual,
        estimates={"asm": estimates},
    )
    return RunResult(mix=mix, config=scaled_config(), records=[record])


def test_error_survey_accumulates_per_app():
    survey = ErrorSurvey(model_names=["asm"])
    result = _fake_result(["mcf", "ft"], [2.0, 2.0], [2.2, 1.8])
    survey.add_run(result)
    assert survey.mean_error("asm") == pytest.approx(10.0)
    means = survey.app_means("asm")
    assert means["mcf"] == pytest.approx(10.0)
    assert means["ft"] == pytest.approx(10.0)
    assert len(survey.per_workload["asm"]) == 1


def test_error_survey_same_app_twice_merges():
    survey = ErrorSurvey(model_names=["asm"])
    survey.add_run(_fake_result(["mcf", "mcf"], [2.0, 4.0], [2.0, 2.0]))
    means = survey.app_means("asm")
    assert means["mcf"] == pytest.approx((0.0 + 50.0) / 2)


def test_error_survey_skips_nan_ground_truth():
    survey = ErrorSurvey(model_names=["asm"])
    survey.add_run(
        _fake_result(["mcf", "ft"], [float("nan"), 2.0], [9.9, 2.0])
    )
    assert survey.mean_error("asm") == pytest.approx(0.0)
    assert "mcf" not in survey.app_means("asm")


def test_error_survey_empty_model():
    survey = ErrorSurvey(model_names=["asm"])
    assert math.isnan(survey.mean_error("asm"))
    assert survey.stdev_across_workloads("asm") == 0.0


def test_model_factory_bundles():
    config = scaled_config()
    for bundle in (unsampled_models(), sampled_models(config), headline_models(config)):
        for name, factory in bundle.items():
            model = factory()
            assert hasattr(model, "attach"), name
    sampled = sampled_models(config)["asm"]()
    assert sampled.sampled_sets == config.ats_sampled_sets
    unsampled = unsampled_models()["asm"]()
    assert unsampled.sampled_sets is None
    assert EQUAL_OVERHEAD_FILTER_COUNTERS > 0


def test_fairness_of_runs():
    results = [
        _fake_result(["mcf", "ft"], [2.0, 4.0], [2.0, 4.0]),
        _fake_result(["mcf", "ft"], [1.0, 3.0], [1.0, 3.0]),
    ]
    fairness = fairness_of_runs(results)
    assert fairness["max_slowdown"] == pytest.approx((4.0 + 3.0) / 2)
    assert fairness["harmonic_speedup"] == pytest.approx(
        (2 / 6.0 + 2 / 4.0) / 2
    )


def test_format_table_handles_nan():
    table = format_table(["x"], [[float("nan")]])
    assert "nan" in table
