"""ColumnarEngine contract tests.

Two halves:

* **Scalar parity** — every bucket-queue edge case is parametrized over
  both :class:`~repro.engine.Engine` and
  :class:`~repro.vector.engine.ColumnarEngine`: with no streams the
  columnar engine *is* the event engine, and these tests pin the corners
  (same-cycle schedule-during-drain ordering, ``stop()`` mid-bucket
  preservation, the first-event deadline sample) that the batched plane
  must never disturb.
* **Stream semantics** — the windowed dispatch contract: coverage of
  every firing exactly once, vec-before-scalar ordering at a shared
  cycle, monotonic time, event accounting (including exception paths),
  and validation.
"""

import time

import pytest

from repro.engine import DeadlineExceeded, Engine
from repro.vector.engine import ColumnarEngine


@pytest.fixture(params=[Engine, ColumnarEngine], ids=["event", "columnar"])
def engine(request):
    return request.param()


# ----------------------------------------------------------------------
# Scalar parity: the bucket-queue edge cases, both engines


def test_events_run_in_time_order(engine):
    log = []
    engine.schedule(30, lambda: log.append("c"))
    engine.schedule(10, lambda: log.append("a"))
    engine.schedule(20, lambda: log.append("b"))
    engine.run()
    assert log == ["a", "b", "c"]
    assert engine.now == 30


def test_ties_break_by_insertion_order(engine):
    log = []
    for i in range(5):
        engine.schedule(7, lambda i=i: log.append(i))
    engine.run()
    assert log == [0, 1, 2, 3, 4]


def test_schedule_during_drain_runs_after_queued_same_cycle_events(engine):
    # An event scheduled at the *current* cycle while that cycle's bucket
    # is draining must run in this cycle, after the events that were
    # already queued — insertion order, not re-sorted order.
    log = []
    engine.schedule(
        5, lambda: (log.append("a"), engine.schedule(0, lambda: log.append("d")))
    )
    engine.schedule(5, lambda: log.append("b"))
    engine.schedule(5, lambda: log.append("c"))
    engine.run()
    assert log == ["a", "b", "c", "d"]
    assert engine.now == 5


def test_stop_mid_bucket_preserves_remaining_same_cycle_events(engine):
    log = []
    engine.schedule(5, lambda: log.append("a"))
    engine.schedule(5, lambda: (log.append("b"), engine.stop()))
    engine.schedule(5, lambda: log.append("c"))
    engine.run()
    assert log == ["a", "b"]
    assert engine.stopped_early
    assert engine.pending_events == 1
    engine.run()
    assert log == ["a", "b", "c"]


def test_deadline_caught_after_first_slow_event(engine):
    engine.schedule(1, lambda: time.sleep(0.05))
    engine.schedule(2, lambda: None)
    with pytest.raises(DeadlineExceeded) as excinfo:
        engine.run(wall_deadline=time.monotonic() + 0.01)
    assert excinfo.value.pending_events == 1
    assert engine.pending_events == 1


def test_raising_callback_preserves_remaining_events(engine):
    log = []

    def boom():
        raise RuntimeError("injected")

    engine.schedule(5, boom)
    engine.schedule(5, lambda: log.append("same-cycle"))
    engine.schedule(9, lambda: log.append("later"))
    with pytest.raises(RuntimeError):
        engine.run()
    assert engine.pending_events == 2
    engine.run()
    assert log == ["same-cycle", "later"]


def test_run_until_and_empty_queue(engine):
    log = []
    engine.schedule(5, lambda: log.append("early"))
    engine.schedule(10, lambda: log.append("boundary"))
    engine.run(until=10)
    assert log == ["early"]
    assert engine.now == 10
    engine.run(until=1000)
    assert log == ["early", "boundary"]
    assert engine.now == 1000


# ----------------------------------------------------------------------
# Stream semantics


def test_streams_require_explicit_horizon():
    engine = ColumnarEngine()
    engine.schedule_stream(5, callback=lambda: None)
    with pytest.raises(ValueError, match="requires 'until'"):
        engine.run()


def test_stream_validation():
    engine = ColumnarEngine()
    with pytest.raises(ValueError, match="period"):
        engine.schedule_stream(0, callback=lambda: None)
    with pytest.raises(ValueError, match="exactly one"):
        engine.schedule_stream(5)
    with pytest.raises(ValueError, match="exactly one"):
        engine.schedule_stream(
            5, callback=lambda: None, vec_callback=lambda s, c, p: None
        )
    with pytest.raises(ValueError, match="cannot start"):
        engine.schedule_stream(5, callback=lambda: None, start=-1)


def test_vec_windows_cover_every_firing_exactly_once():
    # Windows are truncated by scalar streams and bucket events, but the
    # union of all windows must be every firing in [start, until), each
    # exactly once, in order.
    engine = ColumnarEngine()
    seen = []
    engine.schedule_stream(
        7, vec_callback=lambda s, c, p: seen.extend(range(s, s + c * p, p))
    )
    engine.schedule_stream(23, callback=lambda: None)
    for t in (50, 100, 150):
        engine.schedule(t, lambda: None)
    engine.run(until=500)
    assert seen == list(range(7, 500, 7))
    assert engine.now == 500
    assert not engine.stopped_early
    assert not engine.drained_early


def test_same_cycle_order_vec_then_scalar_stream_then_bucket():
    engine = ColumnarEngine()
    log = []
    engine.schedule_stream(
        10, vec_callback=lambda s, c, p: log.append(("vec", s, c))
    )
    engine.schedule_stream(10, callback=lambda: log.append(("sstream", engine.now)))
    engine.schedule(10, lambda: log.append(("bucket", engine.now)))
    engine.run(until=11)
    assert log == [("vec", 10, 1), ("sstream", 10), ("bucket", 10)]


def test_now_is_monotonic_across_windows():
    engine = ColumnarEngine()
    nows = []
    engine.schedule_stream(3, vec_callback=lambda s, c, p: nows.append(engine.now))
    engine.schedule_stream(5, vec_callback=lambda s, c, p: nows.append(engine.now))
    engine.schedule_stream(11, callback=lambda: nows.append(engine.now))
    engine.run(until=200)
    assert nows == sorted(nows)


def test_events_executed_counts_firings_and_consumed_override():
    engine = ColumnarEngine()
    engine.schedule_stream(5, vec_callback=lambda s, c, p: None)  # 1 per firing
    engine.run(until=100)
    assert engine.events_executed == len(range(5, 100, 5))

    engine = ColumnarEngine()
    engine.schedule_stream(5, vec_callback=lambda s, c, p: c * 3)
    engine.run(until=100)
    assert engine.events_executed == 3 * len(range(5, 100, 5))

    engine = ColumnarEngine()
    engine.schedule_stream(5, callback=lambda: None)
    engine.schedule(17, lambda: None)
    engine.run(until=100)
    assert engine.events_executed == len(range(5, 100, 5)) + 1


def test_scalar_stream_can_stop_and_resume():
    engine = ColumnarEngine()
    fired = []

    def cb():
        fired.append(engine.now)
        if engine.now == 15:
            engine.stop()

    engine.schedule_stream(5, callback=cb)
    engine.run(until=100)
    assert fired == [5, 10, 15]
    assert engine.now == 15
    assert engine.stopped_early
    assert engine.events_executed == 3
    engine.run(until=31)
    assert fired == [5, 10, 15, 20, 25, 30]
    assert engine.now == 31
    assert not engine.stopped_early


def test_raising_vec_callback_keeps_prior_accounting():
    engine = ColumnarEngine()
    counted = []

    def boom(s, c, p):
        raise RuntimeError("injected")

    engine.schedule_stream(1, vec_callback=lambda s, c, p: counted.append(c))
    engine.schedule_stream(7, vec_callback=boom)
    with pytest.raises(RuntimeError):
        engine.run(until=100)
    # The first stream's whole window was executed and stays counted.
    assert counted == [99]
    assert engine.events_executed == 99


def test_deadline_fires_inside_stream_run():
    engine = ColumnarEngine()
    engine.schedule_stream(1, vec_callback=lambda s, c, p: time.sleep(0.05))
    with pytest.raises(DeadlineExceeded):
        engine.run(until=10_000, wall_deadline=time.monotonic() + 0.01)


def test_stream_population_equivalence_with_event_engine():
    # The microbenchmark's two populations (self-rescheduling callbacks
    # vs streams) execute the same number of logical events.
    from repro.perfbench import microbench_equivalence

    result = microbench_equivalence(horizon=20_000)
    assert result["identical"]
    assert result["scalar_events"] == result["columnar_events"] > 0
    assert result["scalar_total"] == result["columnar_total"]
