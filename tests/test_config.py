"""Unit tests for configuration objects."""

import pytest

from repro.config import (
    CacheConfig,
    DramConfig,
    SystemConfig,
    DEFAULT_CONFIG,
    scaled_config,
)


def test_cache_geometry():
    config = CacheConfig(size_bytes=2 * 1024 * 1024, associativity=16, latency=20)
    assert config.num_lines == 32768
    assert config.num_sets == 2048
    config.validate()


def test_cache_set_index_wraps():
    config = CacheConfig(size_bytes=16 * 1024, associativity=4, latency=1)
    assert config.num_sets == 64
    assert config.set_index(0) == 0
    assert config.set_index(64) == 0
    assert config.set_index(65) == 1


def test_cache_validate_rejects_non_power_of_two_sets():
    config = CacheConfig(size_bytes=3 * 64 * 4, associativity=4, latency=1)
    with pytest.raises(ValueError):
        config.validate()


def test_dram_timing_in_cpu_cycles():
    dram = DramConfig()
    # DDR3-1333 (10-10-10) at 8 CPU cycles per DRAM cycle.
    assert dram.cas_latency == 80
    assert dram.trcd == 80
    assert dram.trp == 80
    assert dram.burst_time == 32
    assert dram.total_banks == 8


def test_default_config_matches_paper_table2():
    config = DEFAULT_CONFIG
    assert config.num_cores == 4
    assert config.core.issue_width == 3
    assert config.core.window_size == 128
    assert config.llc.size_bytes == 2 * 1024 * 1024
    assert config.llc.associativity == 16
    assert config.quantum_cycles == 5_000_000
    assert config.epoch_cycles == 10_000
    config.validate()


def test_scaled_config_preserves_ratios():
    config = scaled_config()
    config.validate()
    # 8x smaller cache, same associativity.
    assert config.llc.size_bytes == 256 * 1024
    assert config.llc.associativity == 16
    # Quantum is a whole number of epochs.
    assert config.quantum_cycles % config.epoch_cycles == 0


def test_with_helpers_return_new_configs():
    config = scaled_config()
    bigger = config.with_llc_size(512 * 1024)
    assert bigger.llc.size_bytes == 512 * 1024
    assert config.llc.size_bytes == 256 * 1024
    more_cores = config.with_cores(8)
    assert more_cores.num_cores == 8
    pref = config.with_prefetcher(True)
    assert pref.core.prefetcher_enabled and not config.core.prefetcher_enabled


def test_validate_rejects_fractional_epochs():
    config = scaled_config().with_quantum(100_000, 30_000)
    with pytest.raises(ValueError):
        config.validate()
