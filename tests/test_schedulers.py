"""Unit tests for memory scheduling policies."""

import pytest

from repro.config import DramConfig
from repro.mem.dram import Channel, DramMapping, service_request
from repro.mem.request import MemRequest
from repro.mem.schedulers import FrFcfsScheduler, ParbsScheduler, TcmScheduler


def _channel_with_open_row(dram, row_line=0):
    channel = Channel(dram.banks_per_rank)
    mapping = DramMapping(dram)
    opener = MemRequest(core=0, line_addr=row_line)
    opener.channel, opener.bank, opener.row = mapping.locate(row_line)
    service_request(channel, opener, 0, dram)
    return channel, mapping


def _req(mapping, line, core, arrival):
    request = MemRequest(core=core, line_addr=line, arrival_time=arrival)
    request.channel, request.bank, request.row = mapping.locate(line)
    return request


def test_frfcfs_prefers_row_hits():
    dram = DramConfig()
    channel, mapping = _channel_with_open_row(dram)
    row_hit = _req(mapping, 1, core=0, arrival=100)
    older_miss = _req(mapping, mapping.lines_per_row * 99, core=1, arrival=10)
    pick = FrFcfsScheduler().pick([older_miss, row_hit], channel, 200)
    assert pick is row_hit


def test_frfcfs_prefers_oldest_among_equals():
    dram = DramConfig()
    channel, mapping = _channel_with_open_row(dram)
    a = _req(mapping, mapping.lines_per_row * 50, core=0, arrival=30)
    b = _req(mapping, mapping.lines_per_row * 60, core=1, arrival=20)
    pick = FrFcfsScheduler().pick([a, b], channel, 100)
    assert pick is b


def test_parbs_marks_batch_and_prefers_marked():
    dram = DramConfig()
    channel, mapping = _channel_with_open_row(dram)
    scheduler = ParbsScheduler(marking_cap=2)
    queue = [_req(mapping, i * mapping.lines_per_row, core=0, arrival=i) for i in range(4)]
    scheduler.register_queues([queue])
    pick = scheduler.pick(queue, channel, 100)
    marked = [r for r in queue if r.marked]
    # cap=2 per (core, bank); requests spread over banks so several marked
    assert pick.marked
    assert marked


def test_parbs_ranks_light_core_first():
    dram = DramConfig()
    channel, mapping = _channel_with_open_row(dram)
    scheduler = ParbsScheduler(marking_cap=5)
    # Core 0: 4 requests on one bank; core 1: 1 request on the same bank.
    stride = mapping.lines_per_row * dram.banks_per_rank
    queue = [_req(mapping, i * stride, core=0, arrival=i) for i in range(4)]
    light = _req(mapping, 99 * stride, core=1, arrival=50)
    queue.append(light)
    scheduler.register_queues([queue])
    pick = scheduler.pick(queue, channel, 100)
    assert pick.core == 1, "shortest-job-first: the light core goes first"


def test_tcm_prioritises_latency_sensitive_cluster():
    dram = DramConfig()
    channel, mapping = _channel_with_open_row(dram)
    scheduler = TcmScheduler(num_cores=2, cluster_period=1000, shuffle_period=100)
    # Core 0 heavy (90 reads), core 1 light (10 reads).
    scheduler.update(2000, [90, 10])
    heavy = _req(mapping, mapping.lines_per_row * 10, core=0, arrival=5)
    light = _req(mapping, mapping.lines_per_row * 20, core=1, arrival=50)
    pick = scheduler.pick([heavy, light], channel, 2000)
    assert pick.core == 1


def test_tcm_shuffles_bandwidth_ranks_deterministically():
    s1 = TcmScheduler(num_cores=4, seed=9)
    s2 = TcmScheduler(num_cores=4, seed=9)
    s1.update(1_000_001, [10, 20, 30, 40])
    s2.update(1_000_001, [10, 20, 30, 40])
    assert s1._bw_rank == s2._bw_rank


def test_tcm_recluster_period():
    scheduler = TcmScheduler(num_cores=2, cluster_period=1_000_000)
    scheduler.update(1_000_001, [100, 0])
    first = set(scheduler._latency_cluster)
    # Before the next period, updates don't recluster.
    scheduler.update(1_500_000, [100, 500])
    assert set(scheduler._latency_cluster) == first
