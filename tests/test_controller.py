"""Unit tests for the memory controller."""

import pytest

from repro.config import DramConfig
from repro.engine import Engine
from repro.mem.controller import MemoryController, WRITE_DRAIN_WATERMARK
from repro.mem.request import MemRequest


@pytest.fixture
def setup():
    engine = Engine()
    controller = MemoryController(engine, DramConfig(), num_cores=2)
    return engine, controller


def _read(core, line, callback=None):
    return MemRequest(core=core, line_addr=line, callback=callback)


def test_single_read_completes_with_closed_row_latency(setup):
    engine, controller = setup
    done = []
    request = _read(0, 0, callback=lambda r: done.append(r.completion_time))
    request.arrival_time = 0
    controller.enqueue(request)
    engine.run()
    dram = controller.config
    assert done == [dram.trcd + dram.cas_latency + dram.burst_time]
    assert controller.reads_issued[0] == 1
    assert controller.row_misses[0] == 1


def test_row_hits_counted(setup):
    engine, controller = setup
    for line in range(4):  # same row
        controller.enqueue(_read(0, line))
    engine.run()
    assert controller.row_hits[0] == 3
    assert controller.row_misses[0] == 1


def test_completion_listeners_see_reads_not_writes(setup):
    engine, controller = setup
    seen = []
    controller.completion_listeners.append(lambda r: seen.append(r))
    controller.enqueue(_read(0, 0))
    controller.enqueue(MemRequest(core=1, line_addr=1000, is_write=True))
    engine.run()
    assert len(seen) == 1 and not seen[0].is_write


def test_priority_core_served_first(setup):
    engine, controller = setup
    order = []
    # Two requests to the same bank, different rows; core 1 arrives later
    # but has priority.
    mapping = controller.mapping
    stride = mapping.lines_per_row * controller.config.banks_per_rank
    controller.set_priority_core(1)
    first = _read(0, 0, callback=lambda r: order.append(0))
    second = _read(1, stride, callback=lambda r: order.append(1))
    first.arrival_time = 0
    second.arrival_time = 0
    # Enqueue both before the engine runs: the controller wakes once.
    controller.enqueue(first)
    controller.enqueue(second)
    engine.run()
    assert order[0] == 1


def test_interference_attributed_to_waiting_request(setup):
    engine, controller = setup
    mapping = controller.mapping
    stride = mapping.lines_per_row * controller.config.banks_per_rank
    a = _read(0, 0)
    b = _read(1, stride)  # same bank, other core
    controller.enqueue(a)
    controller.enqueue(b)
    engine.run()
    assert b.interference_cycles > 0
    assert a.interference_cycles == 0


def test_no_interference_between_same_core_requests(setup):
    engine, controller = setup
    mapping = controller.mapping
    stride = mapping.lines_per_row * controller.config.banks_per_rank
    a = _read(0, 0)
    b = _read(0, stride)
    controller.enqueue(a)
    controller.enqueue(b)
    engine.run()
    assert b.interference_cycles == 0


def test_queueing_cycles_accrue_for_priority_core(setup):
    engine, controller = setup
    mapping = controller.mapping
    stride = mapping.lines_per_row * controller.config.banks_per_rank
    # Core 0's request occupies the bank; then core 1 (priority) waits.
    controller.enqueue(_read(0, 0))
    engine.run()
    controller.set_priority_core(1)
    blocker = _read(0, 2 * stride)
    controller.enqueue(blocker)
    # Let the blocker win the bank before the priority request arrives.
    engine.run(until=engine.now + 1)
    waiter = _read(1, stride)
    waiter.arrival_time = engine.now
    controller.enqueue(waiter)
    engine.run()
    assert controller.queueing_cycles[1] > 0


def test_write_drain_at_watermark(setup):
    engine, controller = setup
    # Stuff the write queue past the watermark; writes must issue even
    # though reads keep arriving.
    for i in range(WRITE_DRAIN_WATERMARK + 4):
        controller.enqueue(MemRequest(core=0, line_addr=i * 128, is_write=True))
    controller.enqueue(_read(1, 1))
    engine.run()
    assert not controller.write_queues[0]
    assert not controller.read_queues[0]


def test_outstanding_reads(setup):
    engine, controller = setup
    controller.enqueue(_read(0, 0))
    controller.enqueue(_read(0, 64))
    assert controller.outstanding_reads(0) == 2
    engine.run()
    assert controller.outstanding_reads(0) == 0


def test_reset_stats(setup):
    engine, controller = setup
    controller.enqueue(_read(0, 0))
    engine.run()
    controller.reset_stats()
    assert controller.reads_issued == [0, 0]
    assert controller.queueing_cycles == [0, 0]
