# Fixture: conservation-law compliant counters — zero ACC001 findings.


class DerivedTotal:
    """Accesses computed from the parts: cannot drift."""

    def __init__(self):
        self.hits = 0
        self.misses = 0

    def record(self, hit):
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    @property
    def accesses(self):
        return self.hits + self.misses


class DerivedThroughLocals:
    """The witness may add the parts through local variables."""

    def __init__(self, n):
        self.epoch_hits = [0] * n
        self.epoch_misses = [0] * n

    def on_access(self, core, hit):
        if hit:
            self.epoch_hits[core] += 1
        else:
            self.epoch_misses[core] += 1

    def rate(self, core):
        hits = self.epoch_hits[core]
        misses = self.epoch_misses[core]
        total = hits + misses
        return hits / total if total else 0.0


class CoupledIncrements:
    """Every incrementing method bumps the accesses counter alongside."""

    def __init__(self):
        self.sampled_hits = 0
        self.sampled_misses = 0
        self.sampled_accesses = 0

    def record(self, hit):
        self.sampled_accesses += 1
        if hit:
            self.sampled_hits += 1
        else:
            self.sampled_misses += 1


class LoneCounter:
    """A hits counter with no misses counterpart: no identity to break."""

    def __init__(self):
        self.way_hits = 0

    def bump(self):
        self.way_hits += 1
