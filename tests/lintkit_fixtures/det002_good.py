# Fixture: deterministic iteration patterns — zero DET002 findings.


def evict_scan(lines):
    # Keep candidates in insertion order.
    candidates = [line for line in lines if line.dirty]
    for line in candidates:
        line.flush()


def walk_sorted(cores):
    for core in sorted(set(cores)):  # sorted() restores a total order
        yield core


def mapping_iteration(table):
    out = []
    for key in table:  # dicts iterate in insertion order
        out.append(key)
    return out


def order_insensitive(addresses):
    # sum/min/max/len/any/all do not depend on iteration order.
    return sum(a for a in set(addresses)), len(set(addresses))


def set_from_set(tags):
    # Building another set from a set is order-insensitive too.
    return {t << 1 for t in set(tags)}
