"""Fixture: the public API shapes DOC001 accepts.

Every public class and function is documented; private names, dunders,
members of private classes and nested functions need no docstrings.
"""


class DocumentedSink:
    """A sink whose public surface is fully documented."""

    def write(self, event):
        """Record the event."""
        self.last = event

    def __repr__(self):
        return "DocumentedSink()"

    def _flush(self):
        pass


class _PrivateHelper:
    def inner(self):
        pass


def mask_of(names):
    """Build a mask from category names."""

    def build(name):
        return name

    return [build(n) for n in names]
