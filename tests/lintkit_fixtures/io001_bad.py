# lint: skip-file  (fixture: known IO001 violations; persistence layers
# must route durable writes through repro.durability.atomic)

import json
from pathlib import Path


def checkpoint_naive(path, record):
    # Truncate-then-write: the old checkpoint is gone before the new one
    # is durable.
    with open(path, "w") as handle:
        handle.write(json.dumps(record) + "\n")


def append_naive(path, record):
    # Bare append, no fsync: a crash can lose the "written" line.
    with open(path, mode="a") as handle:
        handle.write(json.dumps(record) + "\n")


def patch_in_place(path, offset, data):
    # "r+" is writable too, and in-place patching tears worst of all.
    with open(path, "r+") as handle:
        handle.seek(offset)
        handle.write(data)


def snapshot_with_pathlib(path, text):
    # Path.write_text is the same truncating write in disguise.
    Path(path).write_text(text)
