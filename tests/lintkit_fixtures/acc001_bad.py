# lint: skip-file  (fixture: known ACC001 violations; see det001_bad.py)


class DriftingCache:
    """Counts hits and misses but tracks accesses independently: the
    conservation law hits + misses == accesses can silently drift."""

    def __init__(self, num_cores):
        self.hits = [0] * num_cores
        self.misses = [0] * num_cores
        self.accesses = [0] * num_cores  # never incremented with the parts

    def record_hit(self, core):
        self.hits[core] += 1

    def record_miss(self, core):
        self.misses[core] += 1


class SplitCounters:
    """Epoch counters incremented in different methods, no witness."""

    def __init__(self):
        self.epoch_hits = 0
        self.epoch_misses = 0

    def on_hit(self):
        self.epoch_hits += 1

    def on_miss(self):
        self.epoch_misses += 1

    def report(self):
        return {"hits": self.epoch_hits, "misses": self.epoch_misses}
