# lint: skip-file  (fixture: known PKL001 violations; see det001_bad.py)
from concurrent.futures import ProcessPoolExecutor


def sweep(payloads):
    results = []
    with ProcessPoolExecutor() as pool:
        for payload in payloads:
            results.append(pool.submit(lambda: payload + 1))  # lambda payload
    return results


def sweep_nested(pool, items):
    def worker(item):  # nested def: pickles by value -> fails at runtime
        return item * 2

    return [pool.submit(worker, item) for item in items]


def sweep_bound(pool, items):
    transform = lambda item: item * 2  # noqa: E731
    return pool.map(transform, items)


def make_cells(mixes, config, CellSpec):
    return [
        CellSpec(
            mix=mix,
            config=config,
            model_builder=lambda: {},  # lambda recipe cannot pickle
        )
        for mix in mixes
    ]
