# lint: skip-file  (fixture: known VEC001 violations; columnar hot
# passes must compose kernels, never walk columns element by element)

from repro.vector import columns as col


def classify_scalar(addrs, num_sets):
    # Direct per-element iteration over a column.
    set_idx = []
    for a in addrs:
        set_idx.append(a % num_sets)
    return set_idx


def count_hits_indexed(hits):
    # Index loop in disguise: range(len(column)).
    total = 0
    for i in range(len(hits)):
        if hits[i]:
            total += 1
    return total


def pair_up(cycles, seqs):
    # zip() over columns is still a per-element walk.
    return [(c, s) for c, s in zip(cycles, seqs)]


def tags_of(batch, num_sets):
    # Attribute access doesn't hide the column either.
    return [a // num_sets for a in batch.addrs]


def widest_row(rows):
    # enumerate() wrapping a column.
    best = -1
    for i, row in enumerate(rows):
        best = max(best, row)
    return best
