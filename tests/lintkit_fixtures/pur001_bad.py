# lint: skip-file -- deliberately broken PUR001 fixture (impure worker
# payloads); linted as module fixture_module with suppressions disabled.
"""Module-global side effects reachable from parallel payloads."""

CACHE = {}
COUNTER = 0


def impure_worker(x):
    """Writes a module global: each pool process mutates its own copy."""
    CACHE[x] = x
    return x


def rebinding_worker(x):
    """Rebinds a module global behind ``global``."""
    global COUNTER
    COUNTER += 1
    return x


def deep_worker(x):
    """Impurity inherited from a callee, not committed here."""
    return impure_worker(x) + 1


def indirect(pool, fn, xs):
    """Dispatcher: whatever lands in ``fn`` runs in a worker."""
    return pool.submit(fn, xs)


def fan_out(pool, xs):
    # finding 1: direct submit of a global-mutating worker.
    return pool.submit(impure_worker, xs)


def fan_map(pool, xs):
    # finding 2: map of a global-rebinding worker.
    return pool.map(rebinding_worker, xs)


def launch(pool, xs):
    # finding 3: payload position propagates through indirect().
    return indirect(pool, deep_worker, xs)
