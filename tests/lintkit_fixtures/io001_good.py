"""Fixture: persistence code that routes every durable write through the
atomic helpers and only ever ``open()``\\ s files to read them back."""

import json

from repro.durability.atomic import append_line, atomic_write_text
from repro.durability.atomic import durable_stream


def checkpoint(path, record):
    """Whole-file snapshot: tmp + fsync + rename."""
    atomic_write_text(path, json.dumps(record) + "\n")


def append(path, record):
    """Checksummed append: single write + fsync."""
    append_line(path, json.dumps(record) + "\n")


def bulk_trace(path, records):
    """Bulk stream: buffered writes, one fsync at close."""
    stream = durable_stream(path, "w")
    try:
        for record in records:
            stream.write(json.dumps(record) + "\n")
    finally:
        stream.close()


def load(path):
    """Read-mode opens are fine — the rule only gates writes."""
    with open(path) as handle:
        lines = handle.readlines()
    with open(path, "r") as handle:
        text = handle.read()
    with open(path, mode="rb") as handle:
        raw = handle.read()
    return lines, text, raw
