# lint: skip-file  (fixture: known CYC001 violations; see det001_bad.py)


def window(total, parts):
    epoch_cycles = total / parts  # true division into *_cycles
    return epoch_cycles


class Accounting:
    def __init__(self, budget):
        self.quantum = budget

    def halve(self):
        self.quantum /= 2  # /= on a quantum counter

    def rebase(self, spent, n):
        self.stall_cycles = (spent + 1) / n  # nested in arithmetic


def tail(total_cycles, chunk):
    last_epoch = total_cycles - (total_cycles / chunk) * chunk
    return last_epoch


def misaligned(spent, n):
    from math import floor as fl

    # The aliased wrapper only sanitizes what it encloses: this
    # division sits outside fl(...).
    drain_cycles = fl(spent) / n
    return drain_cycles
