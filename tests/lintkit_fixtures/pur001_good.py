"""Clean counterpart of the PUR001 fixture: payloads stay pure.

Linted as module ``fixture_module``. Workers compute and return;
module-global mutation is allowed anywhere *not* reachable from a
worker payload, and an idempotent memo write can be vouched for with
``# lint: pure``.
"""

TICKS = 0
_MEMO = {}


def pure_worker(x):
    """Computes from its arguments alone."""
    return x * x + 1


def memo_worker(x):  # lint: pure
    """Idempotent per-process memo: declared pure, trusted."""
    if x not in _MEMO:
        _MEMO[x] = x * x
    return _MEMO[x]


def bump():
    """Mutates a global, but never runs inside a worker."""
    global TICKS
    TICKS += 1
    return TICKS


def fan_out(pool, xs):
    """Only pure payloads reach the pool."""
    bump()
    futures = [pool.submit(pure_worker, xs), pool.map(memo_worker, xs)]
    return futures
