"""Fixture: a model that touches simulator counters only in ``attach()``
and reads them through its CounterBank accessors everywhere else."""


class GuardedModel:
    """Touches raw counters only in ``attach()``."""

    def attach(self, system):
        """Register raw counters as CounterBank externals."""
        controller = system.mem.controller
        accounting = system.accounting
        self.bank = system.bank
        self._queueing = self.bank.external(
            "queueing_cycles", lambda core: controller.queueing_cycles[core]
        )
        self._queueing.rebase()
        self._interference = self.bank.external(
            "interference_cycles",
            lambda core: accounting.interference_cycles[core],
        )

    def estimate_slowdowns(self, core):
        """Read only through the bank accessors."""
        return self._queueing.delta(core) + self._interference.read(core)
