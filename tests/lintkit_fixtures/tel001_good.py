"""Fixture: a model that touches simulator counters only in ``attach()``
and reads them through its CounterBank accessors everywhere else."""


class GuardedModel:
    def attach(self, system):
        controller = system.mem.controller
        accounting = system.accounting
        self.bank = system.bank
        self._queueing = self.bank.external(
            "queueing_cycles", lambda core: controller.queueing_cycles[core]
        )
        self._queueing.rebase()
        self._interference = self.bank.external(
            "interference_cycles",
            lambda core: accounting.interference_cycles[core],
        )

    def estimate_slowdowns(self, core):
        return self._queueing.delta(core) + self._interference.read(core)
