# Fixture: picklable parallel payloads — zero PKL001 findings.
from concurrent.futures import ProcessPoolExecutor


def worker(payload):
    """Module-level: pickles by reference."""
    return payload + 1


def build_models():
    return {}


def sweep(payloads):
    with ProcessPoolExecutor() as pool:
        return [pool.submit(worker, p) for p in payloads]


def make_cells(mixes, config, CellSpec):
    return [
        CellSpec(mix=mix, config=config, model_builder=build_models)
        for mix in mixes
    ]


def serial_factories():
    # Lambdas NOT handed to a pool sink are fine (serial-only closures).
    factories = {"asm": lambda: object()}
    return factories
