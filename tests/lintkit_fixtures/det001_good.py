# Fixture: deterministic counterparts of det001_bad.py — zero findings.
import random


class Component:
    def __init__(self, seed):
        # Explicitly seeded generator instance: allowed.
        self.rng = random.Random(seed)
        self.now = 0

    def roll_latency(self):
        return self.rng.random() * 100

    def stamp(self):
        # Simulated time comes from the engine, not the wall clock.
        return self.now

    def key_for(self, spec):
        # Stable fields instead of id()/hash().
        return (spec.name, spec.seed)


def watchdog_deadline(monotonic_deadline):
    import time

    # Acknowledged wall-clock read: watchdogs may observe real time.
    return time.monotonic() > monotonic_deadline  # lint: ignore[DET001]
