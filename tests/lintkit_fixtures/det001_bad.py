# lint: skip-file  (fixture: every snippet below is a known DET001 violation;
# skip-file keeps an accidental directory-wide lint run clean — tests lint
# this file explicitly with suppressions disabled by reading its text)
import random
import time as clock
from datetime import datetime
from random import randint
from time import monotonic as mono


def roll_latency():
    return random.random() * 100  # module-global RNG


def pick_bank(banks):
    return random.choice(banks)  # module-global RNG


def shuffled(reqs):
    random.shuffle(reqs)  # module-global RNG
    return reqs


def stamp():
    return clock.time()  # wall clock through an alias


def started_at():
    return datetime.now()  # wall clock


def tag_for(obj):
    return id(obj)  # address-derived value


def key_for(name):
    return hash(name)  # PYTHONHASHSEED-dependent


def jitter():
    return randint(0, 3)  # module-global RNG imported by member


def tick():
    return mono()  # wall clock behind a from-import alias
