"""Clean counterpart of the DUAL001 fixture: every kernel paired.

Linted as module ``repro.vector.fixture.passes``. Shows the four ways
a kernel satisfies the registry: a function oracle in structural sync,
a class oracle (whole-class facts), a waived intentional divergence,
and an oracle living outside the linted tree (skipped, not flagged).
Private helpers are not kernels.
"""

SCALAR_ORACLES = {
    "repro.vector.fixture.passes.paired": (
        "repro.vector.fixture.passes._scalar_paired"
    ),
    "repro.vector.fixture.passes.masked": (
        "repro.vector.fixture.passes._ScalarModel"
    ),
    "repro.vector.fixture.passes.renormalized": (
        "repro.vector.fixture.passes._scalar_paired"
    ),
    "repro.vector.fixture.passes.offloaded": "repro.legacy.scalar.run",
}

DRIFT_WAIVERS = {
    "repro.vector.fixture.passes.renormalized": (
        "columnar-only rescale; validated against the oracle end-to-end"
    ),
}


def _scalar_paired(value):
    """Scalar oracle sharing the kernel's threshold."""
    return value % 31


class _ScalarModel:
    """Class oracle: facts are collected over the whole class body."""

    def __init__(self, limit=8):
        self.limit = limit

    def admit(self, value):
        return value <= self.limit


def paired(col):
    """In sync with ``_scalar_paired`` (same constant)."""
    return [v % 31 for v in col]


def masked(col):
    """In sync with ``_ScalarModel`` (its 8 and ``<=`` cover this)."""
    return [v <= 8 for v in col]


def renormalized(col):
    """Diverges on purpose; the waiver records why."""
    return [v * 5 for v in col]


def offloaded(col):
    """Oracle lives outside the linted tree: no verdict either way."""
    return [v + 1 for v in col]


def _helper(col):
    """Private: not a kernel, needs no oracle."""
    return len(col)
