# Fixture: integer cycle arithmetic — zero CYC001 findings.


def window(total, parts):
    epoch_cycles = total // parts  # floor division keeps integers
    return epoch_cycles


class Accounting:
    def __init__(self, budget):
        self.quantum = budget

    def halve(self):
        self.quantum //= 2

    def rebase(self, spent, n):
        self.stall_cycles = int((spent + 1) / n)  # int() wrapper is explicit

    def rate(self, accesses, quantum_cycles):
        # Float *rates* derived from cycles are fine: the target name is
        # not a cycle counter.
        car_shared = accesses / quantum_cycles
        return car_shared


def aligned(spent, n):
    from math import floor as fl

    # Aliased from-imports of math.floor sanitize like the real name.
    drain_cycles = fl(spent / n)
    return drain_cycles
