# lint: skip-file -- deliberately broken UNIT001 fixture (dimension
# inference); linted as module repro.cpu.fixture with suppressions
# disabled.
"""Cycle/event/fraction quantities combined incompatibly."""


def account(stall_cycles, miss_frac):
    # finding 1: adds a fraction to a cycle count.
    return stall_cycles + miss_frac


def saturated(busy_cycles, total_accesses):
    # finding 2: compares time against an event count.
    if busy_cycles < total_accesses:
        return total_accesses
    return busy_cycles


def normalize(quantum_cycles):
    # finding 3: the target name promises a fraction; the value is time.
    ratio = quantum_cycles
    return ratio


def drain_window(depth):
    """Innocent name, but what it computes is cycles."""
    return depth * 4 + unit_quantum()


def unit_quantum():
    return 100


def progress(epoch_hits, depth):
    # finding 4: interprocedural — drain_window() returns cycles.
    return epoch_hits + drain_window(depth)
