"""Fixture: columnar passes written the sanctioned way — whole-array
kernel composition, with per-element work confined to the kernel layer
(``repro.vector.columns``, the one module exempt from VEC001)."""

from repro.vector import columns as col


def classify(addrs, num_sets):
    """Set-index/tag extraction as two kernel calls."""
    return col.mod(addrs, num_sets), col.floordiv(addrs, num_sets)


def count_hits(hits):
    """Population count stays inside the kernel."""
    return col.count_true(hits)


def per_core(batch):
    """Grouping yields (key, indices) pairs — iterating *groups* is fine;
    only element-by-element column walks are flagged."""
    totals = {}
    for core, idx in batch.groups_by_core():
        totals[core] = col.count_true(col.take(batch.hits, idx))
    return totals


def merge(streams):
    """Iterating a list of stream objects is not a column walk."""
    merged = col.concat([s.cycles for s in streams])
    order = col.stable_order(merged)
    return col.take(merged, order)
