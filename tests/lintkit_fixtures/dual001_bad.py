# lint: skip-file -- deliberately broken DUAL001 fixture (scalar
# oracle registry); linted as module repro.vector.fixture.passes with
# suppressions disabled.
"""Kernels out of sync with (or missing) their scalar oracles."""

SCALAR_ORACLES = {
    "repro.vector.fixture.passes.drifting": (
        "repro.vector.fixture.passes._scalar_drift"
    ),
    "repro.vector.fixture.passes.widowed": (
        "repro.vector.fixture.passes._gone"
    ),
}


def _scalar_drift(value):
    """Scalar oracle: threshold is 8."""
    return value % 8


def unregistered(col):
    # finding 1: public kernel with no SCALAR_ORACLES entry.
    return [v + 1 for v in col]


def drifting(col):
    # finding 2: threshold 31 never made it back into the oracle.
    return [v % 31 for v in col]


def widowed(col):
    # finding 3: the declared oracle no longer exists.
    return [v + 1 for v in col]
