# lint: skip-file  (fixture: known TEL001 violations; models must read
# simulator counters through their CounterBank accessors)


class ImpatientModel:
    """Reads raw simulator counters outside ``attach()``: every sample
    bypasses the telemetry fault injectors and the estimate guards."""

    def attach(self, system):
        """Register the one legal raw access, then hoard raw handles."""
        controller = system.mem.controller
        # Registering the raw counter as a bank external *inside* attach
        # is the one legal access — this lambda must not be flagged.
        self._queueing = self.bank.external(
            "queueing_cycles", lambda core: controller.queueing_cycles[core]
        )
        self._controller = controller
        self._accounting = system.accounting
        self._llc = system.cache
        self._tracker = system.tracker

    def estimate_slowdowns(self):
        """Read raw counters directly — the violation under test."""
        queueing = self._controller.queueing_cycles[0]
        interference = self._accounting.interference_cycles[0]
        demand = self._llc.demand_misses[0]
        return queueing + interference + demand

    def reset_quantum(self):
        """Reset by writing a raw counter — also a violation."""
        # Writes bypass the bank just as badly as reads.
        self._tracker.busy_cycles = 0
