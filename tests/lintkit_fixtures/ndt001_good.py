"""Clean counterpart of the NDT001 fixture: same shapes, reproducible.

Linted as module ``repro.harness.fixture``. Wall clocks are fine for
*control* (budgets, backoff) as long as the value never reaches a
persisted record or key; persisted values derive from config and
simulated time; set contents are ordered before serialization.
"""

import json
import time

from repro.resilience.faults import stable_hash


def sim_stamp(engine_now):
    """Simulated time is deterministic: fine to persist."""
    return engine_now


def wrap(value):
    return {"t": value}


def persist(record, sink):
    json.dump(record, sink)


def ordered(xs):
    """Sorting a set discharges its iteration-order dependence."""
    return sorted(set(xs))


def save(engine_now, sink):
    record = wrap(sim_stamp(engine_now))
    persist(record, sink)
    json.dump({"members": ordered({"a", "b"})}, sink)
    return record


def key_of(seed, quanta):
    return stable_hash((seed, quanta))


def within_budget(started, limit_s):
    """Wall clock used for control only — never persisted."""
    return time.monotonic() - started < limit_s
