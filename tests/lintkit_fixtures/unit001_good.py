"""Clean counterpart of the UNIT001 fixture: dimensionally consistent.

Linted as module ``repro.cpu.fixture``. Same quantity kinds as the bad
fixture, combined only in ways the unit algebra accepts: like with
like, time scaled by a fraction, and ratios built from same-unit
divisions.
"""


def service(busy_cycles, stall_cycles):
    """Cycles add to cycles."""
    return busy_cycles + stall_cycles


def weighted(total_cycles, share_frac):
    """Scaling time by a fraction keeps it time."""
    return total_cycles * share_frac


def slowdown(shared_cycles, alone_cycles):
    """Same-unit division yields a dimensionless ratio."""
    slow_ratio = shared_cycles // max(alone_cycles, 1)
    return slow_ratio


def drain_window(depth):  # lint: unit[cycles]
    """Declared unit: trusted over the (absent) name hint."""
    return depth * 4


def horizon(quantum, depth):
    """A declared-cycles helper participates in cycle arithmetic."""
    return quantum + drain_window(depth)
