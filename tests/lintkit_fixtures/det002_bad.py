# lint: skip-file  (fixture: known DET002 violations; see det001_bad.py)


def evict_scan(lines):
    candidates = {line for line in lines if line.dirty}
    for line in candidates:  # iterating a set comprehension result
        line.flush()


def walk_literal():
    total = []
    for core in {0, 1, 2, 3}:  # set literal iteration
        total.append(core)
    return total


def from_call(addresses):
    return [a + 1 for a in set(addresses)]  # list comp over set(...)


def keys_view(table):
    out = []
    for key in table.keys():  # .keys() view iteration
        out.append(key)
    return out


def set_algebra(a, b):
    for item in a | set(b):  # set-op expression iteration
        yield item
