# lint: skip-file -- deliberately broken NDT001 fixture (whole-program
# nondeterminism taint); linted as module repro.harness.fixture with
# suppressions disabled.
"""Nondeterministic values flowing into persistence/key sinks."""

import json
import time

from repro.resilience.faults import stable_hash


def stamp():
    """A wall-clock read hiding behind an innocent helper."""
    return time.time()


def wrap(value):
    """Taint rides through a constructor-shaped wrapper."""
    return {"t": value}


def persist(record, sink):
    """The sink is two calls away from the source."""
    json.dump(record, sink)


def arbitrary(xs):
    """Set-order dependent choice."""
    return set(xs).pop()


def save(sink):
    t = stamp()
    record = wrap(t)
    persist(record, sink)  # finding 1: wall clock via stamp -> wrap -> persist
    json.dump({"direct": time.time()}, sink)  # finding 2: direct
    return record


def key_of(seed):
    # finding 3: a run key must never depend on when it was computed.
    return stable_hash((seed, time.monotonic()))


def save_choice(xs, sink):
    # finding 4: set pop order is interpreter-dependent.
    json.dump(arbitrary(xs), sink)
