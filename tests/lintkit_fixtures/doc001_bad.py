# lint: skip-file  (fixture: known DOC001 violations; public classes and
# functions in the documented packages must carry docstrings)


class BareSink:
    def write(self, event):
        self.last = event

    def __repr__(self):
        return "BareSink()"

    def _flush(self):
        pass


class Documented:
    """Has a docstring, but its public method does not."""

    def emit(self, event):
        return event


class _PrivateHelper:
    def inner(self):
        pass


def mask_of(names):
    def build(name):
        return name

    return [build(n) for n in names]
