"""Integration tests: telemetry faults through the models, runner,
policies, campaign and the chaos suite.

The load-bearing properties:

* rate-0 fault injectors are bit-identical to no injector at all;
* every fault class at 1% and 10% leaves every model finite and sane;
* degraded quanta carry confidence < 1 and a reason;
* policies hold their last decision on low-confidence quanta;
* failure records replay with the telemetry spec that produced them.
"""

import dataclasses
import math

import pytest

from repro.config import scaled_config
from repro.experiments import telemetry_faults
from repro.harness.runner import AloneRunCache, run_workload
from repro.harness.system import System
from repro.models.asm import AsmModel
from repro.models.base import POLICY_CONFIDENCE_FLOOR
from repro.policies.asm_cache import AsmCachePolicy
from repro.resilience import Campaign, replay_failure
from repro.resilience.campaign import result_from_json, result_to_json
from repro.resilience.inject import InjectedFault, TraceFaultMix
from repro.telemetry import FAULT_CLASSES, TelemetrySpec
from repro.workloads.mixes import WorkloadMix, make_mix
from repro.workloads.synthetic import AppSpec


@pytest.fixture(scope="module")
def config():
    return scaled_config().with_quantum(100_000, 5_000)


@pytest.fixture(scope="module")
def mix():
    return make_mix(["mcf", "bzip2", "ft", "libquantum"], seed=11)


@pytest.fixture(scope="module")
def alone_cache():
    # Ground-truth alone runs do not depend on the telemetry spec; share
    # them across every run in this module.
    return AloneRunCache()


def run_with(mix, config, cache, telemetry, quanta=2):
    return run_workload(
        mix,
        config,
        model_factories=telemetry_faults.chaos_model_factories(config),
        quanta=quanta,
        alone_cache=cache,
        telemetry=telemetry,
        check_invariants=True,
    )


@pytest.fixture(scope="module")
def baseline(mix, config, alone_cache):
    return run_with(mix, config, alone_cache, telemetry=None)


# ---------------------------------------------------------------------------
# Bit-identity: a rate-0 injector is indistinguishable from no injector.


@pytest.mark.parametrize("fault_class", FAULT_CLASSES)
def test_rate_zero_is_bit_identical_to_no_telemetry(
    fault_class, mix, config, alone_cache, baseline
):
    spec = TelemetrySpec(fault_class=fault_class, rate=0.0)
    faulted = run_with(mix, config, alone_cache, telemetry=spec)
    for base_rec, rec in zip(baseline.records, faulted.records):
        assert rec.estimates == base_rec.estimates
        assert rec.confidence == base_rec.confidence
        assert rec.degraded == base_rec.degraded


# ---------------------------------------------------------------------------
# The acceptance sweep: every class at 1% and 10%, every model survives.


@pytest.mark.parametrize("fault_class", FAULT_CLASSES)
@pytest.mark.parametrize("rate", [0.01, 0.1])
def test_faulted_runs_stay_finite_and_flagged(
    fault_class, rate, mix, config, alone_cache
):
    spec = TelemetrySpec(fault_class=fault_class, rate=rate)
    result = run_with(mix, config, alone_cache, telemetry=spec)
    for record in result.records:
        for model, estimates in record.estimates.items():
            confidence = record.confidence[model]
            degraded = record.degraded[model]
            for core, estimate in enumerate(estimates):
                assert math.isfinite(estimate), (model, fault_class, rate)
                assert 1.0 <= estimate <= 50.0
                assert 0.0 < confidence[core] <= 1.0
                # A flagged quantum always carries a reason and vice versa.
                assert (confidence[core] < 1.0) == (degraded[core] is not None)


# ---------------------------------------------------------------------------
# Metamorphic properties.


def test_single_app_rate_zero_has_full_confidence(config, alone_cache):
    solo = make_mix(["bzip2"], seed=3)
    for fault_class in FAULT_CLASSES:
        spec = TelemetrySpec(fault_class=fault_class, rate=0.0)
        result = run_with(solo, config, alone_cache, telemetry=spec, quanta=1)
        for record in result.records:
            for model, estimates in record.estimates.items():
                # Alone on the machine: no interference to model.
                assert estimates[0] == pytest.approx(1.0, abs=0.25)
                assert record.confidence[model][0] == 1.0
                assert record.degraded[model][0] is None


def test_confidence_degrades_monotonically_with_rate(mix, config, alone_cache):
    means = []
    for rate in (0.0, 0.3, 0.9):
        spec = TelemetrySpec(fault_class="dropped_read", rate=rate)
        result = run_with(mix, config, alone_cache, telemetry=spec)
        values = [
            c
            for record in result.records
            for confidences in record.confidence.values()
            for c in confidences
        ]
        means.append(sum(values) / len(values))
    assert means[0] >= means[1] >= means[2]
    assert means[2] < means[0]  # 90% dropped reads must be noticed


def test_idle_core_does_not_break_the_guards(config, alone_cache):
    # Near-idle application: almost no accesses, so per-quantum counters
    # sit at the degenerate values the guarded divisions must survive.
    idle = AppSpec(
        name="idle",
        apki=0.01,
        reuse_prob=0.9,
        reuse_depth=300,
        footprint_lines=4_000,
        seq_frac=0.3,
    )
    lazy_mix = WorkloadMix(
        name="idle+mcf",
        specs=(idle, make_mix(["mcf"], seed=0).specs[0]),
        seed=13,
    )
    for telemetry in (None, TelemetrySpec(fault_class="dropped_read", rate=0.1)):
        result = run_with(lazy_mix, config, alone_cache, telemetry=telemetry)
        for record in result.records:
            for estimates in record.estimates.values():
                assert all(math.isfinite(e) and e >= 1.0 for e in estimates)


# ---------------------------------------------------------------------------
# Policies hold their last decision on low-confidence quanta.


def _policy_system(config, mix, telemetry):
    system = System(
        dataclasses.replace(config, num_cores=mix.num_cores),
        mix.traces(),
        seed=mix.seed,
        telemetry=telemetry,
    )
    asm = AsmModel(sampled_sets=16)
    asm.attach(system)
    policy = AsmCachePolicy(asm)
    policy.attach(system)
    return system, asm, policy


def test_policy_skips_reallocation_on_low_confidence(config, mix):
    spec = TelemetrySpec(fault_class="dropped_read", rate=0.9)
    system, asm, policy = _policy_system(config, mix, spec)
    for _ in range(3):
        system.run_quantum()
    assert policy.skipped_reallocations > 0
    assert any(
        s.confidence < POLICY_CONFIDENCE_FLOOR for s in asm.last_quantum
    )


def test_policy_reallocates_normally_without_faults(config, mix):
    system, _, policy = _policy_system(config, mix, telemetry=None)
    for _ in range(3):
        system.run_quantum()
    assert policy.skipped_reallocations == 0
    assert policy.last_allocation is not None


# ---------------------------------------------------------------------------
# Campaign integration: keys, checkpoints and replay carry the spec.


def test_run_key_separates_telemetry_variants(config, mix):
    campaign = Campaign("keys")
    spec = TelemetrySpec(fault_class="saturation", rate=0.1)
    base = campaign.run_key(mix, config, 2, "v")
    assert base == campaign.run_key(mix, config, 2, "v", telemetry=None)
    assert base != campaign.run_key(mix, config, 2, "v", telemetry=spec)
    assert campaign.run_key(mix, config, 2, "v", telemetry=spec) == (
        campaign.run_key(mix, config, 2, "v", telemetry=spec)
    )


def test_result_json_roundtrip_keeps_confidence(config, baseline):
    data = result_to_json(baseline)
    rebuilt = result_from_json(data, config)
    for original, restored in zip(baseline.records, rebuilt.records):
        assert restored.estimates == original.estimates
        assert restored.confidence == original.confidence
        assert restored.degraded == original.degraded
    # Pre-telemetry checkpoints (no confidence keys) still load.
    for record in data["records"]:
        del record["confidence"]
        del record["degraded"]
    legacy = result_from_json(data, config)
    assert legacy.records[0].confidence == {}
    assert legacy.records[0].degraded == {}


def test_replay_failure_restores_the_telemetry_spec(config):
    faulty = TraceFaultMix.wrap(make_mix(["mcf", "bzip2"], seed=5), good_records=50)
    spec = TelemetrySpec(fault_class="wraparound", rate=0.05)
    campaign = Campaign("telemetry-replay", keep_going=True)
    assert campaign.run_mix(faulty, config, quanta=1, telemetry=spec) is None
    failure = campaign.failures[0]
    assert failure.telemetry == spec.to_json()
    # The replayed run reconstructs the spec from the failure record; the
    # clean rebuilt mix then proves the fault was the injected trace.
    result = replay_failure(failure, config)
    assert len(result.records) == 1


def test_failure_fingerprint_distinguishes_telemetry(config):
    faulty = TraceFaultMix.wrap(make_mix(["mcf", "bzip2"], seed=5), good_records=50)
    campaign = Campaign("telemetry-fp", keep_going=True)
    campaign.run_mix(faulty, config, quanta=1)
    failure = campaign.failures[0]
    assert failure.telemetry is None
    spec = TelemetrySpec(fault_class="saturation", rate=0.1)
    faulted = dataclasses.replace(failure, telemetry=spec.to_json())
    assert faulted.fingerprint() != failure.fingerprint()


# ---------------------------------------------------------------------------
# The chaos suite driver.


def test_chaos_suite_smoke(config):
    result = telemetry_faults.run(
        num_mixes=1,
        quanta=1,
        config=config,
        fault_classes=("dropped_read",),
        rates=(0.1,),
    )
    assert result.total_failures() == 0
    assert result.total_nonfinite() == 0
    assert result.any_degraded()
    assert len(result.rows) == 5  # one per model
    table = result.format_table()
    assert "dropped_read" in table and "asm" in table
    with pytest.raises(ValueError, match="unknown fault class"):
        telemetry_faults.run(num_mixes=1, fault_classes=("nope",))
