"""Command-line interface: run any of the paper's experiments.

::

    python -m repro list
    python -m repro fig02 --mixes 10 --quanta 2
    python -m repro fig09 --quanta 3 --out results/fig09.txt

Every experiment accepts ``--mixes`` (workloads per configuration) and
``--quanta`` (quanta per run); the defaults match the benchmark suite.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional

from repro.experiments import (
    ablations,
    db_workloads,
    error_comparison,
    fig01_car_proxy,
    fig04_error_distribution,
    fig05_prefetching,
    fig06_latency_distribution,
    fig07_core_count,
    fig08_cache_size,
    fig09_asm_cache,
    fig10_asm_mem,
    fig11_qos,
    sec64_mise_vs_asm,
    sec72_combined,
    table3_quantum_epoch,
)


def _with_scale(run, **fixed):
    def runner(mixes: Optional[int], quanta: Optional[int]):
        kwargs = dict(fixed)
        if mixes:
            kwargs["num_mixes"] = mixes
        if quanta:
            kwargs["quanta"] = quanta
        return run(**kwargs)

    return runner


def _per_core_count(run):
    def runner(mixes: Optional[int], quanta: Optional[int]):
        kwargs = {}
        if mixes:
            kwargs["mixes_per_count"] = {4: mixes, 8: mixes, 16: mixes}
        if quanta:
            kwargs["quanta"] = quanta
        return run(**kwargs)

    return runner


def _fixed_scale(run):
    def runner(mixes: Optional[int], quanta: Optional[int]):
        kwargs = {}
        if quanta:
            kwargs["quanta"] = quanta
        return run(**kwargs)

    return runner


EXPERIMENTS: Dict[str, Callable] = {
    "fig01": _fixed_scale(fig01_car_proxy.run),
    "fig02": _with_scale(error_comparison.run, sampled=False),
    "fig03": _with_scale(error_comparison.run, sampled=True),
    "fig04": _with_scale(fig04_error_distribution.run),
    "fig05": _with_scale(fig05_prefetching.run),
    "fig06": _with_scale(fig06_latency_distribution.run, sampled=False),
    "fig06-sampled": _with_scale(fig06_latency_distribution.run, sampled=True),
    "fig07": _per_core_count(fig07_core_count.run),
    "fig08": _with_scale(fig08_cache_size.run),
    "fig09": _per_core_count(fig09_asm_cache.run),
    "fig10": _per_core_count(fig10_asm_mem.run),
    "fig11": _fixed_scale(fig11_qos.run),
    "table3": _with_scale(table3_quantum_epoch.run),
    "sec64": _with_scale(sec64_mise_vs_asm.run),
    "sec72": _with_scale(sec72_combined.run),
    "db": _with_scale(db_workloads.run),
    "ablations": _with_scale(ablations.run),
}

DESCRIPTIONS = {
    "fig01": "CAR is a proxy for performance",
    "fig02": "error per benchmark, unsampled structures",
    "fig03": "error per benchmark, sampled ATS / small filter",
    "fig04": "error distribution",
    "fig05": "error with a stride prefetcher",
    "fig06": "alone miss latency distributions (unsampled)",
    "fig06-sampled": "alone miss latency distributions (sampled)",
    "fig07": "error vs core count",
    "fig08": "error vs cache capacity",
    "fig09": "ASM-Cache vs NoPart/UCP/MCFQ",
    "fig10": "ASM-Mem vs FRFCFS/PARBS/TCM/BLISS",
    "fig11": "ASM-QoS soft slowdown guarantees",
    "table3": "ASM error vs quantum/epoch lengths",
    "sec64": "MISE vs ASM",
    "sec72": "ASM-Cache-Mem vs PARBS+UCP",
    "db": "database workloads (TPC-C/YCSB)",
    "ablations": "ASM design-choice ablations",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ASM paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list"],
        help="experiment to run, or 'list' to enumerate them",
    )
    parser.add_argument("--mixes", type=int, default=0,
                        help="workloads per configuration")
    parser.add_argument("--quanta", type=int, default=0,
                        help="quanta per run")
    parser.add_argument("--out", type=str, default="",
                        help="also write the table to this file")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(f"{name:14s} {DESCRIPTIONS[name]}")
        return 0
    start = time.time()
    result = EXPERIMENTS[args.experiment](args.mixes or None, args.quanta or None)
    table = result.format_table()
    print(table)
    print(f"\n[{args.experiment} finished in {time.time() - start:.1f}s]")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(table + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
