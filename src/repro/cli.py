"""Command-line interface: run any of the paper's experiments.

::

    python -m repro list
    python -m repro fig02 --mixes 10 --quanta 2
    python -m repro fig09 --quanta 3 --out results/fig09.txt

Every experiment accepts ``--mixes`` (workloads per configuration) and
``--quanta`` (quanta per run); the defaults match the benchmark suite.

Campaign resilience (see ``repro.resilience``): per-mix results are
checkpointed under ``--campaign-dir`` (default ``results/.campaign``),
``--resume`` reuses checkpointed results instead of recomputing them,
``--keep-going`` turns a per-mix crash into a replayable failure record
instead of aborting the sweep, and ``--check-invariants`` enables the
conservation-law guards on every simulated quantum.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time
from typing import Callable, Dict, Optional

from repro.experiments import (
    ablations,
    db_workloads,
    error_comparison,
    fig01_car_proxy,
    fig04_error_distribution,
    fig05_prefetching,
    fig06_latency_distribution,
    fig07_core_count,
    fig08_cache_size,
    fig09_asm_cache,
    fig10_asm_mem,
    fig11_qos,
    fidelity_sweep,
    fleet_qos,
    sec64_mise_vs_asm,
    sec72_combined,
    table3_quantum_epoch,
    telemetry_faults,
)


def _supported(run, extras: dict) -> dict:
    """Keep only the extras the driver's ``run`` signature accepts."""
    params = inspect.signature(run).parameters
    return {k: v for k, v in extras.items() if v is not None and k in params}


def _with_scale(run, **fixed):
    def runner(mixes: Optional[int], quanta: Optional[int], **extras):
        kwargs = dict(fixed)
        if mixes:
            kwargs["num_mixes"] = mixes
        if quanta:
            kwargs["quanta"] = quanta
        kwargs.update(_supported(run, extras))
        return run(**kwargs)

    runner.supports = set(inspect.signature(run).parameters)
    return runner


def _per_core_count(run):
    def runner(mixes: Optional[int], quanta: Optional[int], **extras):
        kwargs = {}
        if mixes:
            kwargs["mixes_per_count"] = {4: mixes, 8: mixes, 16: mixes}
        if quanta:
            kwargs["quanta"] = quanta
        kwargs.update(_supported(run, extras))
        return run(**kwargs)

    runner.supports = set(inspect.signature(run).parameters)
    return runner


def _fixed_scale(run):
    def runner(mixes: Optional[int], quanta: Optional[int], **extras):
        kwargs = {}
        if quanta:
            kwargs["quanta"] = quanta
        kwargs.update(_supported(run, extras))
        return run(**kwargs)

    runner.supports = set(inspect.signature(run).parameters)
    return runner


EXPERIMENTS: Dict[str, Callable] = {
    "fig01": _fixed_scale(fig01_car_proxy.run),
    "fig02": _with_scale(error_comparison.run, sampled=False),
    "fig03": _with_scale(error_comparison.run, sampled=True),
    "fig04": _with_scale(fig04_error_distribution.run),
    "fig05": _with_scale(fig05_prefetching.run),
    "fig06": _with_scale(fig06_latency_distribution.run, sampled=False),
    "fig06-sampled": _with_scale(fig06_latency_distribution.run, sampled=True),
    "fig07": _per_core_count(fig07_core_count.run),
    "fig08": _with_scale(fig08_cache_size.run),
    "fig09": _per_core_count(fig09_asm_cache.run),
    "fig10": _per_core_count(fig10_asm_mem.run),
    "fig11": _fixed_scale(fig11_qos.run),
    "table3": _with_scale(table3_quantum_epoch.run),
    "sec64": _with_scale(sec64_mise_vs_asm.run),
    "sec72": _with_scale(sec72_combined.run),
    "db": _with_scale(db_workloads.run),
    "ablations": _with_scale(ablations.run),
    "telemetry-faults": _with_scale(telemetry_faults.run),
    "fleet": _fixed_scale(fleet_qos.run),
    "fidelity": _with_scale(fidelity_sweep.run),
}

DESCRIPTIONS = {
    "fig01": "CAR is a proxy for performance",
    "fig02": "error per benchmark, unsampled structures",
    "fig03": "error per benchmark, sampled ATS / small filter",
    "fig04": "error distribution",
    "fig05": "error with a stride prefetcher",
    "fig06": "alone miss latency distributions (unsampled)",
    "fig06-sampled": "alone miss latency distributions (sampled)",
    "fig07": "error vs core count",
    "fig08": "error vs cache capacity",
    "fig09": "ASM-Cache vs NoPart/UCP/MCFQ",
    "fig10": "ASM-Mem vs FRFCFS/PARBS/TCM/BLISS",
    "fig11": "ASM-QoS soft slowdown guarantees",
    "table3": "ASM error vs quantum/epoch lengths",
    "sec64": "MISE vs ASM",
    "sec72": "ASM-Cache-Mem vs PARBS+UCP",
    "db": "database workloads (TPC-C/YCSB)",
    "ablations": "ASM design-choice ablations",
    "telemetry-faults": "chaos suite: estimator robustness under counter faults",
    "fleet": "fleet tier: placement policy, chaos robustness, fair pricing",
    "fidelity": "fidelity sweep: per-tier runtime vs divergence from the oracle",
}

DEFAULT_CAMPAIGN_DIR = os.path.join("results", ".campaign")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ASM paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment to run, or 'list' to enumerate them",
    )
    parser.add_argument("--mixes", type=int, default=0,
                        help="workloads per configuration")
    parser.add_argument("--quanta", type=int, default=0,
                        help="quanta per run")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload-generation seed override")
    parser.add_argument("--out", type=str, default="",
                        help="also write the table to this file")
    parser.add_argument("--campaign-dir", type=str,
                        default=DEFAULT_CAMPAIGN_DIR,
                        help="checkpoint store root ('' disables the store)")
    parser.add_argument("--resume", action="store_true",
                        help="reuse checkpointed per-mix results")
    parser.add_argument("--keep-going", action="store_true",
                        help="record per-mix failures and finish the sweep")
    parser.add_argument("--check-invariants", action="store_true",
                        help="validate conservation laws every quantum")
    parser.add_argument("--wall-clock-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="abort any quantum exceeding this wall-clock "
                             "budget (per run_quantum call)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for per-mix fan-out "
                             "(1 = serial; results are identical)")
    parser.add_argument("--max-retries", type=int, default=0, metavar="N",
                        help="retry a failed cell up to N times (with "
                             "backoff and a per-cell circuit breaker; "
                             "0 = fail immediately)")
    parser.add_argument("--retry-backoff", type=float, default=0.05,
                        metavar="SECONDS",
                        help="base backoff before the first retry; doubles "
                             "per attempt with deterministic jitter")
    parser.add_argument("--cell-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="give up retrying a cell once it has consumed "
                             "this much wall-clock time")
    parser.add_argument("--telemetry-faults", type=str, default="",
                        metavar="CLASS[:RATE]",
                        help="inject deterministic telemetry counter faults "
                             "into every model (e.g. dropped-read:0.05); see "
                             "'repro telemetry-faults' for the full sweep")
    parser.add_argument("--telemetry-seed", type=int, default=0,
                        help="seed for the telemetry fault injector")
    parser.add_argument("--engine", type=str, default=None,
                        choices=("event", "columnar"),
                        help="execution backend (default: event; columnar "
                             "is the batched backend, bit-identical — see "
                             "DESIGN.md §9)")
    parser.add_argument("--fidelity", type=str, default=None,
                        choices=("analytical", "columnar", "event"),
                        help="fidelity tier: 'analytical' is the closed-form "
                             "surrogate (no simulation), 'columnar' the "
                             "bit-exact batched backend, 'event' the oracle "
                             "(see docs/fidelity.md)")
    parser.add_argument("--profile", action="store_true",
                        help="time every computed cell and print the "
                             "per-cell timing table; snapshots per-quantum "
                             "metrics into the campaign store")
    return parser


def _unknown_experiment(name: str) -> int:
    valid = ", ".join(sorted(EXPERIMENTS))
    sys.stderr.write(
        f"repro: unknown experiment '{name}'.\n"
        f"Valid experiments: {valid}\n"
        f"Run 'python -m repro list' for descriptions.\n"
    )
    return 2


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # The observability verbs have their own argument vocabulary; dispatch
    # before the experiment parser so 'repro trace --help' behaves.
    if argv and argv[0] == "trace":
        from repro.obs.cli import trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "profile":
        from repro.obs.cli import profile_main

        return profile_main(argv[1:])
    if argv and argv[0] == "campaign":
        from repro.durability.cli import campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.perfbench import bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "cloud":
        from repro.cloud.cli import cloud_main

        return cloud_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(f"{name:14s} {DESCRIPTIONS[name]}")
        print(f"{'trace':14s} capture/inspect structured traces "
              "(repro trace show|summarize)")
        print(f"{'profile':14s} stage timers + cProfile on a small mix")
        print(f"{'campaign':14s} verify/repair/compact checkpoint stores "
              "(repro campaign verify|repair|compact)")
        print(f"{'bench':14s} perf benchmarks + columnar A/B drill "
              "(repro bench run|compare|merge|ab)")
        print(f"{'cloud':14s} slowdown-aware fleet tier "
              "(repro cloud run|report)")
        return 0
    if args.experiment not in EXPERIMENTS:
        return _unknown_experiment(args.experiment)

    from repro.resilience import Campaign

    store_dir = (
        os.path.join(args.campaign_dir, args.experiment)
        if args.campaign_dir
        else None
    )
    retry_policy = None
    if args.max_retries > 0 or args.cell_budget is not None:
        from repro.durability import RetryPolicy

        # --max-retries counts *extra* attempts beyond the first.
        retry_policy = RetryPolicy(
            max_attempts=args.max_retries + 1,
            backoff_s=args.retry_backoff,
            cell_budget_s=args.cell_budget,
        )
    campaign = Campaign(
        args.experiment,
        store_dir,
        resume=args.resume,
        keep_going=args.keep_going,
        check_invariants=args.check_invariants,
        wall_clock_budget_s=args.wall_clock_budget,
        profile=args.profile,
        retry_policy=retry_policy,
    )

    runner = EXPERIMENTS[args.experiment]
    if args.workers > 1 and "workers" not in getattr(runner, "supports", ()):
        sys.stderr.write(
            f"repro: '{args.experiment}' does not support --workers; "
            "running serially.\n"
        )
    telemetry = None
    if args.telemetry_faults:
        from repro.telemetry import TelemetrySpec

        try:
            telemetry = TelemetrySpec.parse(
                args.telemetry_faults, seed=args.telemetry_seed
            )
        except ValueError as exc:
            sys.stderr.write(f"repro: {exc}\n")
            return 2
        if "telemetry" not in getattr(runner, "supports", ()):
            sys.stderr.write(
                f"repro: '{args.experiment}' does not support "
                "--telemetry-faults; running with perfect telemetry.\n"
            )
            telemetry = None

    engine = args.engine
    if engine and "engine" not in getattr(runner, "supports", ()):
        sys.stderr.write(
            f"repro: '{args.experiment}' does not support --engine; "
            "running on the event engine.\n"
        )
        engine = None

    fidelity = args.fidelity
    if fidelity and "fidelity" not in getattr(runner, "supports", ()):
        sys.stderr.write(
            f"repro: '{args.experiment}' does not support --fidelity; "
            "running at the configured engine's tier.\n"
        )
        fidelity = None

    start = time.time()
    result = runner(
        args.mixes or None,
        args.quanta or None,
        seed=args.seed,
        campaign=campaign,
        workers=args.workers if args.workers > 1 else None,
        telemetry=telemetry,
        engine=engine,
        fidelity=fidelity,
    )
    table = result.format_table()
    print(table)
    print(f"\n[{args.experiment} finished in {time.time() - start:.1f}s]")
    if campaign.computed or campaign.resumed or campaign.failures:
        print(campaign.summary())
    if args.profile and campaign.cell_timings:
        print("\ncell timings:")
        print(campaign.timing_table())
    if campaign.degraded:
        print("degraded cells:")
        print(campaign.degraded_summary())
    if campaign.failures:
        print(campaign.failure_summary())
    if args.out:
        from repro.durability.atomic import atomic_write_text

        atomic_write_text(args.out, table + "\n")
    return 1 if campaign.failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
