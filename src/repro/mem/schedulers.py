"""Memory-request scheduling policies.

* :class:`FrFcfsScheduler` — the paper's baseline [58, 74]: row hits first,
  then oldest first.
* :class:`ParbsScheduler` — Parallelism-Aware Batch Scheduling [47]: form
  batches of the oldest requests per (core, bank), rank cores within a batch
  shortest-job-first by maximum per-bank load, serve marked requests first.
* :class:`TcmScheduler` — Thread Cluster Memory scheduling [31]: cluster
  cores into a latency-sensitive cluster (low memory intensity, always
  prioritised) and a bandwidth-intensive cluster whose relative priorities
  are shuffled periodically to even out slowdowns.

Epoch-based prioritisation of one application (used by MISE/ASM/ASM-Mem) is
implemented in the controller as a filter *above* the scheduler, matching
the paper's description of highest-priority treatment at the controller.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.mem.dram import Channel
from repro.mem.request import MemRequest


class Scheduler:
    """Interface: pick one request to issue among issuable candidates."""

    name = "base"

    def pick(
        self, candidates: Sequence[MemRequest], channel: Channel, now: int
    ) -> MemRequest:
        raise NotImplementedError

    def update(self, now: int, per_core_requests: Sequence[int]) -> None:
        """Periodic policy-state refresh; called by the controller with
        cumulative per-core read counts."""

    @staticmethod
    def _is_row_hit(request: MemRequest, channel: Channel) -> bool:
        return channel.banks[request.bank].open_row == request.row


class FrFcfsScheduler(Scheduler):
    """First-Ready FCFS: row hits over older requests."""

    name = "frfcfs"

    def pick(self, candidates, channel, now):
        return max(
            candidates,
            key=lambda r: (self._is_row_hit(r, channel), -r.arrival_time),
        )


class ParbsScheduler(Scheduler):
    """Parallelism-Aware Batch Scheduling.

    When no marked requests remain, a new batch is formed by marking up to
    ``marking_cap`` oldest requests per (core, bank) across the queues the
    controller exposes through :meth:`register_queues`. Cores are ranked by
    the max-total rule: fewest requests in their busiest bank first (ties by
    total), so "shorter jobs" finish their batch quickly, preserving
    bank-level parallelism.
    """

    name = "parbs"

    def __init__(self, marking_cap: int = 5) -> None:
        self.marking_cap = marking_cap
        self._queues: List[List[MemRequest]] = []
        self._rank: Dict[int, int] = {}

    def register_queues(self, queues: List[List[MemRequest]]) -> None:
        """The controller hands over live references to its read queues."""
        self._queues = queues

    def _marked_remaining(self) -> bool:
        return any(r.marked for q in self._queues for r in q)

    def _form_batch(self) -> None:
        per_core_bank: Dict[tuple, int] = {}
        batch: List[MemRequest] = []
        for queue in self._queues:
            for request in sorted(queue, key=lambda r: r.arrival_time):
                key = (request.core, request.channel, request.bank)
                count = per_core_bank.get(key, 0)
                if count < self.marking_cap:
                    request.marked = True
                    per_core_bank[key] = count + 1
                    batch.append(request)
        # Rank cores: max per-bank load, then total load, fewest first.
        max_load: Dict[int, int] = {}
        total_load: Dict[int, int] = {}
        for (core, _ch, _bank), count in per_core_bank.items():
            max_load[core] = max(max_load.get(core, 0), count)
        for request in batch:
            total_load[request.core] = total_load.get(request.core, 0) + 1
        order = sorted(
            max_load, key=lambda c: (max_load[c], total_load.get(c, 0))
        )
        self._rank = {core: i for i, core in enumerate(order)}

    def pick(self, candidates, channel, now):
        if not self._marked_remaining():
            self._form_batch()
        worst_rank = len(self._rank)
        return max(
            candidates,
            key=lambda r: (
                r.marked,
                -self._rank.get(r.core, worst_rank),
                self._is_row_hit(r, channel),
                -r.arrival_time,
            ),
        )


class BlissScheduler(Scheduler):
    """The Blacklisting memory scheduler (BLISS) [65].

    Observes the stream of scheduled requests: an application that gets
    ``blacklist_threshold`` requests served consecutively is blacklisted
    for ``clearing_interval`` cycles. Non-blacklisted applications'
    requests are prioritised over blacklisted ones; within a class,
    row hits first, then oldest first. A deliberately simple scheme that
    approaches application-aware schedulers' fairness at far lower cost.
    """

    name = "bliss"

    def __init__(
        self,
        num_cores: int,
        blacklist_threshold: int = 4,
        clearing_interval: int = 10_000,
    ) -> None:
        self.num_cores = num_cores
        self.blacklist_threshold = blacklist_threshold
        self.clearing_interval = clearing_interval
        self._blacklisted = [False] * num_cores
        self._last_core = -1
        self._streak = 0
        self._last_clear = 0

    def update(self, now: int, per_core_requests: Sequence[int]) -> None:
        if now - self._last_clear >= self.clearing_interval:
            self._last_clear = now
            self._blacklisted = [False] * self.num_cores

    def pick(self, candidates, channel, now):
        choice = max(
            candidates,
            key=lambda r: (
                not self._blacklisted[r.core],
                self._is_row_hit(r, channel),
                -r.arrival_time,
            ),
        )
        if choice.core == self._last_core:
            self._streak += 1
            if self._streak >= self.blacklist_threshold:
                self._blacklisted[choice.core] = True
        else:
            self._last_core = choice.core
            self._streak = 1
        return choice


class TcmScheduler(Scheduler):
    """Thread Cluster Memory scheduling.

    Cores are re-clustered every ``cluster_period`` cycles: cores are sorted
    by memory intensity (requests issued in the elapsed window) and the
    least intensive cores whose combined traffic stays below
    ``cluster_threshold`` of the total form the latency-sensitive cluster.
    Ranks within the bandwidth cluster are shuffled every
    ``shuffle_period`` cycles.
    """

    name = "tcm"

    def __init__(
        self,
        num_cores: int,
        cluster_period: int = 1_000_000,
        shuffle_period: int = 10_000,
        cluster_threshold: float = 0.2,
        seed: int = 1,
    ) -> None:
        self.num_cores = num_cores
        self.cluster_period = cluster_period
        self.shuffle_period = shuffle_period
        self.cluster_threshold = cluster_threshold
        self._rng = random.Random(seed)
        self._latency_cluster = set(range(num_cores))
        self._bw_rank: Dict[int, int] = {c: c for c in range(num_cores)}
        self._last_cluster_time = 0
        self._last_shuffle_time = 0
        self._last_counts = [0] * num_cores

    def update(self, now: int, per_core_requests: Sequence[int]) -> None:
        if now - self._last_cluster_time >= self.cluster_period:
            window = [
                per_core_requests[c] - self._last_counts[c]
                for c in range(self.num_cores)
            ]
            self._last_counts = list(per_core_requests)
            self._last_cluster_time = now
            total = sum(window)
            self._latency_cluster = set()
            if total:
                budget = self.cluster_threshold * total
                used = 0.0
                for core in sorted(range(self.num_cores), key=lambda c: window[c]):
                    if used + window[core] <= budget:
                        self._latency_cluster.add(core)
                        used += window[core]
            else:
                self._latency_cluster = set(range(self.num_cores))
        if now - self._last_shuffle_time >= self.shuffle_period:
            self._last_shuffle_time = now
            order = list(range(self.num_cores))
            self._rng.shuffle(order)
            self._bw_rank = {core: i for i, core in enumerate(order)}

    def pick(self, candidates, channel, now):
        return max(
            candidates,
            key=lambda r: (
                r.core in self._latency_cluster,
                -self._bw_rank.get(r.core, 0),
                self._is_row_hit(r, channel),
                -r.arrival_time,
            ),
        )
