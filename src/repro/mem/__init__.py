"""Main memory subsystem: DDR3 timing model, controller, schedulers."""

from repro.mem.request import MemRequest
from repro.mem.dram import Bank, Channel, DramMapping
from repro.mem.controller import MemoryController
from repro.mem.schedulers import (
    BlissScheduler,
    FrFcfsScheduler,
    ParbsScheduler,
    TcmScheduler,
)

__all__ = [
    "MemRequest",
    "Bank",
    "Channel",
    "DramMapping",
    "MemoryController",
    "BlissScheduler",
    "FrFcfsScheduler",
    "ParbsScheduler",
    "TcmScheduler",
]
