"""The memory controller.

Owns per-channel read/write queues, drives the DDR3 timing model through a
pluggable scheduling policy, and maintains the instrumentation every
slowdown model in the paper consumes:

* **Epoch priority** (:attr:`priority_core`): requests of one application
  can be given highest priority, the mechanism MISE/ASM/ASM-Mem use to
  emulate alone-run memory service (Section 3.2, step 1).
* **Queueing cycles** (Section 4.3): cycles during which the highest-
  priority application has an outstanding request while the previously
  issued command belonged to another application.
* **Per-request interference attribution**: each read accumulates the
  cycles it waited behind other cores' bank/bus occupancy plus row-conflict
  penalties caused by other cores. This is exactly the per-request signal
  FST/PTCA/STFM-style accounting consumes — and the paper argues is
  unreliable under overlapped service.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.config import DramConfig
from repro.engine import Engine
from repro.mem.dram import Channel, DramMapping, service_request
from repro.mem.request import MemRequest
from repro.mem.schedulers import FrFcfsScheduler, ParbsScheduler, Scheduler

CompletionListener = Callable[[MemRequest], None]

# Write queue occupancy beyond which writes are drained ahead of reads.
WRITE_DRAIN_WATERMARK = 64


class MemoryController:
    """Per-channel queues + scheduler + DDR3 timing."""

    def __init__(
        self,
        engine: Engine,
        config: DramConfig,
        num_cores: int,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.num_cores = num_cores
        self.scheduler = scheduler or FrFcfsScheduler()
        self.mapping = DramMapping(config)
        self.channels: List[Channel] = [
            Channel(self.mapping.banks_per_channel) for _ in range(config.channels)
        ]
        self.read_queues: List[List[MemRequest]] = [
            [] for _ in range(config.channels)
        ]
        self.write_queues: List[List[MemRequest]] = [
            [] for _ in range(config.channels)
        ]
        if isinstance(self.scheduler, ParbsScheduler):
            self.scheduler.register_queues(self.read_queues)
        self._wake_scheduled = [False] * config.channels
        # Issue-path constants and per-channel issue thunks, precomputed so
        # the per-request path neither re-derives DDR timing nor allocates
        # a fresh closure on every wake.
        self._conflict_penalty = config.trp + config.trcd
        self._burst = config.burst_time
        self._issue_thunks = [
            (lambda ch=ch: self._issue(ch)) for ch in range(config.channels)
        ]

        self.priority_core: int = -1
        # Core whose queueing cycles are being accounted (normally the
        # priority core; decoupled during epoch warm-up windows).
        self.accounting_core: int = -1
        # Per-core counters.
        self.reads_issued = [0] * num_cores
        self.row_hits = [0] * num_cores
        self.row_misses = [0] * num_cores
        self.queueing_cycles = [0] * num_cores
        self._last_account_time = [0] * config.channels
        self.completion_listeners: List[CompletionListener] = []
        self.refreshes_performed = 0
        if config.refresh_enabled:
            self.engine.schedule(config.trefi, self._refresh)

    # ------------------------------------------------------------------
    def enqueue(self, request: MemRequest) -> None:
        """Accept a new request; timing fields are filled as it is served."""
        channel, bank, row = self.mapping.locate(request.line_addr)
        request.channel = channel
        request.bank = bank
        request.row = row
        if request.is_write:
            self.write_queues[channel].append(request)
        else:
            self.read_queues[channel].append(request)
        self._wake(channel)

    def set_priority_core(self, core: int) -> None:
        """Give ``core``'s requests highest priority (-1 disables).

        Settles queueing accounting first so counted cycles are attributed
        to the application that was prioritised while they elapsed.
        """
        for channel in range(self.config.channels):
            self._account_queueing(channel, self.engine.now)
        self.priority_core = core
        self.accounting_core = core

    def set_accounting_core(self, core: int) -> None:
        """Restrict queueing-cycle accounting to ``core`` (-1 disables)
        without changing scheduling priority — used to exclude epoch
        warm-up windows from the Section 4.3 correction."""
        for channel in range(self.config.channels):
            self._account_queueing(channel, self.engine.now)
        self.accounting_core = core

    def outstanding_reads(self, core: int) -> int:
        return sum(
            1 for q in self.read_queues for r in q if r.core == core
        )

    def reset_stats(self) -> None:
        self.reads_issued = [0] * self.num_cores
        self.row_hits = [0] * self.num_cores
        self.row_misses = [0] * self.num_cores
        self.queueing_cycles = [0] * self.num_cores

    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        """All-bank refresh on every channel: busy for tRFC, rows closed.

        Modelled at channel granularity (all ranks refresh together), which
        is the common auto-refresh configuration."""
        now = self.engine.now
        done = now + self.config.trfc
        for channel_idx, channel in enumerate(self.channels):
            for bank in channel.banks:
                bank.busy_until = max(bank.busy_until, done)
                bank.open_row = None
                bank.last_opener = -1
            if self.read_queues[channel_idx] or self.write_queues[channel_idx]:
                self.engine.schedule_at(done, lambda ch=channel_idx: self._wake(ch))
        self.refreshes_performed += 1
        self.engine.schedule(self.config.trefi, self._refresh)

    def row_hit_rate(self, core: int) -> float:
        """Row-buffer hit rate of ``core``'s serviced reads."""
        total = self.row_hits[core] + self.row_misses[core]
        return self.row_hits[core] / total if total else 0.0

    def _wake(self, channel: int) -> None:
        if not self._wake_scheduled[channel]:
            self._wake_scheduled[channel] = True
            self.engine.schedule(0, self._issue_thunks[channel])

    def _account_queueing(self, channel_idx: int, now: int) -> None:
        """Accrue Section 4.3 queueing cycles over the window since the last
        accounting point: a cycle is a queueing cycle if a request from the
        highest-priority application is outstanding and the previous command
        issued by the controller came from another application (the paper's
        literal definition). This captures all the residual interference a
        non-preemptive controller leaves — bank occupancy, bus bursts and
        write drains from other applications."""
        start = self._last_account_time[channel_idx]
        self._last_account_time[channel_idx] = now
        if now <= start:
            return
        core = self.accounting_core
        if core < 0:
            return
        channel = self.channels[channel_idx]
        if channel.last_issued_core in (-1, core):
            return
        oldest = None
        for request in self.read_queues[channel_idx]:
            if request.core == core and (
                oldest is None or request.arrival_time < oldest.arrival_time
            ):
                oldest = request
        if oldest is None or oldest.arrival_time >= now:
            return
        # A wait behind the application's *own* in-flight request on the
        # same bank is intrinsic (an alone run would wait too), not
        # interference — do not count it as a queueing cycle.
        bank = channel.banks[oldest.bank]
        if bank.busy_until > start and bank.current_core == core:
            return
        self.queueing_cycles[core] += now - max(start, oldest.arrival_time)

    def _candidates(self, channel_idx: int) -> List[MemRequest]:
        channel = self.channels[channel_idx]
        now = self.engine.now
        banks = channel.banks

        def issuable(queue):
            return [r for r in queue if banks[r.bank].busy_until <= now]

        writes_pending = len(self.write_queues[channel_idx])
        if writes_pending >= WRITE_DRAIN_WATERMARK:
            writes = issuable(self.write_queues[channel_idx])
            if writes:
                return writes
        reads = issuable(self.read_queues[channel_idx])
        if reads:
            if self.priority_core >= 0:
                prioritized = [r for r in reads if r.core == self.priority_core]
                if prioritized:
                    return prioritized
            return reads
        return issuable(self.write_queues[channel_idx])

    def _issue(self, channel_idx: int) -> None:
        self._wake_scheduled[channel_idx] = False
        now = self.engine.now
        channel = self.channels[channel_idx]
        self._account_queueing(channel_idx, now)
        self.scheduler.update(now, self.reads_issued)

        while True:
            candidates = self._candidates(channel_idx)
            if not candidates:
                break
            request = self.scheduler.pick(candidates, channel, now)
            completion, row_hit, conflict_other = service_request(
                channel, request, now, self.config
            )
            queue = (
                self.write_queues[channel_idx]
                if request.is_write
                else self.read_queues[channel_idx]
            )
            queue.remove(request)
            self._attribute_interference(
                channel_idx, request, completion - now, conflict_other
            )
            if not request.is_write:
                self.reads_issued[request.core] += 1
                if row_hit:
                    self.row_hits[request.core] += 1
                else:
                    self.row_misses[request.core] += 1
            channel.last_issued_core = request.core
            channel.last_issue_time = now
            self.engine.schedule_at(
                completion, lambda r=request, ch=channel_idx: self._complete(r, ch)
            )

    def _attribute_interference(
        self,
        channel_idx: int,
        request: MemRequest,
        occupancy: int,
        conflict_other: bool,
    ) -> None:
        """Charge other cores' *oldest* waiting requests for this issue's
        resource occupancy, mirroring STFM-style hardware that tracks one
        stalled request per thread per cycle: full occupancy on a bank
        match, one data burst otherwise (bus serialisation). Also charge
        this request for a row conflict another core caused."""
        if conflict_other:
            request.interference_cycles += self._conflict_penalty
        queue = self.read_queues[channel_idx]
        if not queue:
            return
        burst = self._burst
        core = request.core
        oldest: dict = {}
        for waiting in queue:
            if waiting.core == core:
                continue
            head = oldest.get(waiting.core)
            if head is None or waiting.arrival_time < head.arrival_time:
                oldest[waiting.core] = waiting
        for waiting in oldest.values():
            if waiting.bank == request.bank:
                waiting.interference_cycles += occupancy
            else:
                waiting.interference_cycles += burst

    def _complete(self, request: MemRequest, channel_idx: int) -> None:
        self._account_queueing(channel_idx, self.engine.now)
        if request.callback is not None:
            request.callback(request)
        if not request.is_write:
            for listener in self.completion_listeners:
                listener(request)
        # The freed bank may unblock queued work.
        if self.read_queues[channel_idx] or self.write_queues[channel_idx]:
            self._wake(channel_idx)
