"""Transaction-level DDR3 timing model.

Models the first-order DRAM effects that drive inter-application memory
interference in the paper: per-bank row buffers with the hit / closed /
conflict latency triad, the tRAS restriction on early precharge, bank-level
parallelism, and per-channel data-bus serialisation.

Command-level details (tFAW, tRRD, refresh) are below the noise floor for
the interference phenomena studied here and are deliberately omitted; the
row-latency triad uses real DDR3-1333 (10-10-10) values from
:class:`repro.config.DramConfig`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import DramConfig
from repro.mem.request import MemRequest


class Bank:
    """One DRAM bank: open row, busy window, last-activate time."""

    __slots__ = ("open_row", "busy_until", "act_time", "last_opener", "current_core")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.busy_until: int = 0
        self.act_time: int = 0
        # Core whose request opened the current row (for interference
        # attribution: a row conflict caused by another core's activation).
        self.last_opener: int = -1
        # Core whose request currently occupies the bank (valid while
        # busy_until is in the future).
        self.current_core: int = -1


class Channel:
    """One memory channel: banks plus a shared data bus."""

    def __init__(self, num_banks: int) -> None:
        self.banks: List[Bank] = [Bank() for _ in range(num_banks)]
        self.bus_free_at: int = 0
        self.last_issued_core: int = -1
        self.last_issue_time: int = 0


class DramMapping:
    """Physical address mapping: row-interleaved across channels, then
    row-granularity interleaving across banks.

    Consecutive cache lines fall in the same row (preserving row-buffer
    locality), consecutive rows rotate across channels and banks (exposing
    channel/bank parallelism).
    """

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self.lines_per_row = config.row_size_bytes // 64
        self.channels = config.channels
        self.banks_per_channel = config.ranks_per_channel * config.banks_per_rank

    def locate(self, line_addr: int) -> Tuple[int, int, int]:
        """Return (channel, bank, row) for a cache-line address."""
        row_index = line_addr // self.lines_per_row
        channel = row_index % self.channels
        per_channel_row = row_index // self.channels
        bank = per_channel_row % self.banks_per_channel
        row = per_channel_row // self.banks_per_channel
        return channel, bank, row


def service_request(
    channel: Channel, request: MemRequest, now: int, config: DramConfig
) -> Tuple[int, bool, bool]:
    """Issue ``request`` on ``channel`` at time ``now``; the caller must
    ensure the target bank is free (``busy_until <= now``).

    Returns ``(completion_time, row_hit, conflict_with_other)`` and updates
    bank and bus state. ``conflict_with_other`` is True when the latency
    included a precharge of a row opened by a different core — the component
    per-request accounting mechanisms attribute to interference.
    """
    bank = channel.banks[request.bank]
    row_hit = False
    conflict_with_other = False

    if bank.open_row == request.row:
        # Row hit: column access only.
        data_ready = now + config.cas_latency
        row_hit = True
    elif bank.open_row is None:
        # Closed row: activate then access.
        bank.act_time = now
        data_ready = now + config.trcd + config.cas_latency
    else:
        # Row conflict: precharge (not before tRAS after activate), then
        # activate, then access.
        precharge_start = max(now, bank.act_time + config.tras)
        conflict_with_other = bank.last_opener != request.core
        act_start = precharge_start + config.trp
        bank.act_time = act_start
        data_ready = act_start + config.trcd + config.cas_latency

    if not row_hit:
        bank.open_row = request.row
        bank.last_opener = request.core

    # The data burst serialises on the channel's data bus.
    completion = max(data_ready, channel.bus_free_at) + config.burst_time
    channel.bus_free_at = completion
    bank.busy_until = completion
    bank.current_core = request.core

    request.issue_time = now
    request.completion_time = completion
    request.row_hit = row_hit
    return completion, row_hit, conflict_with_other
