"""Memory request record passed between the LLC and the memory controller."""

from __future__ import annotations

from typing import Callable, Optional


class MemRequest:
    """One DRAM read or write transaction.

    Timing fields are filled in by the controller as the request advances.
    ``interference_cycles`` accumulates the controller's per-request
    attribution of delay caused by *other* cores — the quantity FST/PTCA-
    style per-request accounting consumes (and the paper argues is
    inherently inaccurate to measure).
    """

    __slots__ = (
        "core",
        "line_addr",
        "is_write",
        "is_prefetch",
        "arrival_time",
        "issue_time",
        "completion_time",
        "callback",
        "channel",
        "bank",
        "row",
        "interference_cycles",
        "row_hit",
        "marked",
    )

    def __init__(
        self,
        core: int,
        line_addr: int,
        is_write: bool = False,
        is_prefetch: bool = False,
        arrival_time: int = 0,
        callback: Optional[Callable[["MemRequest"], None]] = None,
    ) -> None:
        self.core = core
        self.line_addr = line_addr
        self.is_write = is_write
        self.is_prefetch = is_prefetch
        self.arrival_time = arrival_time
        self.issue_time: Optional[int] = None
        self.completion_time: Optional[int] = None
        self.callback = callback
        self.channel: int = 0
        self.bank: int = 0
        self.row: int = 0
        self.interference_cycles: float = 0.0
        self.row_hit: bool = False
        self.marked: bool = False  # PARBS batch membership

    @property
    def latency(self) -> int:
        """End-to-end service latency (valid after completion)."""
        if self.completion_time is None:
            raise ValueError("request has not completed")
        return self.completion_time - self.arrival_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else ("P" if self.is_prefetch else "R")
        return (
            f"MemRequest({kind} core={self.core} line={self.line_addr:#x} "
            f"ch={self.channel} bank={self.bank} row={self.row})"
        )
