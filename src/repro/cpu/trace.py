"""Trace record format consumed by the core model.

A trace is an iterator of :class:`TraceRecord`. Each record represents one
access to the *shared* cache (i.e. a private-L1 miss) preceded by ``gap``
instructions that did not reach the shared cache (compute instructions and
L1 hits).

Pre-filtering the private L1 into the trace is sound for this study: the L1
is private, so an application's L1 behaviour is identical whether it runs
alone or shared — interference only begins at the shared cache. It is also
what makes a Python-based reproduction tractable (the event count drops by
~100x versus simulating every load/store).
"""

from __future__ import annotations

from typing import Iterator, NamedTuple


class TraceRecord(NamedTuple):
    """One shared-cache access."""

    gap: int  # instructions executed since the previous shared-cache access
    line_addr: int  # cache-line address (byte address >> 6)
    is_write: bool


TraceIterator = Iterator[TraceRecord]
