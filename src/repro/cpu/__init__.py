"""Trace-driven core models and prefetching."""

from repro.cpu.trace import TraceRecord
from repro.cpu.core import Core
from repro.cpu.prefetcher import StridePrefetcher

__all__ = ["TraceRecord", "Core", "StridePrefetcher"]
