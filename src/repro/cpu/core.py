"""Trace-driven out-of-order core model.

Approximates the paper's 3-wide, 128-entry-window OoO cores with the three
mechanisms that matter for memory interference studies:

* **Issue bandwidth**: instructions issue at ``issue_width`` per cycle, so
  compute gaps take time proportional to their length.
* **Window-limited MLP**: a shared-cache access cannot issue until every
  access more than ``window_size`` instructions older has completed. Within
  the window, any number of accesses overlap — this is the request-service
  overlap that defeats per-request interference accounting.
* **MSHR limit**: at most ``mshr_entries`` cache misses may be in flight.

Stores retire through a store buffer (they never block the window head);
their cache/memory traffic is still fully modelled.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.config import CoreConfig
from repro.cpu.trace import TraceIterator, TraceRecord
from repro.engine import Engine

# hierarchy.access(core, line_addr, is_write, on_complete) -> completion time
# (if deterministic) or None (on_complete(time) will fire later).
HierarchyAccess = Callable[[int, int, bool, Optional[Callable[[int], None]]], Optional[int]]

_POSITION = 0
_COMPLETION = 1


class Core:
    """One trace-driven core."""

    def __init__(
        self,
        engine: Engine,
        core_id: int,
        config: CoreConfig,
        trace: TraceIterator,
        hierarchy_access: HierarchyAccess,
    ) -> None:
        self.engine = engine
        self.core_id = core_id
        self.config = config
        self.trace = trace
        self.hierarchy_access = hierarchy_access
        # The issue loop reads these once per instruction; plain attributes
        # are one lookup cheaper than going through the config dataclass.
        self._window_size = config.window_size
        self._issue_width = config.issue_width
        self._mshr_entries = config.mshr_entries
        self._window_credit = config.window_size // config.issue_width

        self.position = 0  # instructions issued so far
        self.frontend_time = 0  # cycle up to which the frontend has issued
        self.outstanding: Deque[List[Optional[int]]] = deque()
        self.inflight_misses = 0
        self.finished = False

        self._next_record: Optional[TraceRecord] = None
        self._advance_scheduled = False
        self._waiting_for_fill = False

    def start(self) -> None:
        self._schedule_advance(self.engine.now)

    # ------------------------------------------------------------------
    def committed_instructions(self, now: Optional[int] = None) -> int:
        """Instructions retired by ``now`` under in-order retirement."""
        if now is None:
            now = self.engine.now
        for entry in self.outstanding:
            completion = entry[_COMPLETION]
            if completion is None or completion > now:
                return max(0, entry[_POSITION] - 1)
        return self.position

    # ------------------------------------------------------------------
    def _schedule_advance(self, time: int) -> None:
        if not self._advance_scheduled:
            self._advance_scheduled = True
            self.engine.schedule_at(max(time, self.engine.now), self._advance)

    def _advance(self) -> None:
        self._advance_scheduled = False
        now = self.engine.now
        outstanding = self.outstanding
        window_size = self._window_size
        issue_width = self._issue_width
        mshr_entries = self._mshr_entries
        trace = self.trace
        popleft = outstanding.popleft

        while True:
            if self._next_record is None:
                record = next(trace, None)
                if record is None:
                    self.finished = True
                    return
                if record.gap < 0 or record.line_addr < 0:
                    raise ValueError(
                        f"corrupt trace record for core {self.core_id}: "
                        f"{record!r}"
                    )
                self._next_record = record
            record = self._next_record

            while outstanding:
                head_done = outstanding[0][_COMPLETION]
                if head_done is None or head_done > now:
                    break
                popleft()

            issue_position = self.position + record.gap + 1
            # Instructions head..issue_position inclusive must fit in the
            # window, i.e. span (issue - head + 1) <= window_size.
            if (
                outstanding
                and issue_position - outstanding[0][_POSITION] >= window_size
            ):
                head_completion = outstanding[0][_COMPLETION]
                if head_completion is None:
                    self._waiting_for_fill = True
                else:
                    self._stall_frontend(head_completion)
                    self._schedule_advance(head_completion)
                return

            if self.inflight_misses >= mshr_entries:
                self._waiting_for_fill = True
                return

            frontend_done = self.frontend_time + (
                (record.gap + issue_width) // issue_width
            )
            if frontend_done > now:
                self._schedule_advance(frontend_done)
                return

            # Issue the access now.
            self._next_record = None
            self.position = issue_position
            self.frontend_time = frontend_done
            entry: List[Optional[int]] = [issue_position, None]
            outstanding.append(entry)
            if record.is_write:
                # Stores retire immediately via the store buffer; the write
                # still walks the hierarchy for state and traffic.
                entry[_COMPLETION] = now + 1
                self.hierarchy_access(self.core_id, record.line_addr, True, None)
            else:
                completion = self.hierarchy_access(
                    self.core_id,
                    record.line_addr,
                    False,
                    lambda t, e=entry: self._on_fill(e, t),
                )
                if completion is not None:
                    entry[_COMPLETION] = completion
                else:
                    self.inflight_misses += 1

    def _stall_frontend(self, resume_time: int) -> None:
        """The frontend cannot run ahead of retirement by more than the
        instruction window: while the window head blocks until
        ``resume_time``, at most ``window_size`` instructions' worth of
        fetch can be banked."""
        resume_floor = resume_time - self._window_credit
        if resume_floor > self.frontend_time:
            self.frontend_time = resume_floor

    def _on_fill(self, entry: List[Optional[int]], time: int) -> None:
        entry[_COMPLETION] = time
        self.inflight_misses -= 1
        if self._waiting_for_fill:
            self._waiting_for_fill = False
            self._stall_frontend(time)
            self._schedule_advance(time)
