"""Stride prefetcher (Section 6.2 of the paper: degree 4, distance 24).

Watches the demand access stream reaching the shared cache [7, 63]. Once
the same stride is observed twice in a row, it emits prefetch candidates
``distance`` lines ahead of the demand stream, ``degree`` per trigger, with
a small recent-issue filter to avoid duplicates.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Set


class StridePrefetcher:
    """Per-core stream-based stride prefetcher."""

    def __init__(
        self, degree: int = 4, distance: int = 24, filter_size: int = 256
    ) -> None:
        if degree <= 0 or distance <= 0:
            raise ValueError("degree and distance must be positive")
        self.degree = degree
        self.distance = distance
        self.filter_size = filter_size
        self._last_addr: int | None = None
        self._last_stride: int | None = None
        self._confident = False
        self._recent: Set[int] = set()
        self._recent_order: Deque[int] = deque()
        self.issued = 0

    def observe(self, line_addr: int) -> List[int]:
        """Feed one demand access; return line addresses to prefetch."""
        candidates: List[int] = []
        if self._last_addr is not None:
            stride = line_addr - self._last_addr
            if stride != 0 and stride == self._last_stride:
                self._confident = True
            elif stride != self._last_stride:
                self._confident = False
            self._last_stride = stride
        self._last_addr = line_addr

        if self._confident and self._last_stride:
            stride = self._last_stride
            base = line_addr + self.distance * stride
            for k in range(self.degree):
                target = base + k * stride
                if target >= 0 and target not in self._recent:
                    self._remember(target)
                    candidates.append(target)
        self.issued += len(candidates)
        return candidates

    def _remember(self, line_addr: int) -> None:
        self._recent.add(line_addr)
        self._recent_order.append(line_addr)
        if len(self._recent_order) > self.filter_size:
            self._recent.discard(self._recent_order.popleft())

    def reset(self) -> None:
        self._last_addr = None
        self._last_stride = None
        self._confident = False
        self._recent.clear()
        self._recent_order.clear()
