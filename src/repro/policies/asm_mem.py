"""ASM-Mem (Section 7.2): slowdown-proportional bandwidth partitioning.

At the end of each quantum, every application's slowdown estimate from ASM
becomes its probability mass for epoch assignment in the next quantum:

::

    P(epoch -> A_i) = slowdown(A_i) / sum_k slowdown(A_k)

so more-slowed-down applications receive highest memory priority more
often. This is the reason ASM assigns epochs probabilistically rather than
round-robin in the first place (Section 4.2).
"""

from __future__ import annotations

from repro.harness.system import System
from repro.models.asm import AsmModel
from repro.models.base import POLICY_CONFIDENCE_FLOOR
from repro.policies.base import Policy


class AsmMemPolicy(Policy):
    name = "asm-mem"

    def __init__(self, asm: AsmModel) -> None:
        super().__init__()
        self.asm = asm
        # Quanta where degraded telemetry suppressed a weight update.
        self.skipped_reallocations = 0

    def attach(self, system: System) -> None:
        if self.asm.system is not system:
            raise ValueError("the AsmModel must be attached to the same system")
        super().attach(system)

    def on_quantum_end(self) -> None:
        assert self.system is not None
        if not self.asm.estimates_history:
            return
        if any(
            s.confidence < POLICY_CONFIDENCE_FLOOR for s in self.asm.last_quantum
        ):
            # Reweighting epochs on polluted estimates would starve the
            # wrong application; keep the previous weights.
            self.skipped_reallocations += 1
            self.trace("skip", reason="low-confidence")
            return
        slowdowns = self.asm.estimates_history[-1]
        self.trace("reweight", weights=list(slowdowns))
        self.system.set_epoch_weights(slowdowns)
