"""The look-ahead way-partitioning algorithm from UCP [56].

Given one utility curve per application — ``utility[n]`` is the benefit of
owning ``n`` ways — the algorithm greedily assigns blocks of ways: at each
step it computes, for every application, the maximum *marginal utility per
way* over all feasible extensions of its current allocation, and grants the
winning application that block. Looking ahead over multi-way blocks (rather
than one way at a time) lets it climb past plateaus in non-convex curves.

UCP instantiates utility as hit counts; ASM-Cache instantiates it as
slowdown reduction (Section 7.1); MCFQ as a friendliness-weighted hit
count. All three share this implementation.
"""

from __future__ import annotations

from typing import List, Sequence


def lookahead_partition(
    utilities: Sequence[Sequence[float]],
    total_ways: int,
    min_ways: int = 1,
) -> List[int]:
    """Partition ``total_ways`` among applications.

    ``utilities[i][n]`` is application ``i``'s utility with ``n`` ways and
    must have length ``total_ways + 1``. Every application receives at least
    ``min_ways`` (a zero-way application could never cache anything).
    """
    num_apps = len(utilities)
    if num_apps == 0:
        raise ValueError("need at least one application")
    for curve in utilities:
        if len(curve) != total_ways + 1:
            raise ValueError(
                f"utility curves must have {total_ways + 1} entries"
            )
    if min_ways * num_apps > total_ways:
        raise ValueError(
            f"cannot give {num_apps} applications {min_ways} ways each "
            f"out of {total_ways}"
        )

    allocation = [min_ways] * num_apps
    remaining = total_ways - min_ways * num_apps

    while remaining > 0:
        best_app = -1
        best_rate = -1.0
        best_block = 0
        for app in range(num_apps):
            current = allocation[app]
            base = utilities[app][current]
            for block in range(1, remaining + 1):
                gain = utilities[app][current + block] - base
                rate = gain / block
                if rate > best_rate:
                    best_rate = rate
                    best_app = app
                    best_block = block
        if best_app < 0:  # pragma: no cover - defensive
            break
        allocation[best_app] += best_block
        remaining -= best_block
    return allocation
