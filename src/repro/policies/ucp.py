"""Utility-based Cache Partitioning [56].

UCP monitors each application's hits-versus-ways curve with a sampled
shadow tag directory (UMON-DSS) and repartitions the cache ways each
quantum with the look-ahead algorithm, maximising total hit count. The
paper's criticism (Section 7.1): miss counts are only a proxy for
performance, so UCP can trade a slowdown-critical way away for raw hits.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.auxtag import AuxiliaryTagStore
from repro.harness.system import System
from repro.policies.base import Policy
from repro.policies.partition import lookahead_partition


class UcpPolicy(Policy):
    name = "ucp"

    def __init__(self, sampled_sets: Optional[int] = 32) -> None:
        super().__init__()
        self.sampled_sets = sampled_sets
        self.monitors: List[AuxiliaryTagStore] = []
        self.last_allocation: Optional[List[int]] = None

    def attach(self, system: System) -> None:
        super().attach(system)
        self.monitors = [
            AuxiliaryTagStore(system.config.llc, self.sampled_sets)
            for _ in range(system.config.num_cores)
        ]
        system.hierarchy.access_listeners.append(self._on_access)

    def _on_access(
        self, core: int, line_addr: int, is_write: bool, hit: bool, now: int
    ) -> None:
        self.monitors[core].access(line_addr)

    def on_quantum_end(self) -> None:
        assert self.system is not None
        curves = [monitor.utility_curve() for monitor in self.monitors]
        allocation = lookahead_partition(
            curves, self.system.config.llc.associativity
        )
        self.last_allocation = allocation
        self.system.hierarchy.llc.set_partition(allocation)
        for monitor in self.monitors:
            monitor.reset_stats()
