"""Policy interface: a policy attaches to a system and reconfigures shared
resources (cache partition, epoch probabilities) at each quantum boundary,
after the slowdown models have produced their estimates."""

from __future__ import annotations

from typing import Optional

from repro.harness.system import System


class Policy:
    """Base class for quantum-granularity resource managers."""

    name = "policy"

    def __init__(self) -> None:
        self.system: Optional[System] = None

    def attach(self, system: System) -> None:
        """Register on the system. Policies are attached *after* models so
        their quantum hook runs once fresh estimates are available."""
        self.system = system
        system.quantum_listeners.append(self.on_quantum_end)

    def on_quantum_end(self) -> None:
        raise NotImplementedError

    @property
    def num_cores(self) -> int:
        assert self.system is not None
        return self.system.config.num_cores
