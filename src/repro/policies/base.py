"""Policy interface: a policy attaches to a system and reconfigures shared
resources (cache partition, epoch probabilities) at each quantum boundary,
after the slowdown models have produced their estimates."""

from __future__ import annotations

from typing import Any, Optional

from repro.harness.system import System
from repro.obs.bus import TraceBus
from repro.obs.events import POLICY


class Policy:
    """Base class for quantum-granularity resource managers."""

    name = "policy"

    def __init__(self) -> None:
        self.system: Optional[System] = None
        # Observability bus (repro.obs), inherited from the system at
        # attach(); None keeps every decision site a single predicate.
        self.obs: Optional[TraceBus] = None

    def attach(self, system: System) -> None:
        """Register on the system. Policies are attached *after* models so
        their quantum hook runs once fresh estimates are available."""
        self.system = system
        self.obs = system.obs
        system.quantum_listeners.append(self.on_quantum_end)

    def trace(self, kind: str, **data: Any) -> None:
        """Emit one POLICY trace event (``reallocation``/``reweight``/
        ``skip``) tagged with this policy's name; a no-op when tracing
        is disabled."""
        obs = self.obs
        if obs is not None and obs.mask & POLICY:
            assert self.system is not None
            obs.emit(
                self.system.engine.now, POLICY, kind,
                policy=self.name, **data,
            )

    def on_quantum_end(self) -> None:
        raise NotImplementedError

    @property
    def num_cores(self) -> int:
        assert self.system is not None
        return self.system.config.num_cores
