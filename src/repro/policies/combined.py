"""ASM-Cache-Mem (Section 7.2): coordinated cache + bandwidth partitioning.

Runs ASM-Cache's slowdown-aware way partitioning, then conveys the
slowdowns *projected under the granted allocations* to the memory
controller, which partitions bandwidth (epoch-assignment probabilities)
proportionally to them, as in ASM-Mem.
"""

from __future__ import annotations

from repro.harness.system import System
from repro.models.asm import AsmModel
from repro.policies.asm_cache import AsmCachePolicy
from repro.policies.base import Policy


class AsmCacheMemPolicy(Policy):
    name = "asm-cache-mem"

    def __init__(self, asm: AsmModel) -> None:
        super().__init__()
        self.asm = asm
        self.cache_policy = AsmCachePolicy(asm)

    def attach(self, system: System) -> None:
        if self.asm.system is not system:
            raise ValueError("the AsmModel must be attached to the same system")
        # Register only ourselves; we drive the cache policy manually so the
        # ordering (partition first, then bandwidth weights) is explicit.
        self.system = system
        self.obs = system.obs
        self.cache_policy.system = system
        self.cache_policy.obs = system.obs
        system.quantum_listeners.append(self.on_quantum_end)

    def on_quantum_end(self) -> None:
        assert self.system is not None
        self.cache_policy.on_quantum_end()
        projected = self.cache_policy.projected_slowdowns
        if projected and sum(projected) > 0:
            self.trace("reweight", weights=list(projected))
            self.system.set_epoch_weights(projected)
