"""Resource-management policies built on slowdown estimates (Section 7) and
the prior-work baselines they are compared against."""

from repro.policies.partition import lookahead_partition
from repro.policies.base import Policy
from repro.policies.ucp import UcpPolicy
from repro.policies.asm_cache import AsmCachePolicy
from repro.policies.mcfq import McfqPolicy
from repro.policies.asm_mem import AsmMemPolicy
from repro.policies.qos import AsmQosPolicy, NaiveQosPolicy
from repro.policies.combined import AsmCacheMemPolicy

__all__ = [
    "lookahead_partition",
    "Policy",
    "UcpPolicy",
    "AsmCachePolicy",
    "McfqPolicy",
    "AsmMemPolicy",
    "AsmQosPolicy",
    "NaiveQosPolicy",
    "AsmCacheMemPolicy",
]
