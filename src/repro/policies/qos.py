"""Soft slowdown guarantees (Section 7.3).

:class:`AsmQosPolicy` ("ASM-QoS-X") allocates to the application of
interest the *fewest* cache ways whose estimated slowdown stays within the
bound X, then partitions the remaining ways among the other applications to
minimise their slowdowns (look-ahead on marginal slowdown utility).

:class:`NaiveQosPolicy` is the paper's strawman: it gives the application
of interest the whole cache, meeting any achievable bound but slowing
everyone else down dramatically.
"""

from __future__ import annotations

from typing import List, Optional

from repro.harness.system import System
from repro.models.asm import AsmModel
from repro.models.base import POLICY_CONFIDENCE_FLOOR
from repro.policies.base import Policy
from repro.policies.partition import lookahead_partition


class AsmQosPolicy(Policy):
    name = "asm-qos"

    def __init__(self, asm: AsmModel, target_core: int, slowdown_bound: float) -> None:
        super().__init__()
        if slowdown_bound < 1.0:
            raise ValueError("a slowdown bound below 1.0 is unsatisfiable")
        self.asm = asm
        self.target_core = target_core
        self.slowdown_bound = slowdown_bound
        self.last_allocation: Optional[List[int]] = None
        # Quanta where degraded telemetry suppressed a repartition.
        self.skipped_reallocations = 0

    def attach(self, system: System) -> None:
        if self.asm.system is not system:
            raise ValueError("the AsmModel must be attached to the same system")
        if not 0 <= self.target_core < system.config.num_cores:
            raise ValueError("target core out of range")
        super().attach(system)

    def on_quantum_end(self) -> None:
        assert self.system is not None
        if any(
            s.confidence < POLICY_CONFIDENCE_FLOOR for s in self.asm.last_quantum
        ):
            # A QoS decision on polluted estimates could yank ways from the
            # protected application; keep the previous partition.
            self.skipped_reallocations += 1
            self.trace("skip", reason="low-confidence")
            return
        total_ways = self.system.config.llc.associativity
        others = [c for c in range(self.num_cores) if c != self.target_core]

        # Smallest allocation meeting the bound (all remaining ways must
        # still cover the other applications with >= 1 way each).
        max_target = total_ways - len(others)
        target_ways = max_target
        for n in range(1, max_target + 1):
            if self.asm.slowdown_for_ways(self.target_core, n) <= self.slowdown_bound:
                target_ways = n
                break

        remaining = total_ways - target_ways
        utilities = [
            [-self.asm.slowdown_for_ways(core, n) for n in range(remaining + 1)]
            for core in others
        ]
        other_alloc = lookahead_partition(utilities, remaining)
        allocation = [0] * self.num_cores
        allocation[self.target_core] = target_ways
        for core, ways in zip(others, other_alloc):
            allocation[core] = ways
        self.last_allocation = allocation
        self.trace("reallocation", allocation=list(allocation))
        self.system.hierarchy.llc.set_partition(allocation)


class NaiveQosPolicy(Policy):
    name = "naive-qos"

    def __init__(self, target_core: int) -> None:
        super().__init__()
        self.target_core = target_core

    def attach(self, system: System) -> None:
        super().attach(system)
        # The naive allocation is static; install it immediately.
        self._install()

    def _install(self) -> None:
        assert self.system is not None
        total_ways = self.system.config.llc.associativity
        allocation = [0] * self.num_cores
        allocation[self.target_core] = total_ways
        self.system.hierarchy.llc.set_partition(allocation)

    def on_quantum_end(self) -> None:
        self._install()
