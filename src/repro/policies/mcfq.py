"""MCFQ-style cache partitioning [27].

Kaseridis et al.'s scheme allocates shared-cache capacity considering both
*cache friendliness* (how well an application converts capacity into hits)
and *memory-level parallelism* (an MLP-rich application hides misses, so
its hits are worth less). We reproduce its decision structure: the UCP
utility of each application is weighted by ``1 / mlp``, so cache-friendly,
MLP-poor applications win capacity.

The paper's criticism (Section 7.1.2): MCFQ still ignores memory
*bandwidth* interference, so under memory-intensive workloads its
allocations can degrade fairness — exactly the behaviour to look for in
the Figure 9 reproduction.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.auxtag import AuxiliaryTagStore
from repro.harness.system import System
from repro.models.perrequest import MlpEstimator
from repro.policies.base import Policy
from repro.policies.partition import lookahead_partition


class McfqPolicy(Policy):
    name = "mcfq"

    def __init__(self, sampled_sets: Optional[int] = 32) -> None:
        super().__init__()
        self.sampled_sets = sampled_sets
        self.monitors: List[AuxiliaryTagStore] = []
        self._mlp: List[MlpEstimator] = []
        self.last_allocation: Optional[List[int]] = None

    def attach(self, system: System) -> None:
        super().attach(system)
        n = system.config.num_cores
        self.monitors = [
            AuxiliaryTagStore(system.config.llc, self.sampled_sets)
            for _ in range(n)
        ]
        self._mlp = [MlpEstimator() for _ in range(n)]
        system.hierarchy.access_listeners.append(self._on_access)
        system.hierarchy.service_listeners.append(self._on_service)

    def _on_access(
        self, core: int, line_addr: int, is_write: bool, hit: bool, now: int
    ) -> None:
        self.monitors[core].access(line_addr)

    def _on_service(self, core: int, is_hit: bool, is_start: bool, now: int) -> None:
        if is_hit:
            return
        if is_start:
            self._mlp[core].start(now)
        else:
            self._mlp[core].end(now)

    def on_quantum_end(self) -> None:
        assert self.system is not None
        now = self.system.engine.now
        curves = []
        for core in range(self.num_cores):
            weight = 1.0 / self._mlp[core].parallelism(now)
            curves.append(
                [hits * weight for hits in self.monitors[core].utility_curve()]
            )
        allocation = lookahead_partition(
            curves, self.system.config.llc.associativity
        )
        self.last_allocation = allocation
        self.system.hierarchy.llc.set_partition(allocation)
        for core in range(self.num_cores):
            self.monitors[core].reset_stats()
            self._mlp[core].reset(now)
