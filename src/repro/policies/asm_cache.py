"""ASM-Cache (Section 7.1): slowdown-aware cache way partitioning.

For every application and every possible way allocation ``n``, the
slowdown is estimated from ASM's aggregate quantum statistics:

::

    slowdown_n = CAR_alone / CAR_n
    CAR_n = (quantum-hits + quantum-misses) /
            (Q - (quantum-hits_n - quantum-hits) *
                 (quantum-miss-time - quantum-hit-time))

``quantum-hits_n`` comes straight from the auxiliary tag store's way-hit
histogram — the reason this extension is trivial for ASM and non-trivial
for per-request models (they would need per-request hit/miss predictions
for every hypothetical allocation).

Ways are then assigned with the look-ahead algorithm on *marginal slowdown
utility*: the decrease in estimated slowdown per extra way.

When the quantum's telemetry is degraded (any core's estimate confidence
below :data:`~repro.models.base.POLICY_CONFIDENCE_FLOOR`), repartitioning
on the polluted statistics would thrash the cache; the policy keeps the
previous allocation and counts the skip instead.
"""

from __future__ import annotations

from typing import List, Optional

from repro.harness.system import System
from repro.models.asm import AsmModel
from repro.models.base import POLICY_CONFIDENCE_FLOOR
from repro.policies.base import Policy
from repro.policies.partition import lookahead_partition


class AsmCachePolicy(Policy):
    name = "asm-cache"

    def __init__(self, asm: AsmModel) -> None:
        super().__init__()
        self.asm = asm
        self.last_allocation: Optional[List[int]] = None
        # Estimated slowdown of each core under its granted allocation,
        # consumed by ASM-Cache-Mem coordination (Section 7.2).
        self.projected_slowdowns: List[float] = []
        # Quanta where degraded telemetry suppressed a repartition.
        self.skipped_reallocations = 0

    def attach(self, system: System) -> None:
        if self.asm.system is not system:
            raise ValueError("the AsmModel must be attached to the same system")
        super().attach(system)

    def slowdown_curve(self, core: int) -> List[float]:
        """Estimated slowdown for every way allocation 0..associativity."""
        assert self.system is not None
        ways = self.system.config.llc.associativity
        return [self.asm.slowdown_for_ways(core, n) for n in range(ways + 1)]

    def on_quantum_end(self) -> None:
        assert self.system is not None
        if any(
            s.confidence < POLICY_CONFIDENCE_FLOOR for s in self.asm.last_quantum
        ):
            self.skipped_reallocations += 1
            self.trace("skip", reason="low-confidence")
            return
        total_ways = self.system.config.llc.associativity
        curves = [self.slowdown_curve(core) for core in range(self.num_cores)]
        # Marginal slowdown utility == marginal utility of -slowdown.
        utilities = [[-s for s in curve] for curve in curves]
        allocation = lookahead_partition(utilities, total_ways)
        self.last_allocation = allocation
        self.projected_slowdowns = [
            curves[core][allocation[core]] for core in range(self.num_cores)
        ]
        self.trace("reallocation", allocation=list(allocation))
        self.system.hierarchy.llc.set_partition(allocation)
