"""Platform wiring: cores + shared LLC + memory controller + epoch driver.

:class:`MemoryHierarchy` glues the functional shared cache to the timing
model (MSHR coalescing, writebacks, prefetch issue) and exposes the two
event streams every slowdown model consumes:

* ``access_listeners(core, line_addr, is_write, hit, now)`` — one call per
  demand access at access time (secondary MSHR misses report ``hit=False``);
* ``service_listeners(core, is_hit, is_start, now)`` — service-interval
  edges: hits span the LLC latency, misses span access-to-fill. Models use
  these to maintain "cycles with at least one outstanding hit/miss"
  counters (Table 1's epoch-hit-time / epoch-miss-time).

:class:`System` adds the epoch driver (Section 4.2): every E cycles one
application is chosen — by default uniformly at random, or according to
``epoch_weights`` installed by a bandwidth-partitioning policy (ASM-Mem) —
and its requests get highest priority at the memory controller.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.vector.batch import BatchPlane

from repro.config import SystemConfig
from repro.cpu.core import Core
from repro.cpu.prefetcher import StridePrefetcher
from repro.cpu.trace import TraceIterator
from repro.engine import Engine
from repro.cache.shared_cache import SharedCache
from repro.mem.controller import MemoryController
from repro.mem.request import MemRequest
from repro.mem.schedulers import Scheduler
from repro.obs.bus import TraceBus
from repro.obs.events import CACHE, EPOCH
from repro.telemetry.spec import TelemetrySpec

AccessListener = Callable[[int, int, bool, bool, int], None]
ServiceListener = Callable[[int, bool, bool, int], None]


class _MshrEntry:
    __slots__ = ("waiters", "primary_core")

    def __init__(self, primary_core: Optional[int] = None) -> None:
        # Core whose demand access created the entry; None for prefetches.
        # Only the primary access is visible to slowdown models.
        self.primary_core = primary_core
        self.waiters: List[Callable[[int], None]] = []


class MemoryHierarchy:
    """Shared LLC + MSHRs + writeback path + optional prefetchers."""

    def __init__(
        self,
        engine: Engine,
        config: SystemConfig,
        controller: MemoryController,
    ) -> None:
        self.engine = engine
        self.config = config
        self.controller = controller
        self.llc = SharedCache(config.llc, config.num_cores)
        self._llc_latency = config.llc.latency
        self.mshr: Dict[int, _MshrEntry] = {}
        self.access_listeners: List[AccessListener] = []
        self.service_listeners: List[ServiceListener] = []
        self.prefetchers: List[Optional[StridePrefetcher]] = [
            StridePrefetcher(config.core.prefetch_degree, config.core.prefetch_distance)
            if config.core.prefetcher_enabled
            else None
            for _ in range(config.num_cores)
        ]
        self.demand_hits = [0] * config.num_cores
        self.demand_misses = [0] * config.num_cores
        self.secondary_misses = [0] * config.num_cores
        # Per-access trace bus (repro.obs). System.__init__ sets this only
        # when the bus has the CACHE category enabled, so the hot path
        # pays a single attribute-load + None check per access.
        self.obs: Optional[TraceBus] = None

    def demand_accesses(self, core: int) -> int:
        """Primary demand accesses of ``core``: hits + misses by
        construction, so the Table 1 conservation law cannot drift."""
        return self.demand_hits[core] + self.demand_misses[core]

    # ------------------------------------------------------------------
    def access(
        self,
        core: int,
        line_addr: int,
        is_write: bool,
        on_complete: Optional[Callable[[int], None]],
    ) -> Optional[int]:
        """Demand access from ``core``; returns the completion time when it
        is known immediately (hit), else ``None`` (``on_complete`` fires)."""
        now = self.engine.now
        latency = self._llc_latency

        entry = self.mshr.get(line_addr)
        if entry is not None:
            # Line allocated but fill still in flight: MSHR secondary miss.
            # Timing-wise the access waits for the fill; statistically it is
            # invisible to the slowdown models (an alone run would merge it
            # into the same MSHR entry, so it carries no interference
            # information — exposing it would create phantom contention
            # misses: the ATS calls it a hit while the cache calls it a
            # miss even under zero interference).
            self.llc.access(core, line_addr, is_write)
            self.secondary_misses[core] += 1
            if on_complete is not None and not is_write:
                entry.waiters.append(on_complete)
            return None

        result = self.llc.access(core, line_addr, is_write)
        if result.hit:
            self.demand_hits[core] += 1
            if self.obs is not None:
                self.obs.emit(now, CACHE, "access", core=core, hit=True)
            completion = now + latency
            if self.access_listeners:
                self._notify_access(core, line_addr, is_write, True, now)
            if self.service_listeners:
                self._notify_service(core, True, True, now)
                self.engine.schedule_at(
                    completion,
                    lambda c=core: self._notify_service(c, True, False, completion),
                )
            self._maybe_prefetch(core, line_addr)
            return completion

        # Primary miss: allocate happened functionally; now the timing path.
        self.demand_misses[core] += 1
        if self.obs is not None:
            self.obs.emit(now, CACHE, "access", core=core, hit=False)
        if result.writeback_line_addr is not None:
            self._enqueue_writeback(result.victim_owner, result.writeback_line_addr)
        entry = _MshrEntry(primary_core=core)
        if on_complete is not None and not is_write:
            entry.waiters.append(on_complete)
        self.mshr[line_addr] = entry
        self._notify_access(core, line_addr, is_write, False, now)
        self._notify_service(core, False, True, now)
        request = MemRequest(
            core,
            line_addr,
            is_write=False,
            arrival_time=now + latency,
            callback=self._fill,
        )
        # The miss is only known after the tag lookup.
        self.engine.schedule(latency, lambda r=request: self.controller.enqueue(r))
        self._maybe_prefetch(core, line_addr)
        return None

    # ------------------------------------------------------------------
    def _fill(self, request: MemRequest) -> None:
        entry = self.mshr.pop(request.line_addr, None)
        if entry is None:  # pragma: no cover - defensive
            return
        time = request.completion_time
        assert time is not None
        if entry.primary_core is not None:
            self._notify_service(entry.primary_core, False, False, time)
        for waiter in entry.waiters:
            waiter(time)

    def _enqueue_writeback(self, owner: int, line_addr: int) -> None:
        request = MemRequest(
            owner, line_addr, is_write=True, arrival_time=self.engine.now
        )
        self.controller.enqueue(request)

    def _maybe_prefetch(self, core: int, line_addr: int) -> None:
        prefetcher = self.prefetchers[core]
        if prefetcher is None:
            return
        for target in prefetcher.observe(line_addr):
            if target in self.mshr or self.llc.contains(target):
                continue
            self.llc.allocate(core, target)
            self.mshr[target] = _MshrEntry()  # no demanders: pure prefetch
            request = MemRequest(
                core,
                target,
                is_write=False,
                is_prefetch=True,
                arrival_time=self.engine.now,
                callback=self._prefetch_fill,
            )
            self.controller.enqueue(request)

    def _prefetch_fill(self, request: MemRequest) -> None:
        entry = self.mshr.pop(request.line_addr, None)
        if entry is not None:
            # Demand accesses that arrived while the prefetch was in flight
            # wait for this fill (they were secondary misses).
            time = request.completion_time
            assert time is not None
            for waiter in entry.waiters:
                waiter(time)

    def _notify_access(
        self, core: int, line_addr: int, is_write: bool, hit: bool, now: int
    ) -> None:
        for listener in self.access_listeners:
            listener(core, line_addr, is_write, hit, now)

    def _notify_service(self, core: int, is_hit: bool, is_start: bool, now: int) -> None:
        for listener in self.service_listeners:
            listener(core, is_hit, is_start, now)


class System:
    """A complete simulated platform for one multiprogrammed run."""

    def __init__(
        self,
        config: SystemConfig,
        traces: Sequence[TraceIterator],
        scheduler: Optional[Scheduler] = None,
        seed: int = 0,
        enable_epochs: bool = True,
        epoch_assignment: str = "random",
        telemetry: Optional[TelemetrySpec] = None,
        obs: Optional[TraceBus] = None,
    ) -> None:
        """``epoch_assignment`` is "random" (the paper's probabilistic
        policy, required for ASM-Mem's weighted assignment) or
        "round_robin" (the alternative Section 4.2 mentions).
        ``telemetry`` attaches a deterministic counter-fault injector
        (see :mod:`repro.telemetry`) that every model's counter bank
        picks up when it attaches; ``None`` means perfect telemetry.
        ``obs`` is an optional :class:`~repro.obs.bus.TraceBus`; models
        and policies pick it up when they attach, the epoch driver emits
        ownership events through it, and — only when its CACHE category
        is enabled — the memory hierarchy traces individual accesses."""
        if epoch_assignment not in ("random", "round_robin"):
            raise ValueError("epoch_assignment must be 'random' or 'round_robin'")
        config.validate()
        if len(traces) != config.num_cores:
            raise ValueError(
                f"need {config.num_cores} traces, got {len(traces)}"
            )
        self.config = config
        self.telemetry = telemetry
        self.obs = obs
        # Execution backend (DESIGN.md §9): the columnar engine keeps the
        # full scalar Engine contract, and the batch plane lets models
        # consume staged request columns instead of per-access callbacks.
        self.batch_plane: Optional["BatchPlane"] = None
        if config.engine == "columnar":
            from repro.vector.batch import BatchPlane as _BatchPlane
            from repro.vector.engine import ColumnarEngine

            self.engine: Engine = ColumnarEngine()
            self.batch_plane = _BatchPlane(config.num_cores)
        elif config.engine == "analytic":
            # The analytic tier has no event loop at all; silently falling
            # through to the scalar engine would simulate a cell the caller
            # asked to estimate in closed form.
            raise ValueError(
                "engine 'analytic' cells never construct a System; run them "
                "through repro.analytic (Campaign.run_mix / run_cells "
                "dispatch on config.engine)"
            )
        else:
            self.engine = Engine()
        self.controller = MemoryController(
            self.engine, config.dram, config.num_cores, scheduler
        )
        self.hierarchy = MemoryHierarchy(self.engine, config, self.controller)
        if obs is not None and obs.mask & CACHE:
            self.hierarchy.obs = obs
        self.cores = [
            Core(self.engine, i, config.core, trace, self.hierarchy.access)
            for i, trace in enumerate(traces)
        ]
        self.epoch_listeners: List[Callable[[int], None]] = []
        # Fired once the epoch's warm-up window (if any) has elapsed: the
        # owner's alone-like behaviour is now measurable.
        self.measure_listeners: List[Callable[[int], None]] = []
        self.quantum_listeners: List[Callable[[], None]] = []
        if self.batch_plane is not None:
            plane = self.batch_plane
            plane.bind(self.hierarchy)
            # Flush hooks come FIRST in every listener list (models attach
            # later and append): a staged span is always handed to batch
            # consumers before any model callback mutates the state that
            # classified it (ASM's ``_measuring``), which is what makes
            # batched counter updates bit-identical to per-access ones.
            self.epoch_listeners.append(plane.flush_owner)
            self.measure_listeners.append(plane.flush_owner)
            self.quantum_listeners.append(plane.flush)
        self.epoch_weights: Optional[List[float]] = None
        self.current_epoch_owner = -1
        self._epoch_rng = random.Random(seed ^ 0x5EED)
        self._epochs_enabled = enable_epochs and config.num_cores > 1
        self._epoch_assignment = epoch_assignment
        self._next_round_robin = 0
        self._started = False

    @property
    def epochs_enabled(self) -> bool:
        """Whether the epoch driver runs (multi-core with epochs on).

        Models consult this to distinguish "no epoch signal although there
        should be one" (a degradation worth flagging) from single-core /
        epochs-off runs where the absence is structural."""
        return self._epochs_enabled

    # ------------------------------------------------------------------
    def set_epoch_weights(self, weights: Optional[Sequence[float]]) -> None:
        """Install epoch-assignment probabilities (ASM-Mem). ``None`` means
        uniform. Weights are normalised at draw time."""
        if weights is not None:
            if len(weights) != self.config.num_cores:
                raise ValueError("one weight per core required")
            if min(weights) < 0 or sum(weights) <= 0:
                raise ValueError("weights must be non-negative, sum positive")
            self.epoch_weights = list(weights)
        else:
            self.epoch_weights = None

    def _start_epoch(self) -> None:
        cores = range(self.config.num_cores)
        if self._epoch_assignment == "round_robin":
            owner = self._next_round_robin
            self._next_round_robin = (owner + 1) % self.config.num_cores
        elif self.epoch_weights is None:
            owner = self._epoch_rng.randrange(self.config.num_cores)
        else:
            owner = self._epoch_rng.choices(cores, weights=self.epoch_weights)[0]
        self.current_epoch_owner = owner
        self.controller.set_priority_core(owner)
        obs = self.obs
        if obs is not None and obs.mask & EPOCH:
            obs.emit(self.engine.now, EPOCH, "epoch", owner=owner)
        for listener in self.epoch_listeners:
            listener(owner)
        warmup = self.config.epoch_warmup_cycles
        if warmup:
            self.controller.set_accounting_core(-1)
            self.engine.schedule(warmup, lambda o=owner: self._begin_measurement(o))
        else:
            self._begin_measurement(owner)
        self.engine.schedule(self.config.epoch_cycles, self._start_epoch)

    def _begin_measurement(self, owner: int) -> None:
        if owner != self.current_epoch_owner:  # pragma: no cover - defensive
            return
        self.controller.set_accounting_core(owner)
        obs = self.obs
        if obs is not None and obs.mask & EPOCH:
            obs.emit(self.engine.now, EPOCH, "measure", owner=owner)
        for listener in self.measure_listeners:
            listener(owner)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for core in self.cores:
            core.start()
        if self._epochs_enabled:
            self._start_epoch()

    def run_until(self, time: int, wall_deadline: Optional[float] = None) -> None:
        self.start()
        self.engine.run(until=time, wall_deadline=wall_deadline)

    def run_quantum(self, wall_deadline: Optional[float] = None) -> None:
        """Advance exactly one quantum and fire quantum listeners.

        ``wall_deadline`` (absolute ``time.monotonic`` seconds) bounds the
        real time the quantum may take; see :meth:`repro.engine.Engine.run`.
        """
        self.run_until(
            self.engine.now + self.config.quantum_cycles,
            wall_deadline=wall_deadline,
        )
        for listener in self.quantum_listeners:
            listener()

    def committed_instructions(self) -> List[int]:
        return [core.committed_instructions(self.engine.now) for core in self.cores]
