"""Run orchestration: shared runs, alone runs and per-quantum ground truth.

The methodology follows Section 5 of the paper: the *actual* slowdown of an
application during a quantum is ``IPC_alone / IPC_shared``, where
``IPC_alone`` is measured over *the same amount of work* the application
completed in the shared quantum. We therefore simulate every application
alone on the identical platform, record a cycle/instruction profile, and
invert it over each shared quantum's instruction span:

::

    actual_slowdown(q) = Q / alone_cycles(inst_begin(q) .. inst_end(q))

Alone runs are memoised in :class:`AloneRunCache` because one alone profile
serves every model, policy and scheduler evaluated on the same workload.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import SystemConfig
from repro.harness.system import System
from repro.harness import metrics
from repro.mem.schedulers import Scheduler
from repro.models.base import SlowdownModel
from repro.obs.bus import TraceBus
from repro.obs.events import FAULT, QUANTUM
from repro.obs.metrics import MetricsRegistry
from repro.resilience.watchdog import QuantumWatchdog
from repro.telemetry.spec import TelemetrySpec
from repro.workloads.mixes import WorkloadMix

ModelFactory = Callable[[], SlowdownModel]
SchedulerFactory = Callable[[], Scheduler]
# A policy factory receives the system's attached models by name so policies
# can share a model instance (ASM-Cache and ASM-Mem both consume AsmModel).
PolicyFactory = Callable[[Dict[str, SlowdownModel]], "object"]


@dataclass
class AloneProfile:
    """Committed-instruction checkpoints of an alone run."""

    checkpoint_interval: int
    instructions: List[int]  # instructions committed at (k+1)*interval

    def time_at(self, instruction: float) -> float:
        """Cycles the alone run needed to commit ``instruction`` many
        instructions (linear interpolation; linear extrapolation past the
        profiled range)."""
        if instruction <= 0:
            return 0.0
        insts = self.instructions
        interval = self.checkpoint_interval
        if not insts:
            # Nothing was profiled; assume one instruction per cycle rather
            # than crashing (the caller converts the resulting span to NaN
            # ground truth if it is meaningless).
            return float(instruction)
        index = bisect.bisect_left(insts, instruction)
        if index >= len(insts):
            # Extrapolate with the slope of the last profiled interval. A
            # flat tail (the alone run stalled or its trace ended) would
            # make that slope zero; clamping it to 1 instruction/interval
            # used to charge ``interval`` cycles per extrapolated
            # instruction — wildly distorting alone cycles — so fall back
            # to the whole-profile average rate instead.
            slope = insts[-1] - insts[-2] if len(insts) >= 2 else insts[-1]
            if slope <= 0:
                slope = insts[-1] / len(insts)
            if slope <= 0:
                # The profiled run never committed anything: instructions
                # beyond the profile are unreachable in alone time.
                return float("inf")
            extra = (instruction - insts[-1]) / slope
            return (len(insts) + extra) * interval
        prev_inst = insts[index - 1] if index > 0 else 0
        prev_time = index * interval
        span = insts[index] - prev_inst
        if span <= 0:
            return prev_time + interval
        frac = (instruction - prev_inst) / span
        return prev_time + frac * interval

    def cycles_for_span(self, inst_begin: float, inst_end: float) -> float:
        return self.time_at(inst_end) - self.time_at(inst_begin)


def run_alone(
    trace,
    config: SystemConfig,
    cycles: int,
    checkpoint_interval: int = 2000,
) -> AloneProfile:
    """Simulate one application alone on the platform (full cache, no
    co-runners, no epoch prioritisation — there is nobody to prioritise
    against) and record its cycle/instruction profile."""
    alone_config = dataclasses.replace(config, num_cores=1)
    system = System(alone_config, [trace], enable_epochs=False)
    instructions: List[int] = []
    time = 0
    while time < cycles:
        time = min(time + checkpoint_interval, cycles)
        system.run_until(time)
        instructions.append(system.cores[0].committed_instructions(time))
    return AloneProfile(checkpoint_interval, instructions)


class AloneRunCache:
    """Memoises alone profiles keyed by (trace identity, config, length).

    Tracks how it was used: ``hits`` (served from memory), ``misses``
    (computed via :func:`run_alone`) and ``store_hits`` (loaded from a
    persistent backing store, where one exists). :meth:`summary` renders a
    one-line account for campaign reports.
    """

    def __init__(self) -> None:
        self._profiles: Dict[tuple, AloneProfile] = {}
        self.hits = 0
        self.misses = 0
        self.store_hits = 0

    @staticmethod
    def _config_key(config: SystemConfig) -> tuple:
        return (
            config.core,
            config.l1,
            config.llc,
            config.dram,
        )

    @classmethod
    def _key(
        cls,
        mix: WorkloadMix,
        core: int,
        config: SystemConfig,
        cycles: int,
    ) -> tuple:
        return (mix.specs[core], mix.seed, core, cls._config_key(config), cycles)

    def get(
        self,
        mix: WorkloadMix,
        core: int,
        config: SystemConfig,
        cycles: int,
    ) -> AloneProfile:
        key = self._key(mix, core, config, cycles)
        profile = self._profiles.get(key)
        if profile is None:
            self.misses += 1
            profile = run_alone(mix.trace_for_core(core), config, cycles)
            self._profiles[key] = profile
        else:
            self.hits += 1
        return profile

    def peek(
        self,
        mix: WorkloadMix,
        core: int,
        config: SystemConfig,
        cycles: int,
    ) -> Optional[AloneProfile]:
        """The cached profile, or ``None`` — never computes one."""
        return self._profiles.get(self._key(mix, core, config, cycles))

    def seed_profile(
        self,
        mix: WorkloadMix,
        core: int,
        config: SystemConfig,
        cycles: int,
        profile: AloneProfile,
    ) -> None:
        """Install a profile computed elsewhere (e.g. a worker process)."""
        self._profiles[self._key(mix, core, config, cycles)] = profile

    def absorb(self, entries) -> None:
        """Pre-seed with (key, profile) pairs exported by another cache."""
        for key, profile in entries:
            self._profiles[key] = profile

    @property
    def lookups(self) -> int:
        """Total profile lookups: hits + misses by construction."""
        return self.hits + self.misses

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "store_hits": self.store_hits,
            "entries": len(self._profiles),
        }

    def summary(self) -> str:
        line = (
            f"alone-run cache: {self.hits} hits, {self.misses} computed"
        )
        if self.store_hits:
            line += f", {self.store_hits} from store"
        return line

    def __len__(self) -> int:
        return len(self._profiles)


@dataclass
class RunProfile:
    """Lightweight wall-clock profile of one :func:`run_workload` call.

    Collected only when a ``profile_sink`` is passed; the run itself is
    not instrumented otherwise. ``events_per_second`` covers the shared
    run's event loop (alone runs execute in their own engines and are
    accounted as ``alone_time_s``)."""

    wall_time_s: float
    alone_time_s: float  # computing/fetching alone profiles
    quantum_times_s: List[float]  # shared-run wall seconds per quantum
    events_executed: int  # shared-run events across all quanta
    events_per_second: float

    def share(self, component: str) -> float:
        """Fraction of total wall time spent in ``alone`` or ``shared``."""
        if self.wall_time_s <= 0:
            return float("nan")
        if component == "alone":
            return self.alone_time_s / self.wall_time_s
        if component == "shared":
            return sum(self.quantum_times_s) / self.wall_time_s
        raise ValueError(f"unknown component {component!r}")


@dataclass
class QuantumRecord:
    """Ground truth and model estimates for one quantum.

    ``confidence`` / ``degraded`` mirror ``estimates``: per model, the
    per-core telemetry confidence (1.0 while healthy) and degradation
    reason (``None`` while healthy) the model's estimate guard reported
    for this quantum."""

    index: int
    instructions: List[int]  # committed per core at quantum end
    shared_ipc: List[float]
    actual_slowdowns: List[float]  # NaN when the core made no progress
    estimates: Dict[str, List[float]] = field(default_factory=dict)
    confidence: Dict[str, List[float]] = field(default_factory=dict)
    degraded: Dict[str, List[Optional[str]]] = field(default_factory=dict)


@dataclass
class RunResult:
    """Everything measured in one shared run of a workload."""

    mix: WorkloadMix
    config: SystemConfig
    records: List[QuantumRecord]

    def errors_for(self, model_name: str) -> List[List[float]]:
        """Per-core lists of per-quantum estimation errors (percent)."""
        n = self.mix.num_cores
        errors: List[List[float]] = [[] for _ in range(n)]
        for record in self.records:
            estimates = record.estimates.get(model_name)
            if estimates is None:
                continue
            for core in range(n):
                actual = record.actual_slowdowns[core]
                if math.isnan(actual) or actual <= 0:
                    continue
                errors[core].append(
                    metrics.estimation_error_pct(estimates[core], actual)
                )
        return errors

    def mean_error(self, model_name: str) -> float:
        all_errors = [e for core in self.errors_for(model_name) for e in core]
        return metrics.mean(all_errors) if all_errors else float("nan")

    def mean_actual_slowdowns(self) -> List[float]:
        """Per-core mean actual slowdown across quanta (NaN-quanta skipped)."""
        n = self.mix.num_cores
        result = []
        for core in range(n):
            values = [
                r.actual_slowdowns[core]
                for r in self.records
                if not math.isnan(r.actual_slowdowns[core])
            ]
            result.append(metrics.mean(values) if values else float("nan"))
        return result

    def max_slowdown(self) -> float:
        return metrics.max_slowdown(self.mean_actual_slowdowns())

    def harmonic_speedup(self) -> float:
        return metrics.harmonic_speedup(self.mean_actual_slowdowns())


def _emit_fault(
    obs: Optional[TraceBus],
    system: System,
    quantum: int,
    kind: str,
    exc: BaseException,
) -> None:
    """Record a run-aborting exception on the trace bus before re-raising.

    The FAULT event is the trace's last word on an aborted run: the
    inspector renders it even when no quantum boundary follows."""
    if obs is not None and obs.mask & FAULT:
        obs.emit(
            system.engine.now,
            FAULT,
            kind,
            quantum=quantum,
            error_type=type(exc).__name__,
            message=str(exc),
        )


def _snap_metrics(
    run_metrics: MetricsRegistry,
    system: System,
    models: Dict[str, SlowdownModel],
    prev: Dict[str, List[int]],
    shared_ipc: List[float],
) -> None:
    """Update the registry with this quantum's deltas and snapshot it.

    The per-core counters preserve the Table 1 conservation law by
    construction (``demand_accesses`` is incremented by ``hits + misses``),
    which ``tests/test_obs.py`` asserts on every snapshot.
    """
    hierarchy = system.hierarchy
    controller = system.controller
    run_metrics.counter("engine.events").inc(system.engine.events_executed)
    delay_hist = run_metrics.histogram("queueing_delay")
    for core in range(system.config.num_cores):
        hits_delta = hierarchy.demand_hits[core] - prev["hits"][core]
        misses_delta = hierarchy.demand_misses[core] - prev["misses"][core]
        queueing_delta = controller.queueing_cycles[core] - prev["queueing"][core]
        run_metrics.counter(f"core{core}.demand_hits").inc(hits_delta)
        run_metrics.counter(f"core{core}.demand_misses").inc(misses_delta)
        run_metrics.counter(f"core{core}.demand_accesses").inc(
            hits_delta + misses_delta
        )
        run_metrics.gauge(f"core{core}.shared_ipc").set(shared_ipc[core])
        if misses_delta > 0:
            delay_hist.observe(queueing_delta / misses_delta)
        prev["hits"][core] = hierarchy.demand_hits[core]
        prev["misses"][core] = hierarchy.demand_misses[core]
        prev["queueing"][core] = controller.queueing_cycles[core]
    for name, model in models.items():
        stats = model.trace_stats()
        if not stats:
            continue
        for core, stat in enumerate(stats):
            if "car_alone" in stat:
                run_metrics.gauge(f"{name}.core{core}.car_alone").set(
                    stat["car_alone"]
                )
            if "car_shared" in stat:
                run_metrics.gauge(f"{name}.core{core}.car_shared").set(
                    stat["car_shared"]
                )
    run_metrics.snap(system.engine.now)


def run_workload(
    mix: WorkloadMix,
    config: SystemConfig,
    model_factories: Optional[Dict[str, ModelFactory]] = None,
    policy_factories: Optional[Sequence[PolicyFactory]] = None,
    scheduler_factory: Optional[SchedulerFactory] = None,
    quanta: int = 1,
    alone_cache: Optional[AloneRunCache] = None,
    enable_epochs: bool = True,
    epoch_assignment: str = "random",
    check_invariants: bool = False,
    wall_clock_budget_s: Optional[float] = None,
    system_hooks: Sequence[Callable[[System], None]] = (),
    profile_sink: Optional[Callable[[RunProfile], None]] = None,
    telemetry: Optional[TelemetrySpec] = None,
    obs: Optional[TraceBus] = None,
    run_metrics: Optional[MetricsRegistry] = None,
) -> RunResult:
    """Run ``mix`` for ``quanta`` quanta with the given models/policies and
    compute per-quantum ground-truth slowdowns.

    ``telemetry`` attaches a deterministic counter-fault injector to every
    model's counter bank (see :mod:`repro.telemetry`); ``None`` means
    perfect telemetry and is bit-identical to the pre-telemetry runner.
    ``check_invariants`` attaches a
    :class:`repro.resilience.invariants.InvariantChecker` that validates
    platform conservation laws at every quantum boundary.
    ``wall_clock_budget_s`` bounds the real time each quantum may take;
    independently, a stall watchdog always turns a dead quantum (drained
    event queue, stopped engine, zero progress) into a diagnosable error
    instead of letting :meth:`Engine.run` silently clamp time.
    ``system_hooks`` are called with the constructed :class:`System` before
    the run starts (fault injectors, extra instrumentation).
    ``profile_sink`` opts into lightweight wall-clock profiling: after the
    run it receives a :class:`RunProfile` with events/sec and the time
    split between alone-profile work and the shared quanta.
    ``obs`` is an optional :class:`~repro.obs.bus.TraceBus` threaded into
    the system, models and policies: the runner itself emits one QUANTUM
    event per boundary (ground truth + IPC) and FAULT events when a
    watchdog/deadline abort crosses it. ``run_metrics`` is an optional
    :class:`~repro.obs.metrics.MetricsRegistry` snapshotted at every
    quantum boundary (per-core demand hits/misses/accesses, shared IPC,
    queueing-delay histogram, per-model CAR gauges). Both are passive:
    a run with them attached is bit-identical to one without.
    """
    profile_start = _time.perf_counter() if profile_sink is not None else 0.0
    config = dataclasses.replace(config, num_cores=mix.num_cores)
    config.validate()
    scheduler = scheduler_factory() if scheduler_factory else None
    system = System(config, mix.traces(), scheduler=scheduler, seed=mix.seed,
                    enable_epochs=enable_epochs,
                    epoch_assignment=epoch_assignment,
                    telemetry=telemetry, obs=obs)

    models: Dict[str, SlowdownModel] = {}
    for name, factory in (model_factories or {}).items():
        model = factory()
        model.attach(system)
        models[name] = model
    policies = []
    for factory in policy_factories or ():
        policy = factory(models)
        policy.attach(system)
        policies.append(policy)
    for hook in system_hooks:
        hook(system)

    checker = None
    if check_invariants:
        from repro.resilience.invariants import InvariantChecker

        checker = InvariantChecker(system, models=list(models.values()))
        checker.attach()
    watchdog = QuantumWatchdog(wall_clock_budget_s)

    total_cycles = quanta * config.quantum_cycles
    # Explicit None check: an empty AloneRunCache is falsy (len == 0).
    cache = alone_cache if alone_cache is not None else AloneRunCache()
    alone_start = _time.perf_counter() if profile_sink is not None else 0.0
    profiles = [
        cache.get(mix, core, config, total_cycles + config.quantum_cycles)
        for core in range(mix.num_cores)
    ]
    alone_time = (
        _time.perf_counter() - alone_start if profile_sink is not None else 0.0
    )

    quantum_times: List[float] = []
    shared_events = 0
    records: List[QuantumRecord] = []
    prev_instructions = [0] * mix.num_cores
    prev_hier: Optional[Dict[str, List[int]]] = None
    if run_metrics is not None:
        prev_hier = {
            "hits": [0] * mix.num_cores,
            "misses": [0] * mix.num_cores,
            "queueing": [0] * mix.num_cores,
        }
    for q in range(quanta):
        quantum_start = (
            _time.perf_counter() if profile_sink is not None else 0.0
        )
        try:
            system.run_quantum(wall_deadline=watchdog.next_deadline())
        except Exception as exc:
            _emit_fault(obs, system, q, "deadline-exceeded", exc)
            raise
        if profile_sink is not None:
            quantum_times.append(_time.perf_counter() - quantum_start)
            shared_events += system.engine.events_executed
        instructions = system.committed_instructions()
        try:
            watchdog.check_quantum(system, prev_instructions, instructions, q)
        except Exception as exc:
            _emit_fault(obs, system, q, "watchdog-stall", exc)
            raise
        actual: List[float] = []
        shared_ipc: List[float] = []
        for core in range(mix.num_cores):
            done = instructions[core] - prev_instructions[core]
            shared_ipc.append(done / config.quantum_cycles)
            if done <= 0:
                actual.append(float("nan"))
                continue
            alone_cycles = profiles[core].cycles_for_span(
                prev_instructions[core], instructions[core]
            )
            if alone_cycles <= 0 or not math.isfinite(alone_cycles):
                actual.append(float("nan"))
            else:
                actual.append(config.quantum_cycles / alone_cycles)
        if checker is not None:
            checker.check_actual_slowdowns(actual, q)
        record = QuantumRecord(
            index=q,
            instructions=list(instructions),
            shared_ipc=shared_ipc,
            actual_slowdowns=actual,
        )
        for name, model in models.items():
            record.estimates[name] = list(model.estimates_history[q])
            if q < len(model.confidence_history):
                record.confidence[name] = list(model.confidence_history[q])
                record.degraded[name] = list(model.degraded_history[q])
        if obs is not None and obs.mask & QUANTUM:
            obs.emit(
                system.engine.now,
                QUANTUM,
                "quantum",
                index=q,
                instructions=list(instructions),
                shared_ipc=list(shared_ipc),
                actual_slowdowns=list(actual),
            )
        if run_metrics is not None and prev_hier is not None:
            _snap_metrics(run_metrics, system, models, prev_hier, shared_ipc)
        records.append(record)
        prev_instructions = instructions

    if profile_sink is not None:
        shared_time = sum(quantum_times)
        profile_sink(
            RunProfile(
                wall_time_s=_time.perf_counter() - profile_start,
                alone_time_s=alone_time,
                quantum_times_s=quantum_times,
                events_executed=shared_events,
                events_per_second=(
                    shared_events / shared_time if shared_time > 0 else 0.0
                ),
            )
        )
    return RunResult(mix=mix, config=config, records=records)
