"""System wiring, run orchestration and metrics."""

from repro.harness.system import MemoryHierarchy, System
from repro.harness.runner import (
    AloneProfile,
    AloneRunCache,
    QuantumRecord,
    RunResult,
    run_alone,
    run_workload,
)
from repro.harness import metrics

__all__ = [
    "MemoryHierarchy",
    "System",
    "AloneProfile",
    "AloneRunCache",
    "QuantumRecord",
    "RunResult",
    "run_alone",
    "run_workload",
    "metrics",
]
