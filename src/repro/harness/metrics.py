"""Evaluation metrics (Sections 5 and 7.1 of the paper).

* slowdown estimation error: |estimated - actual| / actual (percent);
* unfairness: maximum slowdown in a workload [13, 30, 31, ...];
* system performance: harmonic speedup [19, 38] — the harmonic mean of
  per-application speedups, N / sum(slowdown_i);
* weighted speedup: sum of per-application speedups.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def estimation_error_pct(estimated: float, actual: float) -> float:
    """Absolute slowdown estimation error in percent (Section 5)."""
    if actual <= 0 or math.isnan(actual):
        raise ValueError(f"actual slowdown must be positive, got {actual}")
    return abs(estimated - actual) / actual * 100.0


def mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Iterable[float]) -> float:
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def max_slowdown(slowdowns: Sequence[float]) -> float:
    """Unfairness metric: the worst per-application slowdown."""
    if not slowdowns:
        raise ValueError("empty slowdown list")
    return max(slowdowns)


def harmonic_speedup(slowdowns: Sequence[float]) -> float:
    """System performance: N / sum(slowdown_i)."""
    if not slowdowns:
        raise ValueError("empty slowdown list")
    total = sum(slowdowns)
    if total <= 0:
        raise ValueError("slowdowns must be positive")
    return len(slowdowns) / total


def weighted_speedup(slowdowns: Sequence[float]) -> float:
    """Sum of per-application speedups (1 / slowdown_i)."""
    if any(s <= 0 for s in slowdowns):
        raise ValueError("slowdowns must be positive")
    return sum(1.0 / s for s in slowdowns)


def error_histogram(
    errors: Iterable[float], bin_edges: Sequence[float]
) -> List[float]:
    """Fraction of ``errors`` in each [edge_i, edge_i+1) bin; the final bin
    is open-ended. Used for the Figure 4 error distribution."""
    errors = list(errors)
    if not errors:
        raise ValueError("empty error list")
    counts = [0] * len(bin_edges)
    for error in errors:
        placed = False
        for i in range(len(bin_edges) - 1):
            if bin_edges[i] <= error < bin_edges[i + 1]:
                counts[i] += 1
                placed = True
                break
        if not placed:
            counts[-1] += 1
    return [c / len(errors) for c in counts]


def summarize_errors(per_model_errors: Dict[str, List[float]]) -> Dict[str, Dict[str, float]]:
    """Mean/stdev/max summary per model for reporting."""
    return {
        model: {
            "mean": mean(errors),
            "stdev": stdev(errors),
            "max": max(errors),
            "n": float(len(errors)),
        }
        for model, errors in per_model_errors.items()
        if errors
    }
