"""Figure 11: soft slowdown guarantees with ASM-QoS.

One application of interest (h264ref in the paper) runs with three
co-runners. Naive-QoS gives it the entire cache — minimal slowdown for it,
large slowdowns for everyone else. ASM-QoS-X allocates just enough ways to
keep its estimated slowdown within the bound X, freeing the remaining
capacity for the co-runners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig, scaled_config
from repro.experiments.common import format_table
from repro.harness import metrics
from repro.harness.runner import AloneRunCache, run_workload
from repro.models.asm import AsmModel
from repro.policies.qos import AsmQosPolicy, NaiveQosPolicy
from repro.workloads.mixes import make_mix

DEFAULT_APPS = ("h264ref", "mcf", "soplex", "sphinx3")
TARGET_CORE = 0


@dataclass
class QosResult:
    # scheme -> per-app mean slowdowns
    slowdowns: Dict[str, List[float]] = field(default_factory=dict)
    apps: Sequence[str] = ()
    bounds: Sequence[float] = ()

    def bound_met(self, bound: float) -> bool:
        return self.slowdowns[f"asm-qos-{bound}"][TARGET_CORE] <= bound * 1.05

    def format_table(self) -> str:
        rows = []
        for scheme, values in self.slowdowns.items():
            rows.append(
                [scheme]
                + list(values)
                + [metrics.harmonic_speedup(values)]
            )
        return "Fig 11: ASM-QoS slowdowns (target app first)\n" + format_table(
            ["scheme"] + list(self.apps) + ["harmonic_speedup"], rows
        )


def run(
    apps: Sequence[str] = DEFAULT_APPS,
    bounds: Sequence[float] = (1.5, 2.0, 2.5, 3.0),
    quanta: int = 3,
    config: Optional[SystemConfig] = None,
    seed: int = 3,
) -> QosResult:
    config = config or scaled_config()
    mix = make_mix(list(apps), seed=seed)
    cache = AloneRunCache()
    result = QosResult(apps=apps, bounds=bounds)

    naive = run_workload(
        mix,
        config,
        quanta=quanta,
        alone_cache=cache,
        policy_factories=[lambda models: NaiveQosPolicy(TARGET_CORE)],
    )
    result.slowdowns["naive-qos"] = naive.mean_actual_slowdowns()

    sampled = config.ats_sampled_sets
    for bound in bounds:
        res = run_workload(
            mix,
            config,
            quanta=quanta,
            alone_cache=cache,
            model_factories={"asm": lambda: AsmModel(sampled_sets=sampled)},
            policy_factories=[
                lambda models, b=bound: AsmQosPolicy(models["asm"], TARGET_CORE, b)
            ],
        )
        result.slowdowns[f"asm-qos-{bound}"] = res.mean_actual_slowdowns()
    return result
