"""Figure 1: shared-cache access rate is a proxy for performance.

Each application of interest runs alongside a cache/bandwidth hog whose
intensity and cache pressure are swept. For every run we record the
application's performance (IPC) and shared-cache access rate (CAR), both
normalised to its alone run. The paper's claim: the points lie on the
y = x diagonal, i.e. performance is proportional to CAR.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig, scaled_config
from repro.experiments.common import format_table
from repro.harness.system import System
from repro.workloads.catalog import spec_by_name
from repro.workloads.hog import hog_spec
from repro.workloads.synthetic import SyntheticTrace

DEFAULT_APPS = ("bzip2", "xalancbmk", "soplex")


def _measure(config: SystemConfig, specs, cycles: int, seed: int) -> Tuple[float, float]:
    """Run the workload and return (IPC, CAR) of core 0."""
    traces = [
        SyntheticTrace(spec, seed=seed + core, base_line=(core + 1) << 28)
        for core, spec in enumerate(specs)
    ]
    system = System(
        dataclasses.replace(config, num_cores=len(specs)),
        traces,
        enable_epochs=len(specs) > 1,
    )
    system.run_until(cycles)
    instructions = system.cores[0].committed_instructions(cycles)
    accesses = system.hierarchy.demand_accesses(0)
    return instructions / cycles, accesses / cycles


@dataclass
class CarProxyResult:
    # app -> list of (normalised CAR, normalised performance)
    points: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def correlation(self, app: str) -> float:
        """Pearson correlation between normalised CAR and performance."""
        pts = self.points[app]
        n = len(pts)
        mean_x = sum(p[0] for p in pts) / n
        mean_y = sum(p[1] for p in pts) / n
        cov = sum((x - mean_x) * (y - mean_y) for x, y in pts)
        var_x = sum((x - mean_x) ** 2 for x, _ in pts)
        var_y = sum((y - mean_y) ** 2 for _, y in pts)
        if var_x <= 0 or var_y <= 0:
            return float("nan")
        return cov / math.sqrt(var_x * var_y)

    def proportionality_error(self, app: str) -> float:
        """Mean |performance - CAR| over the sweep (distance from y=x)."""
        pts = self.points[app]
        return sum(abs(y - x) for x, y in pts) / len(pts)

    def format_table(self) -> str:
        rows = []
        for app, pts in self.points.items():
            rows.append(
                [
                    app,
                    len(pts),
                    self.correlation(app),
                    self.proportionality_error(app),
                ]
            )
        table = format_table(
            ["app", "points", "pearson_r", "mean |perf-CAR|"], rows
        )
        detail = ["", "points (normalised CAR -> normalised performance):"]
        for app, pts in self.points.items():
            listing = ", ".join(f"({x:.2f},{y:.2f})" for x, y in pts)
            detail.append(f"  {app}: {listing}")
        return table + "\n" + "\n".join(detail)


def run(
    apps: Sequence[str] = DEFAULT_APPS,
    intensities: Sequence[float] = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0),
    cache_pressures: Sequence[float] = (0.2, 0.8),
    cycles: int = 400_000,
    config: SystemConfig = None,
    seed: int = 5,
    engine: Optional[str] = None,
) -> CarProxyResult:
    config = config or scaled_config()
    if engine:
        config = config.with_engine(engine)
    result = CarProxyResult()
    for app in apps:
        spec = spec_by_name(app)
        ipc_alone, car_alone = _measure(config, [spec], cycles, seed)
        points = []
        for pressure in cache_pressures:
            for intensity in intensities:
                hog = hog_spec(intensity, cache_pressure=pressure)
                ipc, car = _measure(config, [spec, hog], cycles, seed)
                points.append((car / car_alone, ipc / ipc_alone))
        result.points[app] = points
    return result
