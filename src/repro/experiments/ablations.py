"""Ablations of ASM's design choices (beyond the paper's own tables).

* **Epoch assignment** — Section 4.2 notes round-robin assignment "could
  also achieve similar effects"; the probabilistic policy is kept to enable
  ASM-Mem. Verified here.
* **ATS sampling degree** — Section 4.4/4.5 claims sampling barely hurts
  ASM; swept here from 4 sampled sets to the full tag store.
* **Queueing-delay correction** — Section 4.3's correction for residual
  memory interference during epochs; switched off here to measure its
  contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.config import SystemConfig, scaled_config
from repro.experiments.common import default_mixes, format_table
from repro.harness.runner import AloneRunCache, run_workload
from repro.harness import metrics
from repro.models.asm import AsmModel


@dataclass
class AblationResult:
    errors: Dict[str, float] = field(default_factory=dict)

    def format_table(self) -> str:
        rows = [[variant, err] for variant, err in self.errors.items()]
        return "Ablations: ASM mean error (%) per variant\n" + format_table(
            ["variant", "mean_err%"], rows
        )


def run(
    num_mixes: int = 6,
    quanta: int = 2,
    sampling_sweep: Sequence[Optional[int]] = (4, 16, 64, None),
    config: Optional[SystemConfig] = None,
    seed: int = 42,
) -> AblationResult:
    config = config or scaled_config()
    mixes = default_mixes(num_mixes, config.num_cores, seed=seed)
    cache = AloneRunCache()
    result = AblationResult()

    def mean_error(model_factory, epoch_assignment: str = "random") -> float:
        errors = []
        for mix in mixes:
            res = run_workload(
                mix,
                config,
                model_factories={"asm": model_factory},
                quanta=quanta,
                alone_cache=cache,
                epoch_assignment=epoch_assignment,
            )
            errors.extend(e for core in res.errors_for("asm") for e in core)
        return metrics.mean(errors) if errors else float("nan")

    for sets in sampling_sweep:
        label = f"ats-sampled-{sets}" if sets else "ats-full"
        result.errors[label] = mean_error(lambda s=sets: AsmModel(sampled_sets=s))

    result.errors["round-robin-epochs"] = mean_error(
        lambda: AsmModel(sampled_sets=config.ats_sampled_sets),
        epoch_assignment="round_robin",
    )
    result.errors["no-queueing-correction"] = mean_error(
        lambda: AsmModel(
            sampled_sets=config.ats_sampled_sets, queueing_correction=False
        )
    )
    return result
