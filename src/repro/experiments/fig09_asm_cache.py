"""Figure 9: ASM-Cache versus NoPart / UCP / MCFQ.

Fairness (maximum slowdown, lower is better) and system performance
(harmonic speedup, higher is better) across core counts. The paper's
shape: ASM-Cache achieves the best fairness with comparable-or-better
performance, and its advantage grows with core count; MCFQ can degrade on
memory-intensive workloads because it ignores bandwidth interference.

Granularity note: when the core count equals the cache associativity
(16 cores on the 16-way LLC), every way-partitioner is forced to one way
per application and the schemes tie; pair higher core counts with a
larger LLC (``config.with_llc_size``) as the paper does for its 16-core
cache results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.config import SystemConfig, scaled_config
from repro.experiments.common import default_mixes, fairness_of_runs, format_table
from repro.harness.runner import AloneRunCache, run_workload
from repro.models.asm import AsmModel
from repro.policies.asm_cache import AsmCachePolicy
from repro.policies.mcfq import McfqPolicy
from repro.policies.ucp import UcpPolicy


def _schemes(config: SystemConfig) -> Dict[str, dict]:
    sampled = config.ats_sampled_sets
    return {
        "nopart": dict(),
        "ucp": dict(policy_factories=[lambda models: UcpPolicy()]),
        "mcfq": dict(policy_factories=[lambda models: McfqPolicy()]),
        "asm-cache": dict(
            model_factories={"asm": lambda: AsmModel(sampled_sets=sampled)},
            policy_factories=[lambda models: AsmCachePolicy(models["asm"])],
        ),
    }


@dataclass
class CachePartitioningResult:
    # (cores, scheme) -> {"max_slowdown": .., "harmonic_speedup": ..}
    outcomes: Dict[tuple, Dict[str, float]] = field(default_factory=dict)
    title: str = "Fig 9: slowdown-aware cache partitioning"

    def format_table(self) -> str:
        rows = [
            [cores, scheme, vals["max_slowdown"], vals["harmonic_speedup"]]
            for (cores, scheme), vals in sorted(self.outcomes.items())
        ]
        return self.title + "\n" + format_table(
            ["cores", "scheme", "max_slowdown", "harmonic_speedup"], rows
        )


def run(
    core_counts: Sequence[int] = (4, 8, 16),
    mixes_per_count: Optional[Dict[int, int]] = None,
    quanta: int = 3,
    config: Optional[SystemConfig] = None,
    seed: int = 42,
    llc_bytes_per_core: int = 0,
    campaign=None,
) -> CachePartitioningResult:
    """``llc_bytes_per_core`` > 0 scales the LLC with the core count (the
    paper's larger-cache 16-core study, Section 7.1.2 fourth observation),
    avoiding the one-way-per-core granularity floor at 16 cores."""
    config = config or scaled_config()
    mixes_per_count = mixes_per_count or {4: 5, 8: 3, 16: 2}
    result = CachePartitioningResult()
    for cores in core_counts:
        cfg = config.with_cores(cores)
        if llc_bytes_per_core:
            cfg = cfg.with_llc_size(llc_bytes_per_core * cores)
        mixes = default_mixes(mixes_per_count.get(cores, 3), cores, seed=seed + cores)
        cache = campaign.alone_cache() if campaign else AloneRunCache()
        for scheme, kwargs in _schemes(cfg).items():
            if campaign is not None:
                runs = [
                    campaign.run_mix(
                        mix,
                        cfg,
                        quanta=quanta,
                        variant=f"{cores}cores-{scheme}",
                        alone_cache=cache,
                        **kwargs,
                    )
                    for mix in mixes
                ]
            else:
                runs = [
                    run_workload(mix, cfg, quanta=quanta, alone_cache=cache, **kwargs)
                    for mix in mixes
                ]
            result.outcomes[(cores, scheme)] = fairness_of_runs(runs)
    return result
