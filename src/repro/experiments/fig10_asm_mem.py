"""Figure 10: ASM-Mem versus FR-FCFS / PARBS / TCM memory scheduling.

Fairness (maximum slowdown) and performance (harmonic speedup) across core
counts. The paper's shape: ASM-Mem is the fairest with comparable or
better performance, with gains growing at higher core counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.config import SystemConfig, scaled_config
from repro.experiments.common import default_mixes, fairness_of_runs, format_table
from repro.harness.runner import AloneRunCache, run_workload
from repro.mem.schedulers import BlissScheduler, ParbsScheduler, TcmScheduler
from repro.models.asm import AsmModel
from repro.policies.asm_mem import AsmMemPolicy


def _schemes(config: SystemConfig) -> Dict[str, dict]:
    cores = config.num_cores
    sampled = config.ats_sampled_sets
    return {
        "frfcfs": dict(),
        "parbs": dict(scheduler_factory=ParbsScheduler),
        "tcm": dict(scheduler_factory=lambda: TcmScheduler(cores)),
        # BLISS [65] is cited by the paper as a low-cost alternative; added
        # beyond the paper's Figure 10 line-up for completeness.
        "bliss": dict(scheduler_factory=lambda: BlissScheduler(cores)),
        "asm-mem": dict(
            model_factories={"asm": lambda: AsmModel(sampled_sets=sampled)},
            policy_factories=[lambda models: AsmMemPolicy(models["asm"])],
        ),
    }


@dataclass
class BandwidthPartitioningResult:
    outcomes: Dict[tuple, Dict[str, float]] = field(default_factory=dict)
    title: str = "Fig 10: slowdown-aware memory bandwidth partitioning"

    def format_table(self) -> str:
        rows = [
            [cores, scheme, vals["max_slowdown"], vals["harmonic_speedup"]]
            for (cores, scheme), vals in sorted(self.outcomes.items())
        ]
        return self.title + "\n" + format_table(
            ["cores", "scheme", "max_slowdown", "harmonic_speedup"], rows
        )


def run(
    core_counts: Sequence[int] = (4, 8, 16),
    mixes_per_count: Optional[Dict[int, int]] = None,
    quanta: int = 3,
    config: Optional[SystemConfig] = None,
    seed: int = 42,
    campaign=None,
) -> BandwidthPartitioningResult:
    config = config or scaled_config()
    mixes_per_count = mixes_per_count or {4: 5, 8: 3, 16: 2}
    result = BandwidthPartitioningResult()
    for cores in core_counts:
        cfg = config.with_cores(cores)
        mixes = default_mixes(mixes_per_count.get(cores, 3), cores, seed=seed + cores)
        cache = campaign.alone_cache() if campaign else AloneRunCache()
        for scheme, kwargs in _schemes(cfg).items():
            if campaign is not None:
                runs = [
                    campaign.run_mix(
                        mix,
                        cfg,
                        quanta=quanta,
                        variant=f"{cores}cores-{scheme}",
                        alone_cache=cache,
                        **kwargs,
                    )
                    for mix in mixes
                ]
            else:
                runs = [
                    run_workload(mix, cfg, quanta=quanta, alone_cache=cache, **kwargs)
                    for mix in mixes
                ]
            result.outcomes[(cores, scheme)] = fairness_of_runs(runs)
    return result
