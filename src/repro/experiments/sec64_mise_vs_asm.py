"""Section 6.4: benefit of modelling shared-cache interference.

MISE and ASM share the epoch-based aggregation machinery; the only
difference is that ASM also accounts for shared-cache capacity
interference. The paper reports MISE at 22% average error versus ASM's
9.9%; the gap is concentrated on cache-sensitive applications, so this
driver reports the overall means *and* the cache-sensitive breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import SystemConfig, scaled_config
from repro.experiments.common import (
    ErrorSurvey,
    default_mixes,
    format_table,
    survey_errors,
)
from repro.harness import metrics
from repro.models.asm import AsmModel
from repro.models.mise import MiseModel
from repro.workloads.catalog import CATALOG

# Applications whose hot set is a substantial fraction of the LLC: extra
# ways convert directly into hits, so cache interference drives their
# slowdown (reuse_depth >= ~1/4 of the 4096-line scaled LLC).
CACHE_SENSITIVE_DEPTH = 1000


def _is_cache_sensitive(app: str) -> bool:
    spec = CATALOG.get(app)
    return spec is not None and spec.reuse_depth >= CACHE_SENSITIVE_DEPTH


@dataclass
class MiseVsAsmResult:
    survey: ErrorSurvey

    def class_mean(self, model: str, sensitive: bool) -> float:
        errors: List[float] = []
        for app, app_errors in self.survey.per_app.get(model, {}).items():
            if _is_cache_sensitive(app) == sensitive:
                errors.extend(app_errors)
        return metrics.mean(errors) if errors else float("nan")

    def format_table(self) -> str:
        rows = []
        for model in self.survey.model_names:
            rows.append(
                [
                    model,
                    self.survey.mean_error(model),
                    self.class_mean(model, sensitive=True),
                    self.class_mean(model, sensitive=False),
                ]
            )
        return (
            "Sec 6.4: MISE vs ASM error (%): cache interference matters\n"
            + format_table(
                ["model", "overall", "cache_sensitive_apps", "other_apps"], rows
            )
        )


def mise_vs_asm_models(config: SystemConfig):
    """MISE against sampled ASM (module-level: picklable for workers)."""
    return {
        "mise": lambda: MiseModel(),
        "asm": lambda: AsmModel(sampled_sets=config.ats_sampled_sets),
    }


def run(
    num_mixes: int = 10,
    quanta: int = 2,
    config: Optional[SystemConfig] = None,
    seed: int = 42,
    campaign=None,
    workers: int = 1,
) -> MiseVsAsmResult:
    config = config or scaled_config()
    mixes = default_mixes(num_mixes, config.num_cores, seed=seed)
    survey = survey_errors(
        mixes,
        config,
        quanta=quanta,
        campaign=campaign,
        workers=workers,
        model_builder=mise_vs_asm_models,
        model_builder_args=(config,),
    )
    return MiseVsAsmResult(survey=survey)
