"""Figure 5: slowdown-estimation error with a stride prefetcher.

With a degree-4, distance-24 stride prefetcher enabled on every core, the
paper reports ASM's error *improving* to 7.5% (prefetching removes stalls,
leaving less interference to mis-estimate) while FST/PTCA degrade slightly
(prefetches disrupt the per-request overlap they try to track).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import SystemConfig, scaled_config
from repro.experiments.common import (
    ErrorSurvey,
    default_mixes,
    format_table,
    headline_models,
    survey_errors,
)


@dataclass
class PrefetchingResult:
    with_prefetch: ErrorSurvey
    without_prefetch: ErrorSurvey

    def format_table(self) -> str:
        models = [m for m in self.with_prefetch.model_names if m != "mise"]
        rows = []
        for model in models:
            rows.append(
                [
                    model,
                    self.without_prefetch.mean_error(model),
                    self.with_prefetch.mean_error(model),
                    self.with_prefetch.stdev_across_workloads(model),
                ]
            )
        return "Fig 5: error (%) with stride prefetching\n" + format_table(
            ["model", "no_prefetch", "prefetch", "stdev_across_workloads"], rows
        )


def run(
    num_mixes: int = 8,
    quanta: int = 2,
    config: Optional[SystemConfig] = None,
    seed: int = 42,
    campaign=None,
    workers: int = 1,
) -> PrefetchingResult:
    config = config or scaled_config()
    mixes = default_mixes(num_mixes, config.num_cores, seed=seed)
    base = survey_errors(
        mixes,
        config,
        quanta=quanta,
        campaign=campaign,
        variant="base",
        workers=workers,
        model_builder=headline_models,
        model_builder_args=(config,),
    )
    prefetch_config = config.with_prefetcher(True)
    pref = survey_errors(
        mixes,
        prefetch_config,
        quanta=quanta,
        campaign=campaign,
        variant="prefetch",
        workers=workers,
        model_builder=headline_models,
        model_builder_args=(prefetch_config,),
    )
    return PrefetchingResult(with_prefetch=pref, without_prefetch=base)
