"""Shared machinery for the experiment drivers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.analytic.runner import resolve_fidelity, run_analytic
from repro.config import SystemConfig, scaled_config

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.resilience.campaign import Campaign
    from repro.telemetry.spec import TelemetrySpec
from repro.harness import metrics
from repro.harness.runner import AloneRunCache, ModelFactory, RunResult, run_workload
from repro.models.asm import AsmModel
from repro.models.fst import FstModel
from repro.models.mise import MiseModel
from repro.models.ptca import PtcaModel
from repro.workloads.mixes import WorkloadMix, random_mixes

# Pollution-filter size matching the overhead of a 16-set x 16-way sampled
# ATS (256 entries); the Bloom filter gets 4x counters, as in FST [15].
EQUAL_OVERHEAD_FILTER_COUNTERS = 1024


def unsampled_models() -> Dict[str, ModelFactory]:
    """Figure 2 configuration: exact/full structures for every model."""
    return {
        "fst": lambda: FstModel(filter_counters=None),
        "ptca": lambda: PtcaModel(sampled_sets=None),
        "asm": lambda: AsmModel(sampled_sets=None),
    }


def sampled_models(config: SystemConfig) -> Dict[str, ModelFactory]:
    """Figure 3 configuration: sampled ATS and equal-size pollution filter."""
    sets = config.ats_sampled_sets
    return {
        "fst": lambda: FstModel(filter_counters=EQUAL_OVERHEAD_FILTER_COUNTERS),
        "ptca": lambda: PtcaModel(sampled_sets=sets),
        "asm": lambda: AsmModel(sampled_sets=sets),
    }


def headline_models(config: SystemConfig) -> Dict[str, ModelFactory]:
    """The paper's headline comparison: unsampled FST/PTCA (their best
    configuration) against sampled (practical) ASM."""
    return {
        "fst": lambda: FstModel(filter_counters=None),
        "ptca": lambda: PtcaModel(sampled_sets=None),
        "asm": lambda: AsmModel(sampled_sets=config.ats_sampled_sets),
        "mise": lambda: MiseModel(),
    }


@dataclass
class ErrorSurvey:
    """Per-application and overall slowdown-estimation errors."""

    model_names: List[str]
    # model -> app name -> list of per-quantum errors across all instances
    per_app: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    # model -> flat error list
    overall: Dict[str, List[float]] = field(default_factory=dict)
    # model -> per-workload mean errors (for stdev-across-workloads bars)
    per_workload: Dict[str, List[float]] = field(default_factory=dict)

    def add_run(self, result: RunResult) -> None:
        for model in self.model_names:
            per_core = result.errors_for(model)
            workload_errors: List[float] = []
            for core, errors in enumerate(per_core):
                app = result.mix.specs[core].name
                self.per_app.setdefault(model, {}).setdefault(app, []).extend(errors)
                self.overall.setdefault(model, []).extend(errors)
                workload_errors.extend(errors)
            if workload_errors:
                self.per_workload.setdefault(model, []).append(
                    metrics.mean(workload_errors)
                )

    def mean_error(self, model: str) -> float:
        errors = self.overall.get(model, [])
        return metrics.mean(errors) if errors else float("nan")

    def stdev_across_workloads(self, model: str) -> float:
        return metrics.stdev(self.per_workload.get(model, []))

    def app_means(self, model: str) -> Dict[str, float]:
        return {
            app: metrics.mean(errors)
            for app, errors in self.per_app.get(model, {}).items()
            if errors
        }


def survey_errors(
    mixes: Sequence[WorkloadMix],
    config: SystemConfig,
    model_factories: Optional[Dict[str, ModelFactory]] = None,
    quanta: int = 2,
    alone_cache: Optional[AloneRunCache] = None,
    scheduler_factory: Optional[Callable] = None,
    campaign: Optional["Campaign"] = None,
    variant: str = "",
    *,
    workers: int = 1,
    model_builder: Optional[Callable[..., Dict[str, ModelFactory]]] = None,
    model_builder_args: Sequence = (),
    scheduler_builder: Optional[Callable] = None,
    scheduler_builder_args: Sequence = (),
    telemetry: Optional["TelemetrySpec"] = None,
    fidelity: str = "",
) -> ErrorSurvey:
    """Run every mix and collect estimation errors for every model.

    ``telemetry`` injects deterministic counter faults into every model's
    counter bank (see :mod:`repro.telemetry`); ``None`` means perfect
    telemetry.

    ``fidelity`` selects the execution tier ("analytical" | "columnar" |
    "event", see docs/fidelity.md); empty leaves ``config.engine`` in
    charge. At the analytical tier the per-estimator machinery does not
    run — only the closed-form "asm"/"analytic" estimates exist, and
    other requested models simply collect no errors. An analytical
    survey under a campaign with a store additionally cross-validates a
    seeded sample of its cells against the event oracle and persists the
    divergence report (:mod:`repro.analytic.crossval`).

    With a :class:`repro.resilience.campaign.Campaign`, each mix runs under
    its fault-isolation/checkpoint discipline: previously completed mixes
    are resumed from the store, failing mixes are captured (and skipped
    when the campaign keeps going) instead of aborting the survey, and
    ``variant`` disambiguates multiple surveys within one experiment.

    ``workers > 1`` fans the mixes out across worker processes (see
    :mod:`repro.parallel`); results are identical to a serial survey. The
    parallel path needs picklable recipes instead of closures: a
    module-level ``model_builder`` called as
    ``model_builder(*model_builder_args)`` (and likewise for the
    scheduler). When only a builder is given, the serial path uses it too.
    """
    config = resolve_fidelity(config, fidelity)
    if model_factories is None:
        if model_builder is None:
            raise ValueError(
                "survey_errors needs model_factories or a model_builder"
            )
        model_factories = model_builder(*model_builder_args)
    survey = ErrorSurvey(model_names=list(model_factories))
    if workers > 1:
        if model_builder is None:
            raise ValueError(
                "workers > 1 requires a picklable module-level model_builder"
            )
        if scheduler_factory is not None and scheduler_builder is None:
            raise ValueError(
                "workers > 1 requires a picklable scheduler_builder "
                "instead of scheduler_factory"
            )
        from repro.parallel import CellSpec
        from repro.resilience.campaign import Campaign

        camp = campaign if campaign is not None else Campaign("adhoc-survey")
        cells = [
            CellSpec(
                mix=mix,
                config=config,
                quanta=quanta,
                variant=variant,
                model_builder=model_builder,
                model_builder_args=tuple(model_builder_args),
                scheduler_builder=scheduler_builder,
                scheduler_builder_args=tuple(scheduler_builder_args),
                telemetry=telemetry,
            )
            for mix in mixes
        ]
        for result in camp.run_cells(cells, workers=workers):
            if result is not None:
                survey.add_run(result)
        _crossval_if_analytic(campaign, mixes, config, quanta, variant, fidelity)
        return survey
    # Explicit None check: an empty AloneRunCache is falsy (len == 0).
    if alone_cache is not None:
        cache = alone_cache
    elif campaign is not None:
        cache = campaign.alone_cache()
    else:
        cache = AloneRunCache()
    for mix in mixes:
        if campaign is not None:
            result = campaign.run_mix(
                mix,
                config,
                quanta=quanta,
                variant=variant,
                model_factories=model_factories,
                scheduler_factory=scheduler_factory,
                alone_cache=cache,
                telemetry=telemetry,
            )
            if result is None:
                continue
        elif config.engine == "analytic":
            result = run_analytic(mix, config, quanta=quanta)
        else:
            result = run_workload(
                mix,
                config,
                model_factories=model_factories,
                scheduler_factory=scheduler_factory,
                quanta=quanta,
                alone_cache=cache,
                telemetry=telemetry,
            )
        survey.add_run(result)
    _crossval_if_analytic(campaign, mixes, config, quanta, variant, fidelity)
    return survey


def _crossval_if_analytic(
    campaign: Optional["Campaign"],
    mixes: Sequence[WorkloadMix],
    config: SystemConfig,
    quanta: int,
    variant: str,
    fidelity: str,
) -> None:
    """After an analytical survey under a stored campaign, cross-validate a
    seeded one-cell sample against the event oracle and persist the
    divergence report next to the campaign's other records."""
    if fidelity != "analytical" or campaign is None or campaign.store is None:
        return
    from repro.analytic.crossval import cross_validate

    cross_validate(
        campaign, mixes, config, quanta=quanta, variant=variant, sample_size=1
    )


def default_mixes(count: int, num_cores: int, seed: int = 42) -> List[WorkloadMix]:
    return random_mixes(count, num_cores, seed=seed)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table with right-aligned numeric columns."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return "nan" if math.isnan(value) else f"{value:.2f}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in text_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def fairness_of_runs(results: Sequence[Optional[RunResult]]) -> Dict[str, float]:
    """Average unfairness (max slowdown) and harmonic speedup over runs.

    ``None`` entries (mixes a campaign captured as failures) are skipped;
    all-failed cells report NaN rather than aborting the sweep."""
    results = [r for r in results if r is not None]
    if not results:
        return {
            "max_slowdown": float("nan"),
            "harmonic_speedup": float("nan"),
        }
    return {
        "max_slowdown": metrics.mean(r.max_slowdown() for r in results),
        "harmonic_speedup": metrics.mean(r.harmonic_speedup() for r in results),
    }


__all__ = [
    "EQUAL_OVERHEAD_FILTER_COUNTERS",
    "unsampled_models",
    "sampled_models",
    "headline_models",
    "ErrorSurvey",
    "survey_errors",
    "default_mixes",
    "format_table",
    "fairness_of_runs",
    "scaled_config",
]
