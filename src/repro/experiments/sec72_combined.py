"""Section 7.2 (text): ASM-Cache-Mem versus the best prior combination.

The paper combines coordinated slowdown-aware cache + bandwidth
partitioning and compares against PARBS+UCP (the best previous combination
it found), reporting ~14.6% better fairness at comparable performance on a
16-core 1-channel system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import SystemConfig, scaled_config
from repro.experiments.common import default_mixes, fairness_of_runs, format_table
from repro.harness.runner import AloneRunCache, run_workload
from repro.mem.schedulers import ParbsScheduler
from repro.models.asm import AsmModel
from repro.policies.combined import AsmCacheMemPolicy
from repro.policies.ucp import UcpPolicy


@dataclass
class CombinedResult:
    outcomes: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format_table(self) -> str:
        rows = [
            [scheme, vals["max_slowdown"], vals["harmonic_speedup"]]
            for scheme, vals in self.outcomes.items()
        ]
        return (
            "Sec 7.2: coordinated cache+bandwidth partitioning\n"
            + format_table(["scheme", "max_slowdown", "harmonic_speedup"], rows)
        )


def run(
    num_cores: int = 8,
    num_mixes: int = 3,
    quanta: int = 3,
    config: Optional[SystemConfig] = None,
    seed: int = 42,
) -> CombinedResult:
    config = (config or scaled_config()).with_cores(num_cores)
    mixes = default_mixes(num_mixes, num_cores, seed=seed)
    cache = AloneRunCache()
    sampled = config.ats_sampled_sets
    schemes = {
        "frfcfs+nopart": dict(),
        "parbs+ucp": dict(
            scheduler_factory=ParbsScheduler,
            policy_factories=[lambda models: UcpPolicy()],
        ),
        "asm-cache-mem": dict(
            model_factories={"asm": lambda: AsmModel(sampled_sets=sampled)},
            policy_factories=[lambda models: AsmCacheMemPolicy(models["asm"])],
        ),
    }
    result = CombinedResult()
    for scheme, kwargs in schemes.items():
        runs = [
            run_workload(mix, config, quanta=quanta, alone_cache=cache, **kwargs)
            for mix in mixes
        ]
        result.outcomes[scheme] = fairness_of_runs(runs)
    return result
