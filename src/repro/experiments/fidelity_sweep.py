"""Fidelity sweep: the same cells at every tier, accuracy vs runtime.

Runs one set of workload mixes at all three fidelity tiers (see
docs/fidelity.md) — ``analytical`` (closed form, :mod:`repro.analytic`),
``columnar`` (batched arrays, :mod:`repro.vector`) and ``event`` (the
per-callback oracle) — and reports, per tier, the wall time and the
slowdown divergence from the event oracle:

* ``asm`` rows compare the tier's ASM slowdown *estimates* against the
  oracle's measured slowdowns (the analytic tier's estimate IS its
  output; for simulated tiers this is ordinary model error);
* ``actual`` rows compare the tier's *measured* slowdowns against the
  oracle's. The columnar tier is bit-exact, so its ``actual`` row is the
  zero-divergence sanity check of the whole harness.

Under a campaign with a store, each tier's divergence report is also
persisted to ``divergence.jsonl`` (variant ``fid:<tier>``), readable
later with ``CampaignStore.load_divergence``.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analytic.crossval import (
    DivergenceEntry,
    DivergenceReport,
    compare_results,
    persist_report,
)
from repro.analytic.runner import FIDELITY_TIERS
from repro.config import SystemConfig, scaled_config
from repro.experiments.common import default_mixes, format_table, unsampled_models
from repro.harness.runner import RunResult


@dataclass
class TierOutcome:
    """One fidelity tier's runs, wall time and divergence report."""

    fidelity: str
    wall_s: float
    results: List[Optional[RunResult]]
    report: Optional[DivergenceReport] = None


@dataclass
class FidelitySweepResult:
    """Per-tier outcomes of one fidelity sweep, event oracle last."""

    tiers: Dict[str, TierOutcome]

    def format_table(self) -> str:
        event_wall = self.tiers["event"].wall_s
        rows: List[List[object]] = []
        for tier in FIDELITY_TIERS:
            outcome = self.tiers[tier]
            speedup = event_wall / outcome.wall_s if outcome.wall_s else float("nan")
            if outcome.report is not None:
                stats = outcome.report.summary()
                asm = stats.get("asm", {})
                actual = stats.get("actual", {})
                asm_err = asm.get("mean_abs_pct", float("nan"))
                asm_max = asm.get("max_abs_pct", float("nan"))
                actual_err = actual.get("mean_abs_pct", float("nan"))
            else:
                asm_err = asm_max = actual_err = 0.0  # the oracle itself
            rows.append(
                [tier, outcome.wall_s, speedup, asm_err, asm_max, actual_err]
            )
        return (
            "Fidelity sweep: slowdown divergence vs the event oracle\n"
            + format_table(
                [
                    "tier",
                    "wall_s",
                    "speedup",
                    "asm_err%",
                    "asm_max%",
                    "actual_err%",
                ],
                rows,
            )
        )


def _actual_entries(
    surrogate: RunResult, oracle: RunResult, fidelity: str
) -> List[DivergenceEntry]:
    """Measured-slowdown divergence entries (pseudo-model ``actual``)."""
    oracle_means = oracle.mean_actual_slowdowns()
    surrogate_means = surrogate.mean_actual_slowdowns()
    return [
        DivergenceEntry(
            mix=surrogate.mix.name,
            core=core,
            app=surrogate.mix.specs[core].name,
            model="actual",
            fidelity=fidelity,
            oracle=oracle_means[core],
            estimate=surrogate_means[core],
        )
        for core in range(surrogate.mix.num_cores)
    ]


def run(
    num_mixes: int = 3,
    quanta: int = 2,
    config: Optional[SystemConfig] = None,
    seed: int = 42,
    campaign=None,
    workers: int = 1,
) -> FidelitySweepResult:
    """Run ``num_mixes`` mixes at all three tiers and compare them."""
    from repro.parallel import CellSpec, run_cells
    from repro.resilience.campaign import Campaign

    config = config or scaled_config()
    mixes = default_mixes(num_mixes, config.num_cores, seed=seed)
    camp = campaign if campaign is not None else Campaign("fidelity")
    tiers: Dict[str, TierOutcome] = {}
    for tier in FIDELITY_TIERS:
        cells = [
            CellSpec(
                mix=mix,
                config=config,
                quanta=quanta,
                variant=f"fid:{tier}",
                model_builder=unsampled_models,
                fidelity=tier,
            )
            for mix in mixes
        ]
        start = _time.perf_counter()
        results = run_cells(camp, cells, workers=workers)
        tiers[tier] = TierOutcome(
            fidelity=tier,
            wall_s=_time.perf_counter() - start,
            results=results,
        )
    oracle = tiers["event"].results
    for tier in FIDELITY_TIERS:
        if tier == "event":
            continue
        entries: List[DivergenceEntry] = []
        for surrogate_result, oracle_result in zip(tiers[tier].results, oracle):
            if surrogate_result is None or oracle_result is None:
                continue
            entries.extend(
                entry
                for entry in compare_results(
                    surrogate_result, oracle_result, fidelity=tier
                )
                if entry.model == "asm"
            )
            entries.extend(
                _actual_entries(surrogate_result, oracle_result, tier)
            )
        report = DivergenceReport(fidelity=tier, entries=entries)
        tiers[tier].report = report
        persist_report(camp, report, variant=f"fid:{tier}")
    return FidelitySweepResult(tiers=tiers)


__all__ = [
    "FidelitySweepResult",
    "TierOutcome",
    "run",
]
