"""Experiment drivers: one module per table/figure of the paper.

Each driver exposes a ``run(...)`` function returning a result object with
a ``format_table()`` method; the corresponding benchmark under
``benchmarks/`` executes it with scaled-down defaults and records the
output (see EXPERIMENTS.md for the paper-vs-measured record)."""
