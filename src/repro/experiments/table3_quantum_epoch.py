"""Table 3: ASM error sensitivity to quantum (Q) and epoch (E) lengths.

Paper findings (at paper scale, Q in 1M..10M, E in 1K..100K): error falls
with larger Q, is best at moderate E (10K), and is worst at the shortest E
(1K — epochs too short to emulate alone-run memory behaviour) and degrades
again at very large E (too few epochs per application).

The scaled platform sweeps the same Q/E *ratios* at 1/5 the paper's
absolute quantum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.config import SystemConfig, scaled_config
from repro.experiments.common import (
    default_mixes,
    format_table,
    survey_errors,
)
from repro.models.asm import AsmModel


@dataclass
class QuantumEpochResult:
    errors: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def format_table(self) -> str:
        quanta = sorted({q for q, _ in self.errors})
        epochs = sorted({e for _, e in self.errors})
        rows = []
        for q in quanta:
            rows.append(
                [f"Q={q}"]
                + [self.errors.get((q, e), float("nan")) for e in epochs]
            )
        return "Table 3: ASM error (%) vs quantum and epoch lengths\n" + format_table(
            ["quantum\\epoch"] + [f"E={e}" for e in epochs], rows
        )


def run(
    quantum_lengths: Sequence[int] = (200_000, 1_000_000, 2_000_000),
    epoch_lengths: Sequence[int] = (1_000, 5_000, 20_000, 50_000),
    num_mixes: int = 5,
    config: Optional[SystemConfig] = None,
    seed: int = 42,
) -> QuantumEpochResult:
    config = config or scaled_config()
    result = QuantumEpochResult()
    budget = max(quantum_lengths)  # equal simulated time per cell
    # One alone-run cache across all cells: within a quantum-length row the
    # simulated horizon is identical, so ground truth is fully shared.
    from repro.harness.runner import AloneRunCache

    alone_cache = AloneRunCache()
    for quantum in quantum_lengths:
        for epoch in epoch_lengths:
            if quantum % epoch:
                continue
            cfg = config.with_quantum(quantum, epoch)
            mixes = default_mixes(num_mixes, cfg.num_cores, seed=seed)
            quanta = max(1, budget // quantum)
            survey = survey_errors(
                mixes,
                cfg,
                {"asm": lambda c=cfg: AsmModel(sampled_sets=c.ats_sampled_sets)},
                quanta=quanta,
                alone_cache=alone_cache,
            )
            result.errors[(quantum, epoch)] = survey.mean_error("asm")
    return result
