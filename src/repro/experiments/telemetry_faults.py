"""Telemetry-fault chaos suite: estimator robustness under counter faults.

Sweeps every telemetry fault class (see :mod:`repro.telemetry`) across
fault rates and reports, per (fault class, rate, model):

* **deviation** of the slowdown estimates from the fault-free baseline
  (mean absolute percent difference over core-quanta) — how much damage
  the fault does;
* **degraded fraction** — the share of core-quanta the model *flagged*
  (confidence < 1), i.e. how much of the damage the guarded read path
  detected;
* **mean confidence** and a non-finite output count (which must stay 0:
  the guarded path never emits NaN/inf, it clamps and falls back).

Every cell runs under a :class:`repro.resilience.campaign.Campaign`
(checkpointable, fault-isolated, ``--workers``-parallel). The baseline
cells use perfect telemetry and are bit-identical to the same sweep run
before the telemetry layer existed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig, scaled_config
from repro.experiments.common import (
    EQUAL_OVERHEAD_FILTER_COUNTERS,
    ModelFactory,
    default_mixes,
    format_table,
)
from repro.harness import metrics
from repro.harness.runner import RunResult
from repro.telemetry import FAULT_CLASSES, TelemetrySpec

#: Default fault rates: the acceptance sweep (1% and 10%).
DEFAULT_RATES: Tuple[float, ...] = (0.01, 0.1)


def chaos_model_factories(config: SystemConfig) -> Dict[str, ModelFactory]:
    """All five slowdown models in their practical configurations.

    Module-level (picklable by reference) so the chaos suite can fan cells
    out across worker processes."""
    sets = config.ats_sampled_sets
    return {
        "asm": lambda: _asm(sets),
        "mise": lambda: _mise(),
        "fst": lambda: _fst(),
        "ptca": lambda: _ptca(sets),
        "stfm": lambda: _stfm(),
    }


def _asm(sets: int):
    from repro.models.asm import AsmModel

    return AsmModel(sampled_sets=sets)


def _mise():
    from repro.models.mise import MiseModel

    return MiseModel()


def _fst():
    from repro.models.fst import FstModel

    return FstModel(filter_counters=EQUAL_OVERHEAD_FILTER_COUNTERS)


def _ptca(sets: int):
    from repro.models.ptca import PtcaModel

    return PtcaModel(sampled_sets=sets)


def _stfm():
    from repro.models.stfm import StfmModel

    return StfmModel()


@dataclass
class ChaosRow:
    """Robustness report for one (fault class, rate, model) cell group."""

    fault_class: str
    rate: float
    model: str
    deviation_pct: float  # mean |estimate - baseline| / baseline * 100
    degraded_fraction: float  # share of core-quanta with confidence < 1
    mean_confidence: float
    nonfinite: int  # estimates outside finite [1, 50] (must be 0)
    failures: int  # mixes that crashed (must be 0)


@dataclass
class TelemetryFaultsResult:
    rows: List[ChaosRow] = field(default_factory=list)
    baseline_failures: int = 0

    def total_failures(self) -> int:
        return self.baseline_failures + sum(r.failures for r in self.rows)

    def total_nonfinite(self) -> int:
        return sum(r.nonfinite for r in self.rows)

    def any_degraded(self) -> bool:
        """Did at least one faulted cell flag degradation?"""
        return any(r.degraded_fraction > 0 for r in self.rows)

    def format_table(self) -> str:
        rows = [
            [
                r.fault_class,
                f"{r.rate:g}",
                r.model,
                r.deviation_pct,
                r.degraded_fraction,
                r.mean_confidence,
                r.nonfinite,
                r.failures,
            ]
            for r in self.rows
        ]
        header = (
            "Telemetry-fault chaos suite: estimate deviation vs fault-free "
            "baseline, and detection (degraded fraction / confidence)"
        )
        return header + "\n" + format_table(
            [
                "fault",
                "rate",
                "model",
                "deviation%",
                "degraded",
                "confidence",
                "nonfinite",
                "failed",
            ],
            rows,
        )


def _collect(
    results: Sequence[Optional[RunResult]],
) -> Tuple[Dict[str, List[Tuple[int, int, float, float]]], int]:
    """Flatten runs into model -> [(run, core-quantum, estimate, conf)].

    The (run index, core-quantum index) pair aligns faulted sweeps with
    the baseline sweep position-by-position; failed runs are skipped and
    counted."""
    flat: Dict[str, List[Tuple[int, int, float, float]]] = {}
    failures = 0
    for run_index, result in enumerate(results):
        if result is None:
            failures += 1
            continue
        for record in result.records:
            for model, estimates in record.estimates.items():
                confidence = record.confidence.get(model, [1.0] * len(estimates))
                rows = flat.setdefault(model, [])
                for core, estimate in enumerate(estimates):
                    slot = record.index * len(estimates) + core
                    rows.append((run_index, slot, estimate, confidence[core]))
    return flat, failures


def run(
    num_mixes: int = 3,
    quanta: int = 2,
    config: Optional[SystemConfig] = None,
    seed: int = 42,
    fault_classes: Optional[Sequence[str]] = None,
    rates: Sequence[float] = DEFAULT_RATES,
    telemetry_seed: int = 0,
    campaign=None,
    workers: int = 1,
    engine: Optional[str] = None,
) -> TelemetryFaultsResult:
    """Run the chaos sweep: baseline + every fault class at every rate.

    ``engine`` selects the execution backend (``event``/``columnar``) so
    the degraded-telemetry sweep exercises both; cells record it in
    their store keys via the config fingerprint."""
    from repro.parallel import CellSpec
    from repro.resilience.campaign import Campaign

    config = config or scaled_config()
    if engine:
        config = config.with_engine(engine)
    classes = tuple(fault_classes) if fault_classes else FAULT_CLASSES
    for fault_class in classes:
        if fault_class not in FAULT_CLASSES:
            raise ValueError(f"unknown fault class {fault_class!r}")
    mixes = default_mixes(num_mixes, config.num_cores, seed=seed)
    camp = campaign if campaign is not None else Campaign("telemetry-faults")

    def cells_for(spec: Optional[TelemetrySpec], variant: str) -> List[CellSpec]:
        return [
            CellSpec(
                mix=mix,
                config=config,
                quanta=quanta,
                variant=variant,
                model_builder=chaos_model_factories,
                model_builder_args=(config,),
                telemetry=spec,
            )
            for mix in mixes
        ]

    baseline_runs = camp.run_cells(cells_for(None, "baseline"), workers=workers)
    baseline, baseline_failures = _collect(baseline_runs)
    result = TelemetryFaultsResult(baseline_failures=baseline_failures)

    for fault_class in classes:
        for rate in rates:
            spec = TelemetrySpec(
                fault_class=fault_class, rate=rate, seed=telemetry_seed
            )
            variant = f"{fault_class}@{rate:g}"
            runs = camp.run_cells(cells_for(spec, variant), workers=workers)
            faulted, failures = _collect(runs)
            for model in sorted(faulted):
                rows = faulted[model]
                base_rows = {
                    (ri, slot): est for ri, slot, est, _ in baseline.get(model, [])
                }
                deviations: List[float] = []
                confidences: List[float] = []
                degraded = 0
                nonfinite = 0
                for run_index, slot, estimate, confidence in rows:
                    if not math.isfinite(estimate):
                        nonfinite += 1
                    confidences.append(confidence)
                    if confidence < 1.0:
                        degraded += 1
                    base = base_rows.get((run_index, slot))
                    if base is not None and base > 0 and math.isfinite(estimate):
                        deviations.append(abs(estimate - base) / base * 100.0)
                result.rows.append(
                    ChaosRow(
                        fault_class=fault_class,
                        rate=rate,
                        model=model,
                        deviation_pct=(
                            metrics.mean(deviations) if deviations else 0.0
                        ),
                        degraded_fraction=(
                            degraded / len(rows) if rows else 0.0
                        ),
                        mean_confidence=(
                            metrics.mean(confidences) if confidences else 1.0
                        ),
                        nonfinite=nonfinite,
                        failures=failures,
                    )
                )
    return result
