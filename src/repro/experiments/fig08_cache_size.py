"""Figure 8: slowdown-estimation error versus shared cache capacity.

The paper sweeps the LLC from 1MB to 4MB on the 4-core system; on the
8x-scaled platform that is 128KB to 512KB. ASM should remain the most
accurate across all capacities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.config import SystemConfig, scaled_config
from repro.experiments.common import (
    ErrorSurvey,
    default_mixes,
    format_table,
    headline_models,
    survey_errors,
)


@dataclass
class CacheSizeResult:
    surveys: Dict[int, ErrorSurvey] = field(default_factory=dict)

    def format_table(self) -> str:
        rows = []
        for size, survey in sorted(self.surveys.items()):
            for model in survey.model_names:
                if model == "mise":
                    continue
                rows.append(
                    [f"{size // 1024}KB", model, survey.mean_error(model)]
                )
        return "Fig 8: error (%) vs shared cache capacity\n" + format_table(
            ["llc_size", "model", "mean_err%"], rows
        )


def run(
    sizes: Sequence[int] = (128 * 1024, 256 * 1024, 512 * 1024),
    num_mixes: int = 6,
    quanta: int = 2,
    config: Optional[SystemConfig] = None,
    seed: int = 42,
    campaign=None,
    workers: int = 1,
) -> CacheSizeResult:
    config = config or scaled_config()
    mixes = default_mixes(num_mixes, config.num_cores, seed=seed)
    result = CacheSizeResult()
    for size in sizes:
        cfg = config.with_llc_size(size)
        result.surveys[size] = survey_errors(
            mixes,
            cfg,
            quanta=quanta,
            campaign=campaign,
            variant=f"llc{size // 1024}k",
            workers=workers,
            model_builder=headline_models,
            model_builder_args=(cfg,),
        )
    return result
