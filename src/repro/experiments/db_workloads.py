"""Section 6 (text): slowdown-estimation accuracy on database workloads.

The paper evaluates TPC-C and YCSB, reporting FST (unsampled) 27%,
PTCA (unsampled) 12% and ASM (sampled) 4% average error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import SystemConfig, scaled_config
from repro.experiments.common import ErrorSurvey, format_table, survey_errors
from repro.models.asm import AsmModel
from repro.models.fst import FstModel
from repro.models.ptca import PtcaModel
from repro.workloads.catalog import CATALOG
from repro.workloads.mixes import random_mixes


@dataclass
class DbWorkloadsResult:
    survey: ErrorSurvey

    def format_table(self) -> str:
        rows = [
            [model, self.survey.mean_error(model)]
            for model in self.survey.model_names
        ]
        return "Database workloads (TPC-C / YCSB): error (%)\n" + format_table(
            ["model", "mean_err%"], rows
        )


def db_models(config: SystemConfig):
    """Unsampled FST/PTCA vs sampled ASM (module-level: picklable)."""
    return {
        "fst": lambda: FstModel(filter_counters=None),
        "ptca": lambda: PtcaModel(sampled_sets=None),
        "asm": lambda: AsmModel(sampled_sets=config.ats_sampled_sets),
    }


def run(
    num_mixes: int = 6,
    quanta: int = 2,
    config: Optional[SystemConfig] = None,
    seed: int = 99,
    campaign=None,
    workers: int = 1,
) -> DbWorkloadsResult:
    config = config or scaled_config()
    pool = [s for s in CATALOG.values() if s.suite == "db"]
    mixes = random_mixes(num_mixes, config.num_cores, seed=seed, pool=pool)
    survey = survey_errors(
        mixes,
        config,
        quanta=quanta,
        campaign=campaign,
        workers=workers,
        model_builder=db_models,
        model_builder_args=(config,),
    )
    return DbWorkloadsResult(survey=survey)
