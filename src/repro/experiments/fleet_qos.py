"""Fleet-scale ASM-QoS experiments (paper Section 7 at fleet scale).

Three questions, each one fleet run under the same campaign:

* **placement** — does ASM-aware placement beat naive bin-packing on
  SLA violations and mean slowdown? (``asm`` vs ``naive`` variants on a
  clean fleet.)
* **robustness** — under fleet chaos (node kills, stragglers,
  telemetry-degraded nodes) does the scheduler keep serving: how many
  rounds degrade to naive placement, how many SLA decisions fall back
  to the Yun-style worst-case bound, and does the tenant stream still
  finish? (``chaos`` variant.)
* **pricing fairness** — with hog tenants in the stream, how does
  slowdown-fair billing (Section 7.3) change what interference victims
  pay versus flat occupancy billing? (``hog-fair`` vs ``hog-flat``.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cloud.fleet import FleetResult, FleetSupervisor
from repro.cloud.spec import FleetChaosSpec, FleetSpec
from repro.cloud.tenants import tenant_stream
from repro.config import SystemConfig, scaled_config
from repro.experiments.common import format_table


@dataclass
class FleetRow:
    """Summary of one fleet variant."""

    variant: str
    placement: str
    completed: int
    shed: int
    unserved: int
    sla_violations: int
    oracle_violations: int
    bound_decisions: int
    degraded_rounds: int
    migrations: int
    node_kills: int
    hog_charge_per_quantum: float
    other_charge_per_quantum: float


@dataclass
class FleetQosResult:
    rows: List[FleetRow] = field(default_factory=list)
    results: Dict[str, FleetResult] = field(default_factory=dict)

    def row(self, variant: str) -> FleetRow:
        """The summary row for ``variant`` (KeyError if absent)."""
        for row in self.rows:
            if row.variant == variant:
                return row
        raise KeyError(variant)

    def format_table(self) -> str:
        header = (
            "Fleet tier (ASM-QoS at scale): placement policy, chaos "
            "robustness, and slowdown-fair pricing"
        )
        rows = [
            [
                r.variant,
                r.placement,
                r.completed,
                r.shed,
                r.unserved,
                r.sla_violations,
                r.oracle_violations,
                r.bound_decisions,
                r.degraded_rounds,
                r.migrations,
                r.node_kills,
                r.hog_charge_per_quantum,
                r.other_charge_per_quantum,
            ]
            for r in self.rows
        ]
        return header + "\n" + format_table(
            [
                "variant",
                "policy",
                "done",
                "shed",
                "unserved",
                "sla-viol",
                "oracle",
                "bound",
                "degraded",
                "migr",
                "kills",
                "hog$/q",
                "other$/q",
            ],
            rows,
        )


def _charge_per_quantum(result: FleetResult, spec: FleetSpec) -> Dict[str, float]:
    """Mean charge per served quantum, split hog vs non-hog tenants."""
    hog_ids = {t.tenant_id for t in tenant_stream(spec) if t.is_hog}
    totals = {"hog": 0.0, "other": 0.0}
    quanta = {"hog": 0, "other": 0}
    for record in result.billing:
        kind = "hog" if record.tenant_id in hog_ids else "other"
        totals[kind] += record.charge
        quanta[kind] += record.quanta
    return {
        kind: (totals[kind] / quanta[kind] if quanta[kind] else 0.0)
        for kind in ("hog", "other")
    }


def run(
    rounds: int = 6,
    quanta: int = 1,
    config: Optional[SystemConfig] = None,
    seed: int = 42,
    num_nodes: int = 3,
    cores_per_node: int = 2,
    num_tenants: int = 6,
    campaign=None,
    workers: int = 1,
    engine: Optional[str] = None,
) -> FleetQosResult:
    """Run the three fleet comparisons; see the module docstring."""
    from repro.resilience.campaign import Campaign

    if config is None:
        # The fleet sweep runs many small cells; short quanta keep the
        # whole experiment interactive without changing the story.
        config = scaled_config().with_quantum(200_000, 5_000)
    camp = campaign if campaign is not None else Campaign("fleet")

    base = dict(
        num_nodes=num_nodes,
        cores_per_node=cores_per_node,
        rounds=rounds,
        quanta_per_round=quanta,
        seed=seed,
        num_tenants=num_tenants,
        arrivals_per_round=max(1, num_tenants // 2),
        engine=engine or "event",
    )
    chaos = FleetChaosSpec(
        node_kill_rate=0.15,
        straggler_rate=0.1,
        telemetry_rate=0.25,
        telemetry_class="dropped_read",
        telemetry_fault_rate=0.3,
        seed=seed,
    )
    specs = [
        FleetSpec(name="asm", placement="asm", **base),
        FleetSpec(name="naive", placement="naive", **base),
        FleetSpec(
            name="chaos", placement="asm", chaos=chaos,
            rounds=rounds * 3, **{k: v for k, v in base.items()
                                  if k != "rounds"},
        ),
        FleetSpec(name="hog-fair", placement="asm", hog_fraction=0.5,
                  billing="fair", **base),
        FleetSpec(name="hog-flat", placement="asm", hog_fraction=0.5,
                  billing="flat", **base),
    ]

    out = FleetQosResult()
    for spec in specs:
        supervisor = FleetSupervisor(spec, config, camp, workers=workers)
        result = supervisor.run()
        out.results[spec.name] = result
        charges = _charge_per_quantum(result, spec)
        out.rows.append(
            FleetRow(
                variant=spec.name,
                placement=spec.placement,
                completed=len(result.completed),
                shed=len(result.shed),
                unserved=len(result.unserved),
                sla_violations=result.sla_violations,
                oracle_violations=result.oracle_violations,
                bound_decisions=result.bound_decisions,
                degraded_rounds=(
                    result.naive_rounds if spec.placement == "asm" else 0
                ),
                migrations=result.migrations,
                node_kills=result.node_kills,
                hog_charge_per_quantum=charges["hog"],
                other_charge_per_quantum=charges["other"],
            )
        )
    return out


__all__ = ["FleetQosResult", "FleetRow", "run"]
