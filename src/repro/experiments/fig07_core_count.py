"""Figure 7: slowdown-estimation error versus core count (4 / 8 / 16).

The paper's findings: ASM (sampled) stays the most accurate at every core
count with the lowest spread; all models degrade as interference grows;
ASM's advantage over FST/PTCA (unsampled) widens with core count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.config import SystemConfig, scaled_config
from repro.experiments.common import (
    ErrorSurvey,
    default_mixes,
    format_table,
    headline_models,
    survey_errors,
)


@dataclass
class CoreCountResult:
    surveys: Dict[int, ErrorSurvey] = field(default_factory=dict)

    def format_table(self) -> str:
        rows = []
        for cores, survey in sorted(self.surveys.items()):
            for model in survey.model_names:
                if model == "mise":
                    continue
                rows.append(
                    [
                        cores,
                        model,
                        survey.mean_error(model),
                        survey.stdev_across_workloads(model),
                    ]
                )
        return "Fig 7: error (%) vs core count\n" + format_table(
            ["cores", "model", "mean_err%", "stdev_across_workloads"], rows
        )


def run(
    core_counts: Sequence[int] = (4, 8, 16),
    mixes_per_count: Optional[Dict[int, int]] = None,
    quanta: int = 2,
    config: Optional[SystemConfig] = None,
    seed: int = 42,
    campaign=None,
    workers: int = 1,
) -> CoreCountResult:
    config = config or scaled_config()
    mixes_per_count = mixes_per_count or {4: 8, 8: 5, 16: 3}
    result = CoreCountResult()
    for cores in core_counts:
        cfg = config.with_cores(cores)
        mixes = default_mixes(mixes_per_count.get(cores, 4), cores, seed=seed + cores)
        result.surveys[cores] = survey_errors(
            mixes,
            cfg,
            quanta=quanta,
            campaign=campaign,
            variant=f"{cores}cores",
            workers=workers,
            model_builder=headline_models,
            model_builder_args=(cfg,),
        )
    return result
