"""Figure 4: distribution of slowdown-estimation error.

The paper reports, across all application instances in the 4-core
workloads: the fraction of estimates in each error band, that 95.25% of
ASM's estimates err below 20%, and the maximum error per model
(ASM 36%, PTCA 87%, FST 133%). Configuration: FST/PTCA unsampled,
ASM sampled — the same as the headline accuracy claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import SystemConfig, scaled_config
from repro.experiments.common import (
    ErrorSurvey,
    default_mixes,
    format_table,
    headline_models,
    survey_errors,
)
from repro.harness import metrics

BIN_EDGES = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0]
BIN_LABELS = ["0-10%", "10-20%", "20-30%", "30-40%", "40-50%", ">50%"]


@dataclass
class ErrorDistributionResult:
    survey: ErrorSurvey

    def histogram(self, model: str) -> List[float]:
        return metrics.error_histogram(self.survey.overall[model], BIN_EDGES)

    def within(self, model: str, bound: float) -> float:
        errors = self.survey.overall[model]
        return sum(1 for e in errors if e < bound) / len(errors)

    def max_error(self, model: str) -> float:
        return max(self.survey.overall[model])

    def format_table(self) -> str:
        models = [m for m in self.survey.model_names if m != "mise"]
        rows = []
        for i, label in enumerate(BIN_LABELS):
            rows.append([label] + [self.histogram(m)[i] for m in models])
        rows.append(["<20% share"] + [self.within(m, 20.0) for m in models])
        rows.append(["max error%"] + [self.max_error(m) for m in models])
        return "Fig 4: error distribution (fractions per band)\n" + format_table(
            ["band"] + models, rows
        )


def run(
    num_mixes: int = 10,
    quanta: int = 2,
    config: Optional[SystemConfig] = None,
    seed: int = 42,
    campaign=None,
    workers: int = 1,
    engine: Optional[str] = None,
) -> ErrorDistributionResult:
    config = config or scaled_config()
    if engine:
        config = config.with_engine(engine)
    mixes = default_mixes(num_mixes, config.num_cores, seed=seed)
    survey = survey_errors(
        mixes,
        config,
        quanta=quanta,
        campaign=campaign,
        workers=workers,
        model_builder=headline_models,
        model_builder_args=(config,),
    )
    return ErrorDistributionResult(survey=survey)
