"""Figure 6: distributions of *alone* miss service times — actually
measured versus estimated by FST, PTCA and ASM.

For each memory-intensive workload and application we obtain:

* **actual**: mean miss service time measured in a real alone run;
* **ASM**: the epoch-based aggregate estimate (``epoch-miss-time /
  epoch-misses`` while prioritised);
* **FST / PTCA**: the per-request estimate (measured shared latency minus
  attributed interference, averaged).

The paper's point: per-request subtraction misestimates the distribution,
and sampling makes PTCA's estimates far worse, while ASM's aggregate
estimate tracks the measured distribution closely.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import SystemConfig, scaled_config
from repro.experiments.common import format_table, sampled_models, unsampled_models
from repro.harness.runner import AloneRunCache, run_workload
from repro.harness.system import System
from repro.harness import metrics
from repro.models.asm import AsmModel
from repro.models.fst import FstModel
from repro.models.ptca import PtcaModel
from repro.workloads.catalog import CATALOG, intensity_class
from repro.workloads.mixes import WorkloadMix, random_mixes


def _alone_miss_times(
    mix: WorkloadMix, core: int, config: SystemConfig, cycles: int
) -> tuple:
    """Measure the application's alone miss service time two ways:

    * per-request mean latency — the quantity FST/PTCA estimate;
    * union-based (cycles with >= 1 outstanding miss / misses) — exactly
      Table 1's ``miss-time / misses`` definition that ASM estimates.
      Under memory-level parallelism the union average is smaller than the
      per-request mean; comparing each model against its own quantity is
      the meaningful accuracy check.
    """
    alone = dataclasses.replace(config, num_cores=1)
    system = System(alone, [mix.trace_for_core(core)], enable_epochs=False)
    latencies: List[int] = []
    system.controller.completion_listeners.append(
        lambda req: latencies.append(req.latency)
    )
    union_busy = 0
    outstanding = 0
    last_change = 0
    misses = 0

    def service_listener(c, is_hit, is_start, now):
        nonlocal union_busy, outstanding, last_change, misses
        if is_hit:
            return
        if outstanding > 0:
            union_busy += now - last_change
        last_change = now
        if is_start:
            outstanding += 1
            misses += 1
        else:
            outstanding -= 1

    system.hierarchy.service_listeners.append(service_listener)
    system.run_until(cycles)
    per_request = (
        metrics.mean(latencies) + config.llc.latency if latencies else float("nan")
    )
    union_avg = union_busy / misses if misses else float("nan")
    return per_request, union_avg


@dataclass
class LatencyDistributionResult:
    # model -> list of per-(workload, app) average alone miss times
    estimates: Dict[str, List[float]] = field(default_factory=dict)
    sampled: bool = False

    # Each model is judged against the quantity it estimates: ASM against
    # the union-based average (Table 1 semantics), FST/PTCA against the
    # per-request mean.
    REFERENCE = {"asm": "actual_union", "fst": "actual", "ptca": "actual"}

    def mean_abs_deviation(self, model: str) -> float:
        actual = self.estimates[self.REFERENCE.get(model, "actual")]
        est = self.estimates[model]
        pairs = [
            (a, e) for a, e in zip(actual, est) if a == a and e == e  # drop NaN
        ]
        return metrics.mean(abs(e - a) / a * 100.0 for a, e in pairs)

    def spread_ratio(self, model: str) -> float:
        """Estimated-to-measured distribution-spread ratio (1.0 = the
        estimates have the same dispersion as the measured reference) —
        the Figure 6 'distribution shape' criterion."""
        reference = self.estimates[self.REFERENCE.get(model, "actual")]
        est = [v for v in self.estimates[model] if v == v]
        ref = [v for v in reference if v == v]
        ref_spread = metrics.stdev(ref)
        if ref_spread == 0:
            return float("nan")
        return metrics.stdev(est) / ref_spread

    def format_table(self) -> str:
        rows = []
        for model in self.estimates:
            values = [v for v in self.estimates[model] if v == v]
            rows.append(
                [
                    model,
                    metrics.mean(values),
                    metrics.stdev(values),
                    0.0
                    if model.startswith("actual")
                    else self.mean_abs_deviation(model),
                ]
            )
        mode = "sampled" if self.sampled else "unsampled"
        return (
            f"Fig 6: alone miss service time estimates ({mode}), cycles\n"
            "(asm is compared against actual_union — the Table 1 union\n"
            " semantics it estimates; fst/ptca against the per-request mean)\n"
            + format_table(
                ["source", "mean", "stdev", "dev_from_reference%"], rows
            )
        )


def run(
    sampled: bool = False,
    num_mixes: int = 6,
    quanta: int = 2,
    config: Optional[SystemConfig] = None,
    seed: int = 77,
) -> LatencyDistributionResult:
    config = config or scaled_config()
    # The paper uses its most memory-intensive workloads here.
    pool = [s for s in CATALOG.values() if intensity_class(s) != "low"]
    mixes = random_mixes(num_mixes, config.num_cores, seed=seed, pool=pool)
    factories = sampled_models(config) if sampled else unsampled_models()
    result = LatencyDistributionResult(sampled=sampled)
    result.estimates = {
        "actual": [],
        "actual_union": [],
        "asm": [],
        "fst": [],
        "ptca": [],
    }
    cache = AloneRunCache()
    cycles = quanta * config.quantum_cycles

    for mix in mixes:
        models: Dict[str, object] = {}

        def keep(name, factory):
            def make():
                model = factory()
                models[name] = model
                return model

            return make

        wrapped = {name: keep(name, f) for name, f in factories.items()}
        run_workload(mix, config, model_factories=wrapped, quanta=quanta, alone_cache=cache)
        for core in range(mix.num_cores):
            per_request, union_avg = _alone_miss_times(mix, core, config, cycles)
            result.estimates["actual"].append(per_request)
            result.estimates["actual_union"].append(union_avg)
            asm: AsmModel = models["asm"]  # type: ignore[assignment]
            asm_estimate = asm.last_quantum[core].alone_avg_miss_time
            result.estimates["asm"].append(
                asm_estimate if asm_estimate > 0 else float("nan")
            )
            fst: FstModel = models["fst"]  # type: ignore[assignment]
            ptca: PtcaModel = models["ptca"]  # type: ignore[assignment]
            # FST/PTCA per-request estimates start at the DRAM queue; add
            # the LLC lookup to align with the hierarchy-level measurement.
            result.estimates["fst"].append(
                fst.last_alone_miss_latency[core] + config.llc.latency
            )
            result.estimates["ptca"].append(
                ptca.last_alone_miss_latency[core] + config.llc.latency
            )
    return result
