"""Figures 2 and 3: per-benchmark slowdown-estimation error for FST, PTCA
and ASM, without (Fig 2) and with (Fig 3) auxiliary-tag-store sampling /
reduced pollution filters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import SystemConfig, scaled_config
from repro.experiments.common import (
    ErrorSurvey,
    default_mixes,
    format_table,
    sampled_models,
    survey_errors,
    unsampled_models,
)
from repro.workloads.catalog import CATALOG


@dataclass
class ErrorComparisonResult:
    survey: ErrorSurvey
    sampled: bool

    def format_table(self) -> str:
        models = self.survey.model_names
        # Per-benchmark rows, sorted the way the paper plots them: by suite
        # then by increasing memory intensity.
        order = sorted(
            CATALOG.values(), key=lambda s: (s.suite, s.apki)
        )
        rows: List[List[object]] = []
        app_means = {m: self.survey.app_means(m) for m in models}
        for spec in order:
            if not any(spec.name in app_means[m] for m in models):
                continue
            rows.append(
                [f"{spec.suite}:{spec.name}"]
                + [app_means[m].get(spec.name, float("nan")) for m in models]
            )
        rows.append(["== average =="] + [self.survey.mean_error(m) for m in models])
        title = (
            "Fig 3: error (%) with sampled ATS / small pollution filter"
            if self.sampled
            else "Fig 2: error (%) with unsampled (full) structures"
        )
        return title + "\n" + format_table(
            ["benchmark"] + [m + "_err%" for m in models], rows
        )


def run(
    sampled: bool,
    num_mixes: int = 10,
    quanta: int = 2,
    config: Optional[SystemConfig] = None,
    seed: int = 42,
    campaign=None,
    workers: int = 1,
    telemetry=None,
    engine: Optional[str] = None,
    fidelity: str = "",
) -> ErrorComparisonResult:
    config = config or scaled_config()
    if engine:
        config = config.with_engine(engine)
    mixes = default_mixes(num_mixes, config.num_cores, seed=seed)
    variant = "sampled" if sampled else "unsampled"
    if telemetry is not None:
        variant += f"+{telemetry.fault_class}@{telemetry.rate:g}"
    survey = survey_errors(
        mixes,
        config,
        quanta=quanta,
        campaign=campaign,
        variant=variant,
        workers=workers,
        model_builder=sampled_models if sampled else unsampled_models,
        model_builder_args=(config,) if sampled else (),
        telemetry=telemetry,
        fidelity=fidelity,
    )
    return ErrorComparisonResult(survey=survey, sampled=sampled)
