"""System configuration objects for the simulated multi-core platform.

The defaults mirror Table 2 of the paper: 4-16 out-of-order cores with a
128-entry instruction window and 3-wide issue, 64KB 4-way private L1 caches,
a 1-4MB 16-way shared last-level cache, and DDR3-1333 (10-10-10) main memory
behind an FR-FCFS memory controller.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import cached_property

CACHE_LINE_SIZE = 64
CACHE_LINE_BITS = 6


@dataclass(frozen=True)
class CoreConfig:
    """Parameters of the trace-driven out-of-order core model."""

    issue_width: int = 3
    window_size: int = 128
    mshr_entries: int = 32
    prefetcher_enabled: bool = False
    prefetch_degree: int = 4
    prefetch_distance: int = 24


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of a set-associative cache."""

    size_bytes: int
    associativity: int
    latency: int
    line_size: int = CACHE_LINE_SIZE

    @cached_property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @cached_property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    def set_index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def validate(self) -> None:
        if self.size_bytes % (self.line_size * self.associativity):
            raise ValueError(
                "cache size must be a multiple of line_size * associativity"
            )
        num_sets = self.num_sets
        if num_sets & (num_sets - 1):
            raise ValueError("number of sets must be a power of two")


@dataclass(frozen=True)
class DramConfig:
    """DDR3 timing parameters, expressed in CPU cycles.

    The paper models DDR3-1333 (10-10-10) behind a 5.3GHz core clock, i.e.
    one DRAM clock is sleved to 8 CPU cycles (5.3GHz / 666.5MHz ~= 8).
    The (10-10-10) triad is CL-tRCD-tRP in DRAM cycles.
    """

    channels: int = 1
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    row_size_bytes: int = 8192
    cpu_cycles_per_dram_cycle: int = 8
    cl_dram_cycles: int = 10
    trcd_dram_cycles: int = 10
    trp_dram_cycles: int = 10
    tras_dram_cycles: int = 24
    burst_dram_cycles: int = 4
    request_buffer_entries: int = 128
    # Refresh (optional; off by default so headline numbers match the
    # calibrated configuration): every tREFI the channel stalls for tRFC
    # and all row buffers close. DDR3 defaults: tREFI 7.8us, tRFC 160ns
    # (2Gb) at a 1.5ns DRAM clock.
    refresh_enabled: bool = False
    trefi_dram_cycles: int = 5200
    trfc_dram_cycles: int = 107

    # Derived CPU-cycle latencies are cached: they sit on the per-request
    # service path, and ``cached_property`` writes straight into the
    # instance ``__dict__``, which works on a frozen dataclass (fields,
    # repr, equality and hashing are unaffected).
    @cached_property
    def cas_latency(self) -> int:
        return self.cl_dram_cycles * self.cpu_cycles_per_dram_cycle

    @cached_property
    def trcd(self) -> int:
        return self.trcd_dram_cycles * self.cpu_cycles_per_dram_cycle

    @cached_property
    def trp(self) -> int:
        return self.trp_dram_cycles * self.cpu_cycles_per_dram_cycle

    @cached_property
    def tras(self) -> int:
        return self.tras_dram_cycles * self.cpu_cycles_per_dram_cycle

    @cached_property
    def burst_time(self) -> int:
        return self.burst_dram_cycles * self.cpu_cycles_per_dram_cycle

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def trefi(self) -> int:
        return self.trefi_dram_cycles * self.cpu_cycles_per_dram_cycle

    @property
    def trfc(self) -> int:
        return self.trfc_dram_cycles * self.cpu_cycles_per_dram_cycle


@dataclass(frozen=True)
class SystemConfig:
    """Full platform description used by :mod:`repro.harness.system`."""

    num_cores: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=64 * 1024, associativity=4, latency=1
        )
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=2 * 1024 * 1024, associativity=16, latency=20
        )
    )
    dram: DramConfig = field(default_factory=DramConfig)
    # ASM / MISE epoch machinery (Section 5 "Parameters").
    quantum_cycles: int = 5_000_000
    epoch_cycles: int = 10_000
    ats_sampled_sets: int = 64
    # Cycles at the start of each epoch excluded from CAR_alone/RSR_alone
    # measurement: the backlog a stalled application accumulated while not
    # prioritised drains in a burst when its epoch begins, transiently
    # exceeding the steady-state alone rate. The paper's 10K-cycle epochs
    # at full scale amortise this; short scaled epochs need the explicit
    # exclusion (0 disables it — the paper-faithful setting).
    epoch_warmup_cycles: int = 0
    # Execution backend: "event" (the per-callback engine, the default and
    # the correctness oracle), "columnar" (repro.vector: batched array
    # passes, bit-identical counters — see DESIGN.md §9) or "analytic"
    # (repro.analytic: closed-form surrogate, no simulation at all — see
    # docs/fidelity.md). Kept as the last field so campaign-store
    # fingerprints of pre-existing configs are unchanged (see
    # repro.resilience.faults.config_fingerprint).
    engine: str = "event"

    def with_cores(self, num_cores: int) -> "SystemConfig":
        return dataclasses.replace(self, num_cores=num_cores)

    def with_llc_size(self, size_bytes: int) -> "SystemConfig":
        return dataclasses.replace(
            self, llc=dataclasses.replace(self.llc, size_bytes=size_bytes)
        )

    def with_quantum(self, quantum: int, epoch: int) -> "SystemConfig":
        """New quantum/epoch lengths; the epoch warm-up window is clamped
        to at most a fifth of the epoch so short-epoch sweeps stay valid."""
        return dataclasses.replace(
            self,
            quantum_cycles=quantum,
            epoch_cycles=epoch,
            epoch_warmup_cycles=min(self.epoch_warmup_cycles, epoch // 5),
        )

    def with_prefetcher(self, enabled: bool = True) -> "SystemConfig":
        return dataclasses.replace(
            self, core=dataclasses.replace(self.core, prefetcher_enabled=enabled)
        )

    def with_engine(self, engine: str) -> "SystemConfig":
        return dataclasses.replace(self, engine=engine)

    def validate(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        self.l1.validate()
        self.llc.validate()
        if self.epoch_cycles <= 0 or self.quantum_cycles <= 0:
            raise ValueError("quantum and epoch lengths must be positive")
        if self.quantum_cycles % self.epoch_cycles:
            raise ValueError("quantum must be a whole number of epochs")
        if not 0 <= self.epoch_warmup_cycles < self.epoch_cycles:
            raise ValueError("epoch warmup must be shorter than the epoch")
        if self.engine not in ("event", "columnar", "analytic"):
            raise ValueError(
                "engine must be 'event', 'columnar' or 'analytic', "
                f"got {self.engine!r}"
            )


DEFAULT_CONFIG = SystemConfig()


def scaled_config(num_cores: int = 4) -> SystemConfig:
    """The proportionally scaled platform used for the experiments.

    The paper simulates 100M cycles per run with a 2MB LLC and 5M-cycle
    quanta on a C++ cycle-level simulator. A pure-Python reproduction is
    ~10^3 slower, so experiments run on a system scaled down by 8x in both
    cache capacity and time, keeping every *ratio* the paper's phenomena
    depend on intact:

    * LLC 256KB (vs 2MB), still 16-way — same associativity and thus the
      same way-partitioning granularity;
    * quantum 1M cycles, epoch 5K cycles — Q/E = 200 epochs per quantum
      (paper: 500), still ~50 epochs per application on 4 cores;
    * ATS sampling 16 of 256 sets = 1/16 (paper: 64 of 2048 = 1/32);
    * DRAM timing is NOT scaled: real DDR3-1333 parameters, so the
      cache-miss-cost / hit-cost ratio matches real machines.

    Workload footprints in :mod:`repro.workloads.catalog` are calibrated to
    this cache size (see DESIGN.md, substitutions).
    """
    return SystemConfig(
        num_cores=num_cores,
        llc=CacheConfig(size_bytes=256 * 1024, associativity=16, latency=20),
        quantum_cycles=1_000_000,
        epoch_cycles=5_000,
        ats_sampled_sets=16,
        epoch_warmup_cycles=1_000,
    )
