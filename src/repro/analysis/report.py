"""Assemble the archived benchmark outputs into one report.

``build_report(results_dir)`` collects every ``results/*.txt`` the
benchmark suite wrote, pairs each with the paper's reported numbers from
:mod:`repro.analysis.paper_targets`, and returns a single markdown
document (also written to ``results/REPORT.md`` by default).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.analysis.paper_targets import PAPER_TARGETS

# results file stem -> paper-target key
_FILE_TO_TARGET = {
    "fig01_car_proxy": "fig01",
    "fig02_error_unsampled": "fig02",
    "fig03_error_sampled": "fig03",
    "fig04_error_distribution": "fig04",
    "fig05_prefetching": "fig05",
    "fig06_latency_unsampled": "fig06",
    "fig06_latency_sampled": "fig06",
    "db_workloads": "db",
    "sec64_mise_vs_asm": "sec64",
    "fig07_core_count": "fig07",
    "fig08_cache_size": "fig08",
    "table3_quantum_epoch": "table3",
    "fig09_asm_cache": "fig09",
    "fig10_asm_mem": "fig10",
    "sec72_combined": "sec72",
    "fig11_qos": "fig11",
    "ablations": None,
}


def build_report(
    results_dir: Path | str = "results",
    output: Optional[Path | str] = "results/REPORT.md",
) -> str:
    """Build (and optionally write) the combined report."""
    results_dir = Path(results_dir)
    sections = [
        "# Reproduction report",
        "",
        "Generated from the archived benchmark outputs in "
        f"`{results_dir}/`. Paper numbers from Subramanian et al., "
        "MICRO 2015; see EXPERIMENTS.md for scale and deviation notes.",
    ]
    found_any = False
    for stem, target_key in _FILE_TO_TARGET.items():
        path = results_dir / f"{stem}.txt"
        if not path.exists():
            continue
        found_any = True
        sections.append(f"\n## {stem}\n")
        target = PAPER_TARGETS.get(target_key) if target_key else None
        if target is not None:
            sections.append(f"*Paper*: {target.description}.")
            if target.numbers:
                numbers = ", ".join(
                    f"{k}={v:g}" for k, v in target.numbers.items()
                )
                sections.append(f"*Paper numbers*: {numbers}.")
            if target.shape:
                sections.append(f"*Expected shape*: {target.shape}.")
        sections.append("\n```\n" + path.read_text().rstrip() + "\n```")
    if not found_any:
        raise FileNotFoundError(
            f"no benchmark outputs found under {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    report = "\n".join(sections) + "\n"
    if output is not None:
        Path(output).write_text(report)
    return report
