"""The paper's reported numbers, as structured data.

Used by the report builder (and available to downstream users who want to
compare their own runs against the original evaluation). Values are
transcribed from the MICRO 2015 paper; "shape" notes say what a scaled
reproduction is expected to match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class PaperTarget:
    """What the paper reports for one experiment."""

    experiment: str
    description: str
    numbers: Dict[str, float] = field(default_factory=dict)
    shape: str = ""


PAPER_TARGETS: Dict[str, PaperTarget] = {
    target.experiment: target
    for target in [
        PaperTarget(
            "fig01",
            "performance is proportional to shared-cache access rate",
            {},
            shape="(CAR, performance) points lie on the y = x diagonal",
        ),
        PaperTarget(
            "fig02",
            "average slowdown estimation error, unsampled structures (%)",
            {"asm": 9.0, "ptca": 14.7, "fst": 18.5},
            shape="ASM lowest; FST/PTCA worst for memory-intensive and "
            "cache-sensitive benchmarks",
        ),
        PaperTarget(
            "fig03",
            "average error with sampled ATS / small pollution filter (%)",
            {"asm": 9.9, "fst": 29.4, "ptca": 40.4},
            shape="sampling wrecks PTCA (and FST); ASM barely moves",
        ),
        PaperTarget(
            "fig04",
            "error distribution across 400 application instances",
            {
                "asm_within_20pct": 0.9525,
                "fst_within_20pct": 0.7625,
                "ptca_within_20pct": 0.7925,
                "asm_max": 36.0,
                "ptca_max": 87.0,
                "fst_max": 133.0,
            },
            shape="ASM has the fattest low-error mass and smallest tail",
        ),
        PaperTarget(
            "fig05",
            "average error with a stride prefetcher (%)",
            {"asm": 7.5, "ptca": 15.0, "fst": 20.0},
            shape="ASM improves under prefetching; FST/PTCA degrade slightly",
        ),
        PaperTarget(
            "fig06",
            "alone miss service time distributions",
            {},
            shape="ASM tracks the measured distribution; per-request models "
            "deviate, sampled PTCA most",
        ),
        PaperTarget(
            "db",
            "database workloads (TPC-C / YCSB) average error (%)",
            {"asm": 4.0, "ptca": 12.0, "fst": 27.0},
            shape="ASM best on database workloads",
        ),
        PaperTarget(
            "sec64",
            "MISE (memory-only) vs ASM average error (%)",
            {"mise": 22.0, "asm": 9.9},
            shape="modelling cache interference is what closes the gap",
        ),
        PaperTarget(
            "fig07",
            "error vs core count (%)",
            {},
            shape="all models degrade with cores; ASM stays lowest with the "
            "smallest spread and a growing advantage",
        ),
        PaperTarget(
            "fig08",
            "error vs shared cache capacity",
            {},
            shape="ASM most accurate at every capacity (paper: 1-4MB)",
        ),
        PaperTarget(
            "table3",
            "ASM error vs quantum/epoch lengths (%)",
            {
                "Q5M_E10K": 9.9,
                "Q5M_E1K": 17.1,
                "Q1M_E10K": 12.0,
                "Q10M_E10K": 9.2,
            },
            shape="error falls with larger Q; the shortest epoch is worst",
        ),
        PaperTarget(
            "fig09",
            "ASM-Cache fairness/performance vs NoPart/UCP/MCFQ",
            {"unfairness_reduction_16core_vs_ucp_pct": 15.8,
             "performance_gain_16core_vs_ucp_pct": 5.8},
            shape="ASM-Cache fairest at comparable-or-better performance; "
            "gains grow with core count",
        ),
        PaperTarget(
            "fig10",
            "ASM-Mem fairness/performance vs FRFCFS/PARBS/TCM",
            {"fairness_gain_8core_vs_parbs_pct": 5.5,
             "fairness_gain_16core_vs_parbs_pct": 12.0},
            shape="ASM-Mem fairest at comparable/better performance",
        ),
        PaperTarget(
            "sec72",
            "ASM-Cache-Mem vs PARBS+UCP (16-core)",
            {"fairness_gain_pct": 14.6},
            shape="coordinated scheme fairest at performance within 1%",
        ),
        PaperTarget(
            "fig11",
            "ASM-QoS soft slowdown guarantees",
            {"naive_qos_h264ref_min_slowdown": 2.17},
            shape="bound met with far less co-runner damage than Naive-QoS",
        ),
    ]
}


def target_for(experiment: str) -> Optional[PaperTarget]:
    return PAPER_TARGETS.get(experiment)
