"""Plain-text bar charts for terminal-friendly experiment output."""

from __future__ import annotations

from typing import List, Mapping

FULL = "#"


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Render a horizontal bar chart, one row per labelled value.

    ::

        asm   ########                 9.90
        fst   #######################  29.40
    """
    if not values:
        raise ValueError("nothing to chart")
    if width < 1:
        raise ValueError("width must be positive")
    peak = max(values.values())
    if peak < 0:
        raise ValueError("bar charts need non-negative values")
    label_width = max(len(label) for label in values)
    lines: List[str] = []
    for label, value in values.items():
        if value < 0:
            raise ValueError(f"negative value for {label!r}")
        bar = FULL * (round(value / peak * width) if peak else 0)
        lines.append(
            f"{label.ljust(label_width)}  {bar.ljust(width)}  {value:.2f}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 30,
    unit: str = "",
) -> str:
    """Render one bar chart per group with a common scale.

    ``groups`` maps group label -> (series label -> value); all bars share
    the global maximum so groups are visually comparable.
    """
    if not groups:
        raise ValueError("nothing to chart")
    peak = max(
        (value for series in groups.values() for value in series.values()),
        default=0.0,
    )
    label_width = max(
        (len(label) for series in groups.values() for label in series),
        default=0,
    )
    lines: List[str] = []
    for group, series in groups.items():
        lines.append(f"{group}:")
        for label, value in series.items():
            bar = FULL * (round(value / peak * width) if peak else 0)
            lines.append(
                f"  {label.ljust(label_width)}  {bar.ljust(width)}  "
                f"{value:.2f}{unit}"
            )
    return "\n".join(lines)
