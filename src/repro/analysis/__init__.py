"""Post-processing: ASCII charts, paper targets, report assembly."""

from repro.analysis.ascii_chart import bar_chart, grouped_bar_chart
from repro.analysis.paper_targets import PAPER_TARGETS, target_for
from repro.analysis.report import build_report

__all__ = [
    "bar_chart",
    "grouped_bar_chart",
    "PAPER_TARGETS",
    "target_for",
    "build_report",
]
