"""Scalar oracle registry for the columnar kernels (rule DUAL001).

Every public kernel in :mod:`repro.vector.passes` reimplements a piece
of event-loop semantics; the event loop is the bit-exactness oracle
(``tests/test_vector.py`` replays both and compares). This registry
makes that pairing explicit so the linter can hold the two sides
structurally in sync: a constant or branch kind added to a kernel that
does not appear in its oracle is flagged as drift, and a new kernel
without an entry here fails DUAL001 outright.

Keys and values are fully-qualified dotted names. A value may name a
function or a class — a class oracle contributes the structural facts
of its whole body (``dram_locate``'s ``// 64`` lives in
``DramMapping.__init__``, not ``locate``, so the class is the honest
unit of comparison).
"""

from __future__ import annotations

from typing import Dict

#: kernel -> scalar oracle, both as fully-qualified dotted names.
SCALAR_ORACLES: Dict[str, str] = {
    "repro.vector.passes.llc_classify": (
        "repro.cache.auxtag.AuxiliaryTagStore.access"
    ),
    "repro.vector.passes.sampled_set_mask": (
        "repro.cache.auxtag.AuxiliaryTagStore"
    ),
    "repro.vector.passes.dram_locate": "repro.mem.dram.DramMapping",
    "repro.vector.passes.bank_keys": "repro.mem.dram.DramMapping",
    "repro.vector.passes.row_buffer_scan": (
        "repro.mem.dram.service_request"
    ),
    "repro.vector.passes.row_latencies": "repro.mem.dram.service_request",
    "repro.vector.passes.replay_completions": (
        "repro.mem.dram.service_request"
    ),
}

#: kernel -> one-line rationale for *intentional* structural divergence
#: from its oracle. An entry suppresses the DUAL001 drift check (never
#: the registration requirement); keep each rationale reviewable.
DRIFT_WAIVERS: Dict[str, str] = {}

__all__ = ["DRIFT_WAIVERS", "SCALAR_ORACLES"]
