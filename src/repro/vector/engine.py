"""ColumnarEngine: the event engine plus a batched stream plane.

:class:`ColumnarEngine` subclasses :class:`repro.engine.Engine` and keeps
its entire scalar contract — bucket queue, insertion-order ties,
``stop()`` mid-bucket preservation, the wall-clock watchdog with its
first-event check — so a run that schedules only scalar events is the
event engine, bit for bit. On top of it sits a *stream plane*: periodic
work registered with :meth:`ColumnarEngine.schedule_stream` is dispatched
one *window* at a time instead of one callback per firing.

A window spans from the stream's next firing up to (exclusive) the
earliest of: the next scalar bucket event, the next scalar stream firing,
and the run horizon. Within a window a vectorised stream receives one
``vec_callback(start, count, period)`` call covering every firing in the
window — per-phase arithmetic replacing per-event dispatch, which is
where the order-of-magnitude throughput on the microbenchmark comes
from. Windows are truncated at every scalar event, so the cycle-level
interleaving between batched work and scalar callbacks is preserved:
at any cycle the defined order is vectorised streams (registration
order), then scalar streams (registration order), then bucket events
(insertion order).

Contract for ``vec_callback``: it is pure batch arithmetic — it must not
schedule scalar events or stop the engine mid-window (scalar streams and
bucket callbacks retain the full scalar API, including ``stop()``).
Because streams never drain, :meth:`run` requires an explicit ``until``
horizon when any stream is registered.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import time as _time

from repro.engine import (
    _DEADLINE_CHECK_EVENTS,
    Callback,
    DeadlineExceeded,
    Engine,
)

#: ``vec_callback(start_cycle, firing_count, period)`` handles every firing
#: in ``range(start, start + count * period, period)`` at once. It may
#: return the number of logical events it performed (for
#: ``events_executed`` accounting); ``None`` counts one event per firing.
VecCallback = Callable[[int, int, int], Optional[int]]

_INF = 1 << 62


class _Stream:
    __slots__ = ("period", "next_fire", "callback", "vec_callback")

    def __init__(
        self,
        period: int,
        next_fire: int,
        callback: Optional[Callback],
        vec_callback: Optional[VecCallback],
    ) -> None:
        self.period = period
        self.next_fire = next_fire
        self.callback = callback
        self.vec_callback = vec_callback


class ColumnarEngine(Engine):
    """Event engine with windowed dispatch for periodic streams."""

    def __init__(self) -> None:
        super().__init__()
        self._streams: List[_Stream] = []

    # ------------------------------------------------------------------
    def schedule_stream(
        self,
        period: int,
        callback: Optional[Callback] = None,
        *,
        vec_callback: Optional[VecCallback] = None,
        start: Optional[int] = None,
    ) -> None:
        """Register a periodic stream firing every ``period`` cycles.

        Exactly one of ``callback`` (scalar: one call per firing, full
        event semantics) or ``vec_callback`` (one call per window) must
        be given. ``start`` is the absolute cycle of the first firing;
        it defaults to ``now + period``, matching a self-rescheduling
        ``engine.schedule(period, cb)`` callback.
        """
        if period < 1:
            raise ValueError(f"stream period must be >= 1 (got {period})")
        if (callback is None) == (vec_callback is None):
            raise ValueError("exactly one of callback/vec_callback required")
        first = self.now + period if start is None else start
        if first < self.now:
            raise ValueError(
                f"cannot start a stream at {first}, current time is {self.now}"
            )
        self._streams.append(_Stream(period, first, callback, vec_callback))

    # ------------------------------------------------------------------
    def _run_loop(
        self,
        until: Optional[int] = None,
        wall_deadline: Optional[float] = None,
    ) -> int:
        streams = self._streams
        if not streams:
            # Pure scalar run: exactly the event engine.
            return super()._run_loop(until, wall_deadline)
        if until is None:
            raise ValueError("streams never drain: run() requires 'until'")
        self._stopped = False
        self.drained_early = False
        self.stopped_early = False
        executed = 0
        times = self._times
        limit = until
        next_deadline_check = 1 if wall_deadline is not None else _INF

        # ``_stream_loop`` keeps ``self.events_executed`` current at every
        # increment point, so the total survives any exit path — including
        # a callback raising or the watchdog firing mid-run.
        executed = self._stream_loop(
            limit, wall_deadline, next_deadline_check, executed
        )
        self.events_executed = executed
        self.stopped_early = self._stopped
        self.drained_early = False
        if not self._stopped and self.now < limit:
            self.now = limit
        if wall_deadline is not None and not self._stopped and executed:
            self._check_deadline(wall_deadline, executed)
        return self.now

    def _stream_loop(
        self,
        limit: int,
        wall_deadline: Optional[float],
        next_deadline_check: int,
        executed: int,
    ) -> int:
        streams = self._streams
        times = self._times
        while not self._stopped:
            t_scalar = times[0] if times else _INF
            t_vec = _INF
            t_sstream = _INF
            scalar_stream: Optional[_Stream] = None
            for s in streams:
                if s.vec_callback is not None:
                    if s.next_fire < t_vec:
                        t_vec = s.next_fire
                elif s.next_fire < t_sstream:
                    t_sstream = s.next_fire
                    scalar_stream = s
            t = min(t_scalar, t_vec, t_sstream)
            if t >= limit:
                break

            if t_vec <= t_scalar and t_vec <= t_sstream:
                # Window: every vec stream batches up to the next scalar
                # activity. At a tie the window still covers the firing
                # cycle itself (vec work at cycle t runs before scalar
                # work at cycle t).
                wend = min(t_scalar, t_sstream, limit)
                if wend <= t_vec:
                    wend = t_vec + 1
                for s in streams:
                    vec_cb = s.vec_callback
                    if vec_cb is None or s.next_fire >= wend:
                        continue
                    start = s.next_fire
                    count = (wend - start + s.period - 1) // s.period
                    # Time advances to the last firing of this batch (and
                    # never moves backwards across same-window streams).
                    last = start + (count - 1) * s.period
                    if last > self.now:
                        self.now = last
                    consumed = vec_cb(start, count, s.period)
                    executed += count if consumed is None else consumed
                    self.events_executed = executed
                    s.next_fire = start + count * s.period
                if executed >= next_deadline_check:
                    next_deadline_check = executed + _DEADLINE_CHECK_EVENTS
                    self._check_deadline(wall_deadline, executed)
                continue

            if t_sstream <= t_scalar:
                assert scalar_stream is not None
                self.now = t_sstream
                scalar_stream.next_fire = t_sstream + scalar_stream.period
                try:
                    scalar_stream.callback()  # type: ignore[misc]
                finally:
                    executed += 1
                    self.events_executed = executed
                if executed >= next_deadline_check:
                    next_deadline_check = executed + _DEADLINE_CHECK_EVENTS
                    self._check_deadline(wall_deadline, executed)
                continue

            # Scalar bucket events up to the next stream firing; the
            # parent loop supplies the full event-engine semantics
            # (bucket preservation, stop(), watchdog cadence).
            sub_until = min(t_vec, t_sstream, limit)
            try:
                super()._run_loop(sub_until, wall_deadline)
            finally:
                executed += self.events_executed
                self.events_executed = executed
            if self.stopped_early:
                self._stopped = True

        return executed

    def _check_deadline(
        self, wall_deadline: Optional[float], executed: int
    ) -> None:
        if wall_deadline is None:
            return
        # Watchdog only: the wall clock never reaches simulation state.
        now_mono = _time.monotonic()  # lint: ignore[DET001]
        if now_mono > wall_deadline:
            self.events_executed = executed
            raise DeadlineExceeded(
                self.now, self.pending_events, now_mono - wall_deadline
            )
