"""Columnar batched execution backend (the ``--engine columnar`` path).

The event engine (:mod:`repro.engine`) dispatches one Python callback per
memory request; this package processes the same request streams as array
passes:

* :mod:`repro.vector.columns` — the kernel layer: NumPy when the ``fast``
  extra is installed, a pure-Python fallback otherwise. The only module
  allowed to loop per element (rule VEC001).
* :mod:`repro.vector.batch` — per-core request columns (``cycle``,
  ``addr``, ``core``, ``kind``), the cycle-ordered merge, and the
  :class:`~repro.vector.batch.BatchPlane` that stages accesses between
  epoch/measure/quantum boundaries for batched consumers.
* :mod:`repro.vector.engine` — :class:`~repro.vector.engine.ColumnarEngine`,
  an :class:`~repro.engine.Engine` subclass that adds a batched stream
  plane: periodic work is dispatched one window at a time instead of one
  callback per firing.
* :mod:`repro.vector.passes` — vectorized LLC set/tag classification,
  DRAM address mapping and the grouped per-bank row-buffer scan.
* :mod:`repro.vector.ab` — the A/B harness proving the columnar backend
  bit-identical to the event engine (the correctness oracle).

The event engine stays the default; ``SystemConfig.engine = "columnar"``
(or ``--engine columnar`` on the CLI) opts a run into this backend, and
the A/B harness asserts that every counter the five slowdown models read
is unchanged.
"""

from repro.vector.columns import HAVE_NUMPY, backend

__all__ = ["HAVE_NUMPY", "backend"]
