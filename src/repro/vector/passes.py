"""Vectorized array passes over request columns.

Three families, all composed purely from :mod:`repro.vector.columns`
kernels (no per-element loops here — rule VEC001):

* **LLC classification** — set-index / tag extraction and the sampled-set
  mask, one arithmetic pass over the address column. The batched
  auxiliary tag store (:meth:`repro.cache.auxtag.AuxiliaryTagStore.
  access_batch`) builds on these.
* **DRAM mapping** — :class:`repro.mem.dram.DramMapping.locate` over a
  column: ``(channel, bank, row)`` for every request at once.
* **Row-buffer scan** — a grouped per-bank scan classifying every
  request as row hit / closed-row activate / row conflict, and the
  back-to-back latency replay. ``tests/test_vector.py`` validates both
  against the scalar :func:`repro.mem.dram.service_request` oracle.

The row-buffer scan works because the bank state machine is a function
of the *previous request's row in the same bank*: after a stable sort by
bank, ``open_row`` at request *i* is simply ``row[i-1]`` of the same
bank group (a hit keeps the row open, any miss leaves ``row[i]`` open).
The latency replay additionally assumes requests drain back-to-back
(each issued at its predecessor's completion), under which the tRAS
precharge restriction never binds for DDR3-1333 (10-10-10):
``tRCD + CL + burst >= tRAS`` in CPU cycles.
"""

from __future__ import annotations

from typing import Tuple

from repro.config import CacheConfig, DramConfig
from repro.vector import columns as col


# ---------------------------------------------------------------------------
# LLC classification
# ---------------------------------------------------------------------------

def llc_classify(addrs: col.Column, cache: CacheConfig) -> Tuple[col.Column, col.Column]:
    """``(set_index, tag)`` columns for a line-address column."""
    num_sets = cache.num_sets
    return col.mod(addrs, num_sets), col.floordiv(addrs, num_sets)


def sampled_set_mask(set_idx: col.Column, stride: int) -> col.Mask:
    """Which requests fall in ATS-sampled sets (``set % stride == 0``)."""
    if stride <= 1:
        return col.mask_column([True] * col.size(set_idx))
    return col.eq_scalar(col.mod(set_idx, stride), 0)


# ---------------------------------------------------------------------------
# DRAM mapping
# ---------------------------------------------------------------------------

def dram_locate(
    addrs: col.Column, dram: DramConfig
) -> Tuple[col.Column, col.Column, col.Column]:
    """Columnar :meth:`repro.mem.dram.DramMapping.locate`:
    ``(channel, bank, row)`` for every line address."""
    lines_per_row = dram.row_size_bytes // 64
    banks_per_channel = dram.ranks_per_channel * dram.banks_per_rank
    row_index = col.floordiv(addrs, lines_per_row)
    channels = col.mod(row_index, dram.channels)
    per_channel_row = col.floordiv(row_index, dram.channels)
    banks = col.mod(per_channel_row, banks_per_channel)
    rows = col.floordiv(per_channel_row, banks_per_channel)
    return channels, banks, rows


def bank_keys(channels: col.Column, banks: col.Column, dram: DramConfig) -> col.Column:
    """Globally unique bank ids (channel-major) for grouping."""
    banks_per_channel = dram.ranks_per_channel * dram.banks_per_rank
    return col.add(col.mul_scalar(channels, banks_per_channel), banks)


# ---------------------------------------------------------------------------
# Row-buffer state scan
# ---------------------------------------------------------------------------

def row_buffer_scan(
    keys: col.Column, rows: col.Column
) -> Tuple[col.Mask, col.Mask, col.Mask]:
    """Classify each request's row-buffer transition, grouped per bank.

    Returns ``(hits, closed, conflicts)`` masks in the original request
    order. Banks start with closed rows; within each bank group (stable
    order = service order) a request hits iff the bank's previous
    request targeted the same row.
    """
    order = col.stable_order(keys)
    keys_sorted = col.take(keys, order)
    rows_sorted = col.take(rows, order)
    same_bank = col.eq_prev(keys_sorted)
    same_row = col.eq_prev(rows_sorted)
    hits_sorted = col.logical_and(same_bank, same_row)
    closed_sorted = col.logical_not(same_bank)
    conflicts_sorted = col.logical_and(
        same_bank, col.logical_not(hits_sorted)
    )
    n = col.size(keys)
    return (
        col.scatter_mask(n, order, hits_sorted),
        col.scatter_mask(n, order, closed_sorted),
        col.scatter_mask(n, order, conflicts_sorted),
    )


def row_latencies(
    hits: col.Mask, closed: col.Mask, dram: DramConfig
) -> col.Column:
    """Pre-bus service latency per request from its transition class:
    hit = CL, closed = tRCD + CL, conflict = tRP + tRCD + CL."""
    n = col.size(hits)
    base = dram.trp + dram.trcd + dram.cas_latency
    lat = col.full(n, base)
    lat = col.sub(lat, col.mul_scalar(col.mask_to_column(closed), dram.trp))
    lat = col.sub(
        lat, col.mul_scalar(col.mask_to_column(hits), dram.trp + dram.trcd)
    )
    return lat


def replay_completions(
    latencies: col.Column, dram: DramConfig, start: int = 0
) -> col.Column:
    """Completion times of a back-to-back drain on one channel.

    Each request issues at its predecessor's completion, so the data bus
    never idles between bursts and ``completion_i = start +
    sum_{j<=i}(latency_j + burst)`` — one prefix sum instead of a
    sequential replay.
    """
    per_request = col.add_scalar(latencies, dram.burst_time)
    return col.add_scalar(col.cumsum(per_request), start)
