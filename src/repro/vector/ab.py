"""A/B bit-identity harness: the event engine as the columnar oracle.

The columnar backend is only trustworthy because it is *checkable*: every
workload can be run under both engines and compared bit for bit. This
module is that check. It compares, between ``engine='event'`` and
``engine='columnar'`` runs of the same workload:

* every per-quantum record — committed instructions, shared IPC, actual
  slowdowns, and each model's estimates/confidence/degradation (the five
  models: asm, mise, fst, ptca, stfm);
* full experiment JSON output (fig01 CAR-proxy points, fig04 error
  surveys), serialized with sorted keys so the comparison is canonical;
* the cycle-ordered merge guarantee itself: the per-core column streams,
  split and re-merged, must reproduce the event engine's global access
  order exactly.

Comparisons use exact equality on the JSON-serialized structures — no
tolerances. A mismatch report names the quantum/field that diverged.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import SystemConfig, scaled_config
from repro.harness.runner import AloneRunCache, ModelFactory, run_workload
from repro.telemetry.spec import TelemetrySpec
from repro.workloads.mixes import WorkloadMix, random_mixes


@dataclass
class AbReport:
    """Outcome of one A/B comparison: empty ``mismatches`` means bit-identical."""

    label: str
    compared: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def merge(self, other: "AbReport") -> None:
        self.compared += other.compared
        self.mismatches.extend(
            f"{other.label}: {m}" for m in other.mismatches
        )

    def summary(self) -> str:
        verdict = "bit-identical" if self.ok else "MISMATCH"
        lines = [f"ab[{self.label}]: {verdict} ({self.compared} comparisons)"]
        lines.extend(f"  {m}" for m in self.mismatches)
        return "\n".join(lines)


def _canonical(obj: object) -> str:
    """Canonical JSON text; NaN serializes as a token so NaN == NaN holds
    (fig04 ground-truth slowdowns are NaN for stalled cores in both runs)."""
    return json.dumps(obj, sort_keys=True)


def default_model_factories(config: SystemConfig) -> Dict[str, ModelFactory]:
    """All five models, with sampled auxiliary structures where the paper
    samples them — the configuration whose counters the A/B drill defends."""
    from repro.models.asm import AsmModel
    from repro.models.fst import FstModel
    from repro.models.mise import MiseModel
    from repro.models.ptca import PtcaModel
    from repro.models.stfm import StfmModel

    sets = config.ats_sampled_sets
    return {
        "asm": lambda: AsmModel(sampled_sets=sets),
        "fst": lambda: FstModel(),
        "mise": lambda: MiseModel(),
        "ptca": lambda: PtcaModel(sampled_sets=sets),
        "stfm": lambda: StfmModel(),
    }


def compare_runs(
    mix: WorkloadMix,
    config: Optional[SystemConfig] = None,
    quanta: int = 2,
    model_factories: Optional[
        Callable[[SystemConfig], Dict[str, ModelFactory]]
    ] = None,
    telemetry: Optional[TelemetrySpec] = None,
) -> AbReport:
    """Run ``mix`` under both engines and compare every quantum record.

    The alone-run cache is shared between the two runs (alone profiles are
    engine-independent by construction — ``AloneRunCache`` keys exclude the
    backend), so the comparison isolates the shared-run execution path.
    """
    config = config or scaled_config()
    builder = model_factories or default_model_factories
    cache = AloneRunCache()
    report = AbReport(label=f"run:{mix.name}")

    results = {}
    for engine in ("event", "columnar"):
        cfg = config.with_engine(engine)
        results[engine] = run_workload(
            mix,
            cfg,
            model_factories=builder(cfg),
            quanta=quanta,
            alone_cache=cache,
            telemetry=telemetry,
        )

    event_records = results["event"].records
    columnar_records = results["columnar"].records
    if len(event_records) != len(columnar_records):
        report.mismatches.append(
            f"quantum count differs: {len(event_records)} vs "
            f"{len(columnar_records)}"
        )
        return report
    for ev, co in zip(event_records, columnar_records):
        report.compared += 1
        d_ev = dataclasses.asdict(ev)
        d_co = dataclasses.asdict(co)
        for key in d_ev:
            if _canonical(d_ev[key]) != _canonical(d_co[key]):
                report.mismatches.append(
                    f"quantum {ev.index} field {key!r}: "
                    f"{d_ev[key]!r} != {d_co[key]!r}"
                )
    return report


def compare_mixes(
    num_mixes: int = 2,
    num_cores: int = 4,
    quanta: int = 2,
    config: Optional[SystemConfig] = None,
    seed: int = 42,
    telemetry: Optional[TelemetrySpec] = None,
) -> AbReport:
    """A/B over a stratified random workload sample (the standard drill)."""
    config = config or scaled_config(num_cores)
    report = AbReport(label=f"mixes:{num_mixes}x{num_cores}c")
    for mix in random_mixes(num_mixes, num_cores, seed=seed):
        report.merge(
            compare_runs(mix, config, quanta=quanta, telemetry=telemetry)
        )
    return report


# ---------------------------------------------------------------------------
# Experiment-level JSON comparisons
# ---------------------------------------------------------------------------

def _fig01_json(config: SystemConfig, apps: Sequence[str], cycles: int) -> str:
    from repro.experiments import fig01_car_proxy

    result = fig01_car_proxy.run(
        apps=apps,
        intensities=(0.25, 0.7),
        cache_pressures=(0.8,),
        cycles=cycles,
        config=config,
    )
    return _canonical({app: points for app, points in result.points.items()})


def compare_fig01(
    config: Optional[SystemConfig] = None,
    apps: Sequence[str] = ("bzip2", "soplex"),
    cycles: int = 100_000,
) -> AbReport:
    """fig01 CAR-proxy points must serialize identically under both engines."""
    config = config or scaled_config()
    report = AbReport(label="fig01", compared=1)
    event = _fig01_json(config.with_engine("event"), apps, cycles)
    columnar = _fig01_json(config.with_engine("columnar"), apps, cycles)
    if event != columnar:
        report.mismatches.append("fig01 JSON output differs between engines")
    return report


def _survey_json(survey: object) -> str:
    return _canonical(
        {
            "model_names": getattr(survey, "model_names"),
            "overall": getattr(survey, "overall"),
            "per_app": getattr(survey, "per_app"),
            "per_workload": getattr(survey, "per_workload"),
        }
    )


def compare_fig04(
    num_mixes: int = 2,
    quanta: int = 2,
    config: Optional[SystemConfig] = None,
    seed: int = 42,
) -> AbReport:
    """fig04 error surveys must serialize identically under both engines."""
    from repro.experiments import fig04_error_distribution

    config = config or scaled_config()
    report = AbReport(label="fig04", compared=1)
    texts = {}
    for engine in ("event", "columnar"):
        result = fig04_error_distribution.run(
            num_mixes=num_mixes,
            quanta=quanta,
            config=config.with_engine(engine),
            seed=seed,
        )
        texts[engine] = _survey_json(result.survey)
    if texts["event"] != texts["columnar"]:
        report.mismatches.append("fig04 survey JSON differs between engines")
    return report


# ---------------------------------------------------------------------------
# Merge-order guarantee
# ---------------------------------------------------------------------------

def check_merge_order(
    mix: Optional[WorkloadMix] = None,
    config: Optional[SystemConfig] = None,
    cycles: int = 50_000,
    seed: int = 7,
) -> AbReport:
    """Split-then-merge must reproduce the event engine's access order.

    Runs a shared workload under the event engine, captures the global
    access stream via an access listener, splits it into per-core column
    streams and merges them back with
    :func:`repro.vector.batch.merge_streams`. The merged columns must
    equal the captured stream element for element — the cycle-ordered,
    arrival-tie-broken merge is what lets per-core passes stand in for
    the interleaved event order.
    """
    from repro.harness.system import System
    from repro.vector import columns as col
    from repro.vector.batch import RequestBatch, merge_streams, split_by_core

    config = config or scaled_config()
    if mix is None:
        mix = random_mixes(1, config.num_cores, seed=seed)[0]
    captured: List[tuple] = []

    system = System(config.with_engine("event"), mix.traces(), seed=mix.seed)
    system.hierarchy.access_listeners.append(
        lambda core, addr, is_write, hit, now: captured.append(
            (now, addr, core, is_write, hit)
        )
    )
    system.run_until(cycles)

    batch = RequestBatch(
        cycles=col.column([c[0] for c in captured]),
        addrs=col.column([c[1] for c in captured]),
        cores=col.column([c[2] for c in captured]),
        kinds=col.mask_column([c[3] for c in captured]),
        hits=col.mask_column([c[4] for c in captured]),
    )
    merged = merge_streams(split_by_core(batch))
    round_trip = list(
        zip(
            col.tolist(merged.cycles),
            col.tolist(merged.addrs),
            col.tolist(merged.cores),
            [bool(k) for k in col.tolist(merged.kinds)],
            [bool(h) for h in col.tolist(merged.hits)],
        )
    )
    report = AbReport(label="merge-order", compared=len(captured))
    if round_trip != captured:
        first = next(
            (i for i, (a, b) in enumerate(zip(round_trip, captured)) if a != b),
            min(len(round_trip), len(captured)),
        )
        report.mismatches.append(
            f"merge order diverges at element {first} of {len(captured)}"
        )
    return report


# ---------------------------------------------------------------------------
# Full drill
# ---------------------------------------------------------------------------

def run_ab(
    num_mixes: int = 2,
    quanta: int = 2,
    num_cores: int = 4,
    seed: int = 42,
    config: Optional[SystemConfig] = None,
    include_experiments: bool = True,
    telemetry_faults: Optional[str] = "dropped-read:0.05",
) -> AbReport:
    """The standard A/B drill CI runs: workload records, merge order, the
    experiment JSON outputs, and one telemetry-faulted arm (faults are
    injected deterministically, so they too must be bit-identical)."""
    config = config or scaled_config(num_cores)
    report = AbReport(label="ab")
    report.merge(
        compare_mixes(num_mixes, num_cores, quanta, config=config, seed=seed)
    )
    report.merge(check_merge_order(config=config, seed=seed))
    if telemetry_faults:
        spec = TelemetrySpec.parse(telemetry_faults, seed=seed)
        mix = random_mixes(1, num_cores, seed=seed + 1)[0]
        faulted = compare_runs(mix, config, quanta=quanta, telemetry=spec)
        faulted.label = f"telemetry:{telemetry_faults}"
        report.merge(faulted)
    if include_experiments:
        report.merge(compare_fig01(config=config))
        report.merge(compare_fig04(num_mixes=1, quanta=quanta, config=config, seed=seed))
    return report


__all__ = [
    "AbReport",
    "check_merge_order",
    "compare_fig01",
    "compare_fig04",
    "compare_mixes",
    "compare_runs",
    "run_ab",
]
