"""Columnar kernels: the only :mod:`repro.vector` module that may loop.

Every hot pass in the columnar backend is composed from these primitives.
With NumPy installed (the optional ``fast`` extra) each kernel is one
vectorised array operation; without it a pure-Python fallback keeps
``pip install repro`` dependency-free. The per-element fallback loops
live here and only here — rule VEC001 forbids them in the rest of the
package, because a Python loop over a column re-creates exactly the
per-event dispatch cost the backend exists to remove.

Columns are ``int64`` NumPy arrays in the fast path and plain Python
lists in the fallback; masks are boolean arrays / lists of bool. Both
backends are bit-identical: every kernel is integer arithmetic plus
stable ordering, so a consumer cannot tell which one produced its
counts (the A/B tests assert this).
"""

from __future__ import annotations

import importlib
from typing import Any, Dict, Iterator, List, Sequence, Tuple

# NumPy is optional (the ``fast`` extra); ``Any`` keeps the module
# type-checkable without numpy stubs installed.
_np: Any = None
try:  # pragma: no cover - exercised via both CI legs
    _np = importlib.import_module("numpy")
except Exception:  # pragma: no cover - numpy-free environments
    _np = None

HAVE_NUMPY: bool = _np is not None

#: A column of int64 values: ``numpy.ndarray`` or ``List[int]``.
Column = Any
#: A boolean mask aligned with a column: bool ndarray or ``List[bool]``.
Mask = Any

# Tests and the fallback CI leg force the pure-Python path even when
# numpy is importable, so both implementations stay covered everywhere.
_force_fallback = False


def force_fallback(enabled: bool) -> None:
    """Force the pure-Python kernels even when NumPy is available."""
    global _force_fallback
    _force_fallback = enabled


def use_numpy() -> bool:
    """Whether kernels currently run on NumPy."""
    return HAVE_NUMPY and not _force_fallback


def backend() -> str:
    """Name of the active kernel backend: ``"numpy"`` or ``"python"``."""
    return "numpy" if use_numpy() else "python"


# ---------------------------------------------------------------------------
# Construction / conversion
# ---------------------------------------------------------------------------

def column(values: Sequence[int]) -> Column:
    """Build a column from a staged Python list."""
    if use_numpy():
        return _np.asarray(values, dtype=_np.int64)
    return list(values)


def mask_column(values: Sequence[bool]) -> Mask:
    if use_numpy():
        return _np.asarray(values, dtype=bool)
    return list(values)


def full(n: int, value: int) -> Column:
    """A column of ``n`` copies of ``value``."""
    if use_numpy():
        return _np.full(n, value, dtype=_np.int64)
    return [value] * n


def concat(cols: Sequence[Column]) -> Column:
    """Concatenate columns in order."""
    if use_numpy():
        if not cols:
            return _np.zeros(0, dtype=_np.int64)
        return _np.concatenate([_np.asarray(c, dtype=_np.int64) for c in cols])
    out: List[int] = []
    for c in cols:
        out.extend(c)
    return out


def concat_masks(masks: Sequence[Mask]) -> Mask:
    if use_numpy():
        if not masks:
            return _np.zeros(0, dtype=bool)
        return _np.concatenate([_np.asarray(m, dtype=bool) for m in masks])
    out: List[bool] = []
    for m in masks:
        out.extend(m)
    return out


def tolist(col: Column) -> List[int]:
    if isinstance(col, list):
        return col
    return [int(v) for v in col]


def size(col: Column) -> int:
    return len(col)


# ---------------------------------------------------------------------------
# Arithmetic passes (LLC set/tag extraction, DRAM mapping)
# ---------------------------------------------------------------------------

def mod(col: Column, divisor: int) -> Column:
    if use_numpy() and not isinstance(col, list):
        return col % divisor
    return [v % divisor for v in col]


def floordiv(col: Column, divisor: int) -> Column:
    if use_numpy() and not isinstance(col, list):
        return col // divisor
    return [v // divisor for v in col]


def eq_scalar(col: Column, value: int) -> Mask:
    if use_numpy() and not isinstance(col, list):
        return col == value
    return [v == value for v in col]


def add_scalar(col: Column, value: int) -> Column:
    if use_numpy() and not isinstance(col, list):
        return col + value
    return [v + value for v in col]


def mul_scalar(col: Column, value: int) -> Column:
    if use_numpy() and not isinstance(col, list):
        return col * value
    return [v * value for v in col]


# ---------------------------------------------------------------------------
# Masks
# ---------------------------------------------------------------------------

def logical_and(a: Mask, b: Mask) -> Mask:
    if use_numpy() and not isinstance(a, list):
        return a & b
    return [x and y for x, y in zip(a, b)]


def logical_not(a: Mask) -> Mask:
    if use_numpy() and not isinstance(a, list):
        return ~a
    return [not x for x in a]


def count_true(mask: Mask) -> int:
    if use_numpy() and not isinstance(mask, list):
        return int(_np.count_nonzero(mask))
    return sum(1 for x in mask if x)


def true_indices(mask: Mask) -> List[int]:
    if use_numpy() and not isinstance(mask, list):
        return [int(i) for i in _np.nonzero(mask)[0]]
    return [i for i, x in enumerate(mask) if x]


def mask_to_column(mask: Mask) -> Column:
    """Convert a boolean mask to a 0/1 int column (for mask arithmetic)."""
    if use_numpy() and not isinstance(mask, list):
        return mask.astype(_np.int64)
    return [1 if x else 0 for x in mask]


def add(a: Column, b: Column) -> Column:
    if use_numpy() and not isinstance(a, list):
        return a + b
    return [x + y for x, y in zip(a, b)]


def sub(a: Column, b: Column) -> Column:
    if use_numpy() and not isinstance(a, list):
        return a - b
    return [x - y for x, y in zip(a, b)]


def cumsum(col: Column) -> Column:
    """Running (inclusive) prefix sum."""
    if use_numpy() and not isinstance(col, list):
        return _np.cumsum(col)
    out: List[int] = []
    total = 0
    for v in col:
        total += v
        out.append(total)
    return out


# ---------------------------------------------------------------------------
# Gather / ordering
# ---------------------------------------------------------------------------

def take(col: Column, indices: Sequence[int]) -> Column:
    if use_numpy() and not isinstance(col, list):
        return col[_np.asarray(indices, dtype=_np.int64)]
    return [col[i] for i in indices]


def stable_order(keys: Column) -> List[int]:
    """Indices that sort ``keys`` ascending, ties in original order."""
    if use_numpy() and not isinstance(keys, list):
        return [int(i) for i in _np.argsort(keys, kind="stable")]
    return sorted(range(len(keys)), key=keys.__getitem__)


def group_by(keys: Column) -> Iterator[Tuple[int, List[int]]]:
    """Yield ``(key, original_indices)`` groups, keys ascending, each
    group's indices in original (stable) order.

    This is the grouped-scan primitive: the ATS groups accesses by set
    index, the DRAM pass groups requests by bank.
    """
    if use_numpy() and not isinstance(keys, list):
        order = _np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        # Group boundaries: positions where the sorted key changes.
        boundaries = _np.nonzero(sorted_keys[1:] != sorted_keys[:-1])[0] + 1
        start = 0
        order_list = [int(i) for i in order]
        for end in [int(b) for b in boundaries] + [len(order_list)]:
            if end > start:
                yield int(sorted_keys[start]), order_list[start:end]
            start = end
        return
    groups: Dict[int, List[int]] = {}
    for i, key in enumerate(keys):
        groups.setdefault(key, []).append(i)
    for key in sorted(groups):
        yield key, groups[key]


def eq_prev(col: Column) -> Mask:
    """Elementwise ``col[i] == col[i-1]``; position 0 is False.

    The building block of run-length state scans: after a stable sort by
    bank, ``eq_prev(bank) & eq_prev(row)`` marks row-buffer hits.
    """
    if use_numpy() and not isinstance(col, list):
        out = _np.zeros(len(col), dtype=bool)
        if len(col) > 1:
            out[1:] = col[1:] == col[:-1]
        return out
    return [i > 0 and col[i] == col[i - 1] for i in range(len(col))]


def scatter_mask(n: int, indices: Sequence[int], values: Mask) -> Mask:
    """Inverse of :func:`take` for masks: ``out[indices[j]] = values[j]``."""
    if use_numpy() and not isinstance(values, list):
        out = _np.zeros(n, dtype=bool)
        out[_np.asarray(indices, dtype=_np.int64)] = values
        return out
    out_list = [False] * n
    for j, i in enumerate(indices):
        out_list[i] = bool(values[j])
    return out_list


def merge_order(cycles: Column, seqs: Column) -> List[int]:
    """Stable merge order for per-core streams: ascending cycle, ties by
    the original arrival sequence number. This is the cycle-ordered merge
    that reproduces the event engine's global service order."""
    if use_numpy() and not isinstance(cycles, list):
        # lexsort: last key is primary.
        return [int(i) for i in _np.lexsort((seqs, cycles))]
    return sorted(range(len(cycles)), key=lambda i: (cycles[i], seqs[i]))


# ---------------------------------------------------------------------------
# Firing-window arithmetic (ColumnarEngine stream plane)
# ---------------------------------------------------------------------------

def firing_count(start: int, stop: int, step: int) -> int:
    """Number of firings of a periodic stream in ``[start, stop)``."""
    if start >= stop:
        return 0
    return (stop - start + step - 1) // step


def firing_cycles(start: int, count: int, step: int) -> Column:
    """The firing cycles themselves, as a column."""
    if use_numpy():
        return start + step * _np.arange(count, dtype=_np.int64)
    return [start + step * k for k in range(count)]
