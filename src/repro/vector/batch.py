"""Request batches: columnar spans of demand accesses, and the staging plane.

The event engine notifies access listeners one call per request. In
columnar mode the :class:`BatchPlane` replaces that per-request fan-out
for the models that can consume batches (ASM, PTCA): it registers a
single access listener that *stages* each request into parallel arrays
and flushes them to batch consumers at exactly the boundaries where the
models' classification state changes — epoch start, measurement start,
and the quantum boundary. Between two consecutive boundaries every
staged request was classified identically by the scalar listeners
(``_measuring`` is constant over the span), so one batched counter
update per span is bit-identical to one scalar update per request
(counter increments commute; see ``repro.telemetry.counters``: faults
apply at read time).

:class:`RequestBatch` carries the span as columns — ``cycle``, ``addr``,
``core``, ``kind`` (write flag) plus the LLC ``hit`` outcome — in global
service order. :func:`split_by_core` / :func:`merge_streams` round-trip
the batch through per-core streams: the merge is cycle-ordered with ties
broken by arrival sequence, which reproduces the event engine's global
order exactly (the A/B harness asserts this).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.vector import columns as col

BatchConsumer = Callable[["RequestBatch"], None]


class RequestBatch:
    """One flushed span of demand accesses, in global service order."""

    __slots__ = ("cycles", "addrs", "cores", "kinds", "hits", "_core_groups")

    def __init__(
        self,
        cycles: col.Column,
        addrs: col.Column,
        cores: col.Column,
        kinds: col.Mask,
        hits: col.Mask,
    ) -> None:
        self.cycles = cycles
        self.addrs = addrs
        self.cores = cores
        self.kinds = kinds
        self.hits = hits
        # Per-core index groups are computed once and shared by every
        # consumer of the batch (ASM and PTCA group identically).
        self._core_groups: Optional[List[Tuple[int, List[int]]]] = None

    def __len__(self) -> int:
        return col.size(self.addrs)

    def groups_by_core(self) -> List[Tuple[int, List[int]]]:
        """``(core, original_indices)`` groups; indices in service order."""
        if self._core_groups is None:
            self._core_groups = list(col.group_by(self.cores))
        return self._core_groups


class CoreStream:
    """One core's requests in arrival order, with global sequence numbers.

    ``seqs`` records each request's position in the global service order;
    :func:`merge_streams` uses it to break same-cycle ties so the merged
    batch reproduces the event engine's ordering bit for bit.
    """

    __slots__ = ("core", "cycles", "addrs", "kinds", "hits", "seqs")

    def __init__(
        self,
        core: int,
        cycles: col.Column,
        addrs: col.Column,
        kinds: col.Mask,
        hits: col.Mask,
        seqs: col.Column,
    ) -> None:
        self.core = core
        self.cycles = cycles
        self.addrs = addrs
        self.kinds = kinds
        self.hits = hits
        self.seqs = seqs

    def __len__(self) -> int:
        return col.size(self.addrs)


def split_by_core(batch: RequestBatch) -> List[CoreStream]:
    """Extract per-core streams (each in that core's arrival order)."""
    streams: List[CoreStream] = []
    for core, idx in batch.groups_by_core():
        streams.append(
            CoreStream(
                core=core,
                cycles=col.take(batch.cycles, idx),
                addrs=col.take(batch.addrs, idx),
                kinds=col.take(batch.kinds, idx),
                hits=col.take(batch.hits, idx),
                seqs=col.column(idx),
            )
        )
    return streams


def merge_streams(streams: Sequence[CoreStream]) -> RequestBatch:
    """Cycle-ordered merge of per-core columns into one global batch.

    Requests are ordered by ascending cycle with same-cycle ties broken
    by global arrival sequence — the interleaving-conflict resolution
    that makes the merged service order identical to the event engine's.
    """
    cycles = col.concat([s.cycles for s in streams])
    addrs = col.concat([s.addrs for s in streams])
    cores = col.concat([col.full(len(s), s.core) for s in streams])
    kinds = col.concat_masks([s.kinds for s in streams])
    hits = col.concat_masks([s.hits for s in streams])
    seqs = col.concat([s.seqs for s in streams])
    order = col.merge_order(cycles, seqs)
    return RequestBatch(
        cycles=col.take(cycles, order),
        addrs=col.take(addrs, order),
        cores=col.take(cores, order),
        kinds=col.take(kinds, order),
        hits=col.take(hits, order),
    )


class BatchPlane:
    """Staging arena between the memory hierarchy and batch consumers.

    The plane's :meth:`stage` method has the access-listener signature
    and appends each request to parallel staging lists; :meth:`flush`
    converts them to columns and hands the batch to every registered
    consumer. The system wires ``flush`` as the *first* epoch, measure
    and quantum listener, so consumers always see a span flushed before
    any model callback mutates its classification state.
    """

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores
        self._cycles: List[int] = []
        self._addrs: List[int] = []
        self._cores: List[int] = []
        self._kinds: List[bool] = []
        self._hits: List[bool] = []
        self._consumers: List[BatchConsumer] = []
        # Set by System when the plane is wired to a hierarchy; staging
        # starts lazily with the first consumer so event-engine parity
        # costs nothing when no model batches.
        self._listener_host: Optional[object] = None
        self._listening = False
        self.batches_flushed = 0
        self.requests_staged = 0

    # -- wiring --------------------------------------------------------
    def bind(self, hierarchy: object) -> None:
        """Attach to a hierarchy; staging begins at first registration."""
        self._listener_host = hierarchy
        if self._consumers:  # pragma: no cover - register-then-bind order
            self._ensure_listening()

    def register(self, consumer: BatchConsumer) -> None:
        self._consumers.append(consumer)
        self._ensure_listening()

    def _ensure_listening(self) -> None:
        if self._listening or self._listener_host is None:
            return
        listeners = getattr(self._listener_host, "access_listeners")
        listeners.append(self.stage)
        self._listening = True

    # -- hot path ------------------------------------------------------
    def stage(
        self, core: int, line_addr: int, is_write: bool, hit: bool, now: int
    ) -> None:
        """Access-listener hook: append one request to the staging span."""
        self._cycles.append(now)
        self._addrs.append(line_addr)
        self._cores.append(core)
        self._kinds.append(is_write)
        self._hits.append(hit)

    # -- boundaries ----------------------------------------------------
    def flush(self) -> None:
        """Convert the staged span to columns and feed every consumer."""
        if not self._addrs:
            return
        batch = RequestBatch(
            cycles=col.column(self._cycles),
            addrs=col.column(self._addrs),
            cores=col.column(self._cores),
            kinds=col.mask_column(self._kinds),
            hits=col.mask_column(self._hits),
        )
        self.requests_staged += len(batch)
        self.batches_flushed += 1
        self._cycles = []
        self._addrs = []
        self._cores = []
        self._kinds = []
        self._hits = []
        for consumer in self._consumers:
            consumer(batch)

    def flush_owner(self, owner: int) -> None:
        """Epoch/measure-listener adapter (ignores the owner argument)."""
        self.flush()
