"""Deterministic process/IO fault plans for durability drills.

A :class:`FaultPlan` describes *exactly one* way this process is allowed
to misbehave while persisting state:

* **kill** — the process SIGKILLs itself (a real ``kill -9``, no Python
  cleanup) when a named crash point is reached for the n-th time, e.g.
  ``kill:mid_record@runs.jsonl#2`` dies halfway through the second
  record appended to ``runs.jsonl``;
* **io** — store writes fail in a named way (``enospc`` raises
  ``OSError(ENOSPC)``, ``partial_write`` persists a prefix of the data
  and then raises, ``slow_fsync`` sleeps before each fsync), gated by a
  deterministic per-site rate draw.

Plans are activated either programmatically (:func:`set_plan`, used by
unit tests) or through the ``REPRO_CHAOS`` environment variable, which
is how the chaos harness reaches a *real* campaign subprocess — the
variable propagates into worker pools for free. All randomness flows
from sha256 draws keyed by (seed, site) exactly like the telemetry
fault injectors, so a fault stream replays bit-identically.

Spec grammar (``;``-separated directives)::

    kill:<point>[@<file>][#<nth>]     crash points: before_append,
                                      mid_record, after_append,
                                      before_replace, after_replace
    io:<fault>[@<file>][:<rate>]      faults: enospc, partial_write,
                                      slow_fsync
    seed:<int>                        sha256 seed for the rate draws

``<file>`` matches on basename (empty = every file); ``<nth>`` is
1-based (default 1). Example: ``REPRO_CHAOS='kill:after_append@alone.jsonl#3'``.
"""

from __future__ import annotations

import errno
import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.telemetry.spec import fault_u01

CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Named crash points the atomic-write helpers announce.
CRASH_POINTS: Tuple[str, ...] = (
    "before_append",
    "mid_record",
    "after_append",
    "before_replace",
    "after_replace",
)

#: Supported IO fault shapes.
IO_FAULTS: Tuple[str, ...] = ("enospc", "partial_write", "slow_fsync")


class ChaosSpecError(ValueError):
    """The ``REPRO_CHAOS`` spec string could not be parsed."""


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic process/IO misbehaviour plan.

    ``kill_point``/``kill_file``/``kill_nth`` select a self-SIGKILL at a
    named crash point; ``io_fault``/``io_file``/``io_rate`` select a
    write-path fault. A plan may carry both (the kill typically fires
    first). ``slow_fsync_s`` is the injected fsync latency.
    """

    kill_point: Optional[str] = None
    kill_file: str = ""
    kill_nth: int = 1
    io_fault: Optional[str] = None
    io_file: str = ""
    io_rate: float = 1.0
    seed: int = 0
    slow_fsync_s: float = 0.01

    def __post_init__(self) -> None:
        if self.kill_point is not None and self.kill_point not in CRASH_POINTS:
            raise ChaosSpecError(
                f"unknown crash point {self.kill_point!r}; "
                f"valid: {', '.join(CRASH_POINTS)}"
            )
        if self.io_fault is not None and self.io_fault not in IO_FAULTS:
            raise ChaosSpecError(
                f"unknown io fault {self.io_fault!r}; "
                f"valid: {', '.join(IO_FAULTS)}"
            )
        if self.kill_nth < 1:
            raise ChaosSpecError("kill ordinal (#n) must be >= 1")
        if not 0.0 <= self.io_rate <= 1.0:
            raise ChaosSpecError(
                f"io fault rate must be in [0, 1], got {self.io_rate}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_CHAOS`` grammar documented in the module."""
        kill_point: Optional[str] = None
        kill_file = ""
        kill_nth = 1
        io_fault: Optional[str] = None
        io_file = ""
        io_rate = 1.0
        seed = 0
        for raw in spec.split(";"):
            directive = raw.strip()
            if not directive:
                continue
            verb, _, rest = directive.partition(":")
            verb = verb.strip()
            if verb == "kill":
                rest, _, nth_text = rest.partition("#")
                point, _, file_part = rest.partition("@")
                kill_point = point.strip()
                kill_file = file_part.strip()
                if nth_text.strip():
                    try:
                        kill_nth = int(nth_text)
                    except ValueError:
                        raise ChaosSpecError(
                            f"bad kill ordinal {nth_text!r} in {directive!r}"
                        ) from None
            elif verb == "io":
                fault, _, tail = rest.partition("@")
                io_fault = fault.strip()
                if tail:
                    file_part, _, rate_text = tail.partition(":")
                    io_file = file_part.strip()
                    if rate_text.strip():
                        try:
                            io_rate = float(rate_text)
                        except ValueError:
                            raise ChaosSpecError(
                                f"bad io rate {rate_text!r} in {directive!r}"
                            ) from None
            elif verb == "seed":
                try:
                    seed = int(rest)
                except ValueError:
                    raise ChaosSpecError(
                        f"bad seed {rest!r} in {directive!r}"
                    ) from None
            else:
                raise ChaosSpecError(
                    f"unknown chaos directive {verb!r} in {spec!r} "
                    "(expected kill:/io:/seed:)"
                )
        return cls(
            kill_point=kill_point,
            kill_file=kill_file,
            kill_nth=kill_nth,
            io_fault=io_fault,
            io_file=io_file,
            io_rate=io_rate,
            seed=seed,
        )

    def to_spec(self) -> str:
        """Render back to the ``REPRO_CHAOS`` grammar (parse round-trips)."""
        parts = []
        if self.kill_point is not None:
            part = f"kill:{self.kill_point}"
            if self.kill_file:
                part += f"@{self.kill_file}"
            if self.kill_nth != 1:
                part += f"#{self.kill_nth}"
            parts.append(part)
        if self.io_fault is not None:
            part = f"io:{self.io_fault}@{self.io_file}:{self.io_rate}"
            parts.append(part)
        if self.seed:
            parts.append(f"seed:{self.seed}")
        return ";".join(parts)

    # ------------------------------------------------------------------
    def _file_matches(self, pattern: str, path: str) -> bool:
        return not pattern or os.path.basename(path) == pattern

    def die(self) -> None:
        """Raw ``SIGKILL`` of this process — no ``atexit``/``finally``
        cleanup can soften the crash, exactly like the OOM killer."""
        os.kill(os.getpid(), signal.SIGKILL)

    def _count_hit(self, point: str, path: str) -> bool:
        """Record one hit of (point, path); True when it is the fatal nth."""
        if self.kill_point != point:
            return False
        if not self._file_matches(self.kill_file, path):
            return False
        key = (point, self.kill_file)
        _HIT_COUNTS[key] = _HIT_COUNTS.get(key, 0) + 1
        return _HIT_COUNTS[key] >= self.kill_nth

    def crash(self, point: str, path: str) -> None:
        """SIGKILL this process if (point, path) is the planned crash.

        The n-th matching hit (1-based, counted per process in
        ``_HIT_COUNTS``) dies; earlier hits pass through untouched.
        """
        if self._count_hit(point, path):
            self.die()

    def take_mid_record(self, path: str) -> bool:
        """Consume one ``mid_record`` hit on ``path``; True on the fatal one.

        The caller (``append_line``) flushes the torn record prefix and
        then calls :meth:`die` — the kill is split out so the damage is
        on disk before the process vanishes.
        """
        return self._count_hit("mid_record", path)

    def io_draw(self, op: str, path: str, site: object) -> Optional[str]:
        """The IO fault to inject for this write, or ``None``.

        Deterministic: keyed by (seed, op, basename, site), so the same
        campaign replays the same fault stream regardless of host or
        process.
        """
        if self.io_fault is None:
            return None
        if not self._file_matches(self.io_file, path):
            return None
        draw = fault_u01(self.seed, "chaos-io", op, os.path.basename(path), site)
        if draw < self.io_rate:
            return self.io_fault
        return None

    def enospc_error(self, path: str) -> OSError:
        """The ``ENOSPC`` error an injected full-disk write raises."""
        return OSError(
            errno.ENOSPC, f"injected ENOSPC (chaos plan) writing {path}"
        )

    def partial_write_error(self, path: str) -> OSError:
        """The ``EIO`` error raised after an injected torn write."""
        return OSError(
            errno.EIO,
            f"injected partial write (chaos plan): torn record in {path}",
        )

    def sleep_fsync(self) -> None:
        """Injected fsync latency for the ``slow_fsync`` fault."""
        time.sleep(self.slow_fsync_s)


#: Per-process crash-point hit counters (``(point, file_pattern)`` keys).
_HIT_COUNTS: Dict[Tuple[str, str], int] = {}

#: Programmatically installed plan; overrides the environment variable.
_INSTALLED: Optional[FaultPlan] = None


def set_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` for this process (``None`` uninstalls).

    Also resets the crash-point hit counters so consecutive drills in
    one process count from zero.
    """
    global _INSTALLED
    _INSTALLED = plan
    _HIT_COUNTS.clear()


def active_plan() -> Optional[FaultPlan]:
    """The fault plan in force, if any.

    A programmatically installed plan wins; otherwise the
    ``REPRO_CHAOS`` environment variable is parsed on every call (cheap,
    and the variable may be set between campaigns in one process).
    """
    if _INSTALLED is not None:
        return _INSTALLED
    spec = os.environ.get(CHAOS_ENV_VAR, "")
    if not spec:
        return None
    return FaultPlan.parse(spec)


__all__ = [
    "CHAOS_ENV_VAR",
    "CRASH_POINTS",
    "ChaosSpecError",
    "FaultPlan",
    "IO_FAULTS",
    "active_plan",
    "set_plan",
]
