"""Checksummed JSONL logs with torn-tail recovery and quarantine.

Store format v2: the first line of a file is a header record

.. code-block:: json

    {"__repro_store__": "jsonl", "version": 2}

and every subsequent line is an *envelope* around the caller's payload

.. code-block:: json

    {"seq": 7, "sha": "<sha256[:16] of canonical payload JSON>", "payload": {...}}

``seq`` is a per-file monotonic sequence number (gaps reveal lost
records, regressions reveal mixed-up files); ``sha`` detects any bit
damage to the payload. Files written before v2 (bare payload lines, no
header) load transparently as *legacy* records — the format is
recognised per line, so a v1 store keeps resuming and is upgraded
record-by-record as new appends land.

Reading is non-destructive and total: :func:`read_log` returns every
intact payload plus a :class:`DamageReport`. Three kinds of damage are
distinguished and handled differently:

* **torn tail** — the final line does not parse (interrupted append):
  recoverable by truncation, the record was never durably committed;
* **corrupt line** — a non-final line does not parse or an envelope's
  checksum does not match its payload: the record is *quarantined* (to
  ``<file>.quarantine``) rather than deleted, so repair never loses
  bytes it cannot prove are garbage;
* **sequence gap / regression** — envelopes parse but numbers are
  missing, duplicated or go backwards: reported (the damage happened
  before this read; nothing local to fix).

:func:`repair_log` rewrites the file atomically with only the intact
records; :func:`compact_log` additionally deduplicates by a caller key
(last record wins, matching the stores' resume semantics).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.durability.atomic import (
    append_line,
    atomic_write_text,
    truncate_torn_tail,
)

STORE_SCHEMA_VERSION = 2
HEADER_KEY = "__repro_store__"
QUARANTINE_SUFFIX = ".quarantine"


def payload_digest(payload: Any) -> str:
    """sha256[:16] of the canonical (sorted, compact) JSON of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def header_line() -> str:
    """The v2 header record (first line of every checksummed file)."""
    return json.dumps(
        {HEADER_KEY: "jsonl", "version": STORE_SCHEMA_VERSION},
        sort_keys=True,
    )


def envelope_line(seq: int, payload: Any) -> str:
    """Render one v2 envelope line around ``payload``."""
    return json.dumps(
        {"seq": seq, "sha": payload_digest(payload), "payload": payload},
        sort_keys=True,
    )


@dataclass
class DamageReport:
    """What :func:`read_log` found wrong (and right) with one file.

    ``checksum_mismatches`` and ``corrupt_lines`` are 1-based line
    numbers; ``torn_tail`` is the final line's number when it failed to
    parse. ``legacy_records`` counts pre-v2 bare-payload lines (not
    damage — they carry no checksum to verify).
    """

    path: str
    intact_records: int = 0
    legacy_records: int = 0
    torn_tail: Optional[int] = None
    corrupt_lines: List[int] = field(default_factory=list)
    checksum_mismatches: List[int] = field(default_factory=list)
    sequence_gaps: List[Tuple[int, int]] = field(default_factory=list)
    sequence_regressions: List[Tuple[int, int]] = field(default_factory=list)
    #: highest seq carried by any envelope (intact or mismatched) —
    #: appenders must never reuse a slot a damaged record once occupied.
    max_seq: int = 0
    has_header: bool = False

    @property
    def damaged(self) -> bool:
        """Whether the file needs repair (torn tail, corruption, mismatch)."""
        return bool(
            self.torn_tail is not None
            or self.corrupt_lines
            or self.checksum_mismatches
        )

    def summary(self) -> str:
        """One-line human-readable damage summary."""
        bits = [f"{self.intact_records} intact"]
        if self.legacy_records:
            bits.append(f"{self.legacy_records} legacy(v1)")
        if self.torn_tail is not None:
            bits.append(f"torn tail @line {self.torn_tail}")
        if self.corrupt_lines:
            bits.append(f"{len(self.corrupt_lines)} corrupt")
        if self.checksum_mismatches:
            bits.append(f"{len(self.checksum_mismatches)} checksum-mismatched")
        if self.sequence_gaps:
            bits.append(f"{len(self.sequence_gaps)} seq gaps")
        if self.sequence_regressions:
            bits.append(f"{len(self.sequence_regressions)} seq regressions")
        status = "DAMAGED" if self.damaged else "ok"
        return f"{os.path.basename(self.path)}: {status} ({', '.join(bits)})"


@dataclass
class _ParsedLine:
    """One physical line classified by the reader."""

    lineno: int
    text: str
    kind: str  # "header" | "record" | "legacy" | "corrupt" | "mismatch" | "blank"
    payload: Any = None
    seq: Optional[int] = None


def _classify_line(lineno: int, raw: str) -> _ParsedLine:
    text = raw.strip()
    if not text:
        return _ParsedLine(lineno, raw, "blank")
    try:
        record = json.loads(text)
    except ValueError:
        return _ParsedLine(lineno, raw, "corrupt")
    if isinstance(record, dict) and HEADER_KEY in record:
        return _ParsedLine(lineno, raw, "header", payload=record)
    if (
        isinstance(record, dict)
        and "sha" in record
        and "payload" in record
    ):
        seq = record.get("seq")
        if payload_digest(record["payload"]) != record["sha"]:
            return _ParsedLine(
                lineno,
                raw,
                "mismatch",
                payload=record,
                seq=seq if isinstance(seq, int) else None,
            )
        return _ParsedLine(
            lineno,
            raw,
            "record",
            payload=record["payload"],
            seq=seq if isinstance(seq, int) else None,
        )
    return _ParsedLine(lineno, raw, "legacy", payload=record)


def _scan(path: str) -> Tuple[List[_ParsedLine], DamageReport]:
    report = DamageReport(path=path)
    if not os.path.exists(path):
        return [], report
    with open(path, "r", encoding="utf-8") as handle:
        raw_lines = handle.readlines()
    parsed = [_classify_line(i + 1, raw) for i, raw in enumerate(raw_lines)]
    last_seq: Optional[int] = None
    meaningful = [p for p in parsed if p.kind != "blank"]
    for p in meaningful:
        if p.kind == "header":
            if p.lineno == 1:
                report.has_header = True
            continue
        if p.kind == "corrupt":
            if p is meaningful[-1]:
                report.torn_tail = p.lineno
            else:
                report.corrupt_lines.append(p.lineno)
            continue
        if p.kind == "mismatch":
            report.checksum_mismatches.append(p.lineno)
            if p.seq is not None:
                report.max_seq = max(report.max_seq, p.seq)
            continue
        if p.kind == "legacy":
            report.legacy_records += 1
        else:
            report.intact_records += 1
            if p.seq is not None:
                if last_seq is not None and p.seq > last_seq + 1:
                    report.sequence_gaps.append((last_seq, p.seq))
                elif last_seq is not None and p.seq <= last_seq:
                    report.sequence_regressions.append((last_seq, p.seq))
                # Keep the high-water mark so one regressed record does
                # not cascade into spurious gap reports downstream.
                last_seq = max(last_seq, p.seq) if last_seq is not None else p.seq
                report.max_seq = max(report.max_seq, p.seq)
    return parsed, report


def read_log(path: str) -> Tuple[List[Any], DamageReport]:
    """Load every intact payload of ``path`` plus a damage report.

    Damaged lines are skipped (never raised over): a campaign resuming
    from a damaged store loses exactly the damaged records and
    recomputes them. Legacy (v1) bare-payload lines are returned
    in-place, so pre-checksum stores stay resumable.
    """
    parsed, report = _scan(path)
    payloads = [p.payload for p in parsed if p.kind in ("record", "legacy")]
    return payloads, report


def read_payloads(path: str) -> List[Any]:
    """:func:`read_log` without the report (reader-compat convenience)."""
    payloads, _ = read_log(path)
    return payloads


def verify_log(path: str) -> DamageReport:
    """Scan ``path`` without loading payloads into the caller."""
    _, report = _scan(path)
    return report


@dataclass
class RepairResult:
    """What :func:`repair_log` / :func:`compact_log` did to one file."""

    path: str
    kept_records: int = 0
    truncated_tail: bool = False
    quarantined: int = 0
    dropped_duplicates: int = 0
    rewritten: bool = False

    def summary(self) -> str:
        """One-line human-readable repair summary."""
        bits = [f"{self.kept_records} kept"]
        if self.truncated_tail:
            bits.append("torn tail truncated")
        if self.quarantined:
            bits.append(f"{self.quarantined} quarantined")
        if self.dropped_duplicates:
            bits.append(f"{self.dropped_duplicates} stale dropped")
        action = "rewritten" if self.rewritten else "clean"
        return f"{os.path.basename(self.path)}: {action} ({', '.join(bits)})"


def _rewrite(
    path: str,
    keep: List[_ParsedLine],
    quarantine: List[_ParsedLine],
) -> None:
    """Atomically rewrite ``path`` with ``keep``; append damage to the
    quarantine sibling (append — earlier quarantined lines are kept)."""
    if quarantine:
        qpath = path + QUARANTINE_SUFFIX
        for p in quarantine:
            append_line(qpath, p.text.rstrip("\n"), site=p.lineno)
    lines = [header_line()]
    for seq, p in enumerate(keep, start=1):
        lines.append(envelope_line(seq, p.payload))
    atomic_write_text(path, "\n".join(lines) + "\n")


def repair_log(path: str) -> RepairResult:
    """Truncate torn tails and quarantine damaged records of ``path``.

    Intact records (including legacy v1 payloads, which are upgraded to
    checksummed envelopes) are preserved verbatim and re-sequenced; the
    file is rewritten atomically only when there is damage to fix or a
    missing header to add. Quarantined lines land in
    ``<path>.quarantine`` for forensics — repair never destroys bytes.
    """
    parsed, report = _scan(path)
    result = RepairResult(path=path)
    if not os.path.exists(path):
        return result
    keep = [p for p in parsed if p.kind in ("record", "legacy")]
    quarantine = [p for p in parsed if p.kind in ("mismatch", "corrupt")]
    result.kept_records = len(keep)
    result.truncated_tail = report.torn_tail is not None
    # The torn tail was never committed: truncated, not quarantined.
    quarantine = [p for p in quarantine if p.lineno != report.torn_tail]
    result.quarantined = len(quarantine)
    needs_rewrite = (
        report.damaged or not report.has_header or report.legacy_records > 0
    )
    if needs_rewrite:
        _rewrite(path, keep, quarantine)
        result.rewritten = True
    return result


def compact_log(
    path: str, key_of: Callable[[Any], Optional[str]]
) -> RepairResult:
    """Repair ``path`` and drop superseded records (last key wins).

    ``key_of`` maps a payload to its resume key; ``None`` keeps the
    record unconditionally (e.g. failure records have no key). The
    surviving records keep their original relative order.
    """
    parsed, report = _scan(path)
    result = RepairResult(path=path)
    if not os.path.exists(path):
        return result
    keep = [p for p in parsed if p.kind in ("record", "legacy")]
    quarantine = [
        p
        for p in parsed
        if p.kind in ("mismatch", "corrupt") and p.lineno != report.torn_tail
    ]
    result.truncated_tail = report.torn_tail is not None
    result.quarantined = len(quarantine)
    last_index: Dict[str, int] = {}
    for i, p in enumerate(keep):
        key = key_of(p.payload)
        if key is not None:
            last_index[key] = i
    survivors: List[_ParsedLine] = []
    for i, p in enumerate(keep):
        key = key_of(p.payload)
        if key is None or last_index[key] == i:
            survivors.append(p)
    result.dropped_duplicates = len(keep) - len(survivors)
    result.kept_records = len(survivors)
    _rewrite(path, survivors, quarantine)
    result.rewritten = True
    return result


class KeyedLog:
    """Keyed, last-record-wins view over one :class:`ChecksummedLog`.

    Fleet-state stores (placement rounds, billing records) are naturally
    keyed streams: a crash-resumed supervisor deterministically replays
    every round from the beginning and would re-append records identical
    to the ones already on disk. :meth:`put` makes that replay
    *idempotent* — a payload equal to the latest record under its key is
    skipped, so a resume after a mid-run SIGKILL leaves the byte stream
    exactly as an uninterrupted run would have written it. Damaged lines
    are skipped on load (the replay recomputes and re-appends them), and
    :func:`compact_log` can drop superseded generations because every
    record carries its key in the ``"key"`` field.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._latest: Dict[str, Any] = {}
        if os.path.exists(path):
            payloads, _ = read_log(path)
            for payload in payloads:
                if isinstance(payload, dict) and "key" in payload:
                    self._latest[str(payload["key"])] = payload
        self._log: Optional[ChecksummedLog] = None

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The latest record stored under ``key`` (or ``None``)."""
        return self._latest.get(key)

    def put(self, key: str, payload: Dict[str, Any]) -> bool:
        """Durably record ``payload`` under ``key``; skip exact replays.

        Returns ``True`` when a record was appended, ``False`` when the
        latest record under ``key`` already equals ``payload`` (the
        idempotent-resume fast path).
        """
        record = dict(payload)
        record["key"] = key
        if self._latest.get(key) == record:
            return False
        if self._log is None:
            self._log = ChecksummedLog(self.path)
        self._log.append(record)
        self._latest[key] = record
        return True

    def keys(self) -> List[str]:
        """Every stored key, sorted (deterministic iteration order)."""
        return sorted(self._latest)

    def records(self) -> List[Dict[str, Any]]:
        """Latest record per key, in sorted key order."""
        return [self._latest[key] for key in self.keys()]

    def __len__(self) -> int:
        return len(self._latest)

    def __contains__(self, key: str) -> bool:
        return key in self._latest


class ChecksummedLog:
    """Appender for one checksummed JSONL file.

    Construction repairs a torn tail (the uncommitted partial line a
    mid-write crash leaves) *before* the first append — appending in
    ``a`` mode onto a newline-less prefix would weld two records into
    one corrupt line. It then scans once for the next sequence number
    and writes the v2 header on first append to a new or empty file.
    Appends are atomic per record via
    :func:`~repro.durability.atomic.append_line`.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._next_seq = 1
        if os.path.exists(path):
            truncate_torn_tail(path)
            _, report = _scan(path)
            # Continue past every occupied slot: the highest seq any
            # envelope carries (damaged ones included), or — for legacy
            # v1 files without seqs — the record count.
            occupied = report.intact_records + report.legacy_records
            self._next_seq = max(report.max_seq, occupied) + 1

    @property
    def next_seq(self) -> int:
        """Sequence number the next append will carry."""
        return self._next_seq

    def append(self, payload: Any) -> int:
        """Durably append ``payload`` (enveloped); returns its seq."""
        if self._next_seq == 1 and (
            not os.path.exists(self.path)
            or os.path.getsize(self.path) == 0
        ):
            append_line(self.path, header_line(), site="header")
        seq = self._next_seq
        append_line(self.path, envelope_line(seq, payload), site=seq)
        self._next_seq += 1
        return seq


__all__ = [
    "ChecksummedLog",
    "DamageReport",
    "HEADER_KEY",
    "KeyedLog",
    "QUARANTINE_SUFFIX",
    "RepairResult",
    "STORE_SCHEMA_VERSION",
    "compact_log",
    "envelope_line",
    "header_line",
    "payload_digest",
    "read_log",
    "read_payloads",
    "repair_log",
    "verify_log",
]
