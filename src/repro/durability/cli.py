"""Store-maintenance CLI verbs: ``repro campaign verify|repair|compact``.

All three operate on a campaign store directory — either one
experiment's store (``results/.campaign/fig09``) or the campaign root
(``results/.campaign``, every experiment under it):

* ``verify`` — scan every ``*.jsonl`` file and report damage (torn
  tails, checksum mismatches, sequence gaps). Exit 0 when every file is
  intact, 1 when anything needs repair. Read-only.
* ``repair`` — truncate torn tails, quarantine damaged records to
  ``<file>.quarantine``, upgrade legacy (v1) records to checksummed
  envelopes, rewrite atomically. Exit 0 (a subsequent ``verify`` must
  pass).
* ``compact`` — repair plus last-record-wins deduplication by each
  record's resume ``key`` (superseded checkpoints from re-runs are
  dropped; keyless records, e.g. failures, are kept).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, List, Optional

from repro.durability.store import (
    QUARANTINE_SUFFIX,
    compact_log,
    repair_log,
    verify_log,
)


def _store_files(root: str) -> List[str]:
    """Every campaign JSONL file under ``root`` (quarantines excluded)."""
    found: List[str] = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith(".jsonl") and not name.endswith(
                QUARANTINE_SUFFIX
            ):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def _record_key(payload: Any) -> Optional[str]:
    """Resume key of one campaign payload (``None`` = always keep).

    Run/alone/metrics records all carry their resume key in ``key``;
    failure records are an append-only history with no key.
    """
    if isinstance(payload, dict):
        key = payload.get("key")
        if isinstance(key, str):
            return key
    return None


def campaign_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro campaign ...`` verb family."""
    parser = argparse.ArgumentParser(
        prog="repro campaign",
        description="Verify, repair or compact campaign checkpoint stores.",
    )
    parser.add_argument(
        "verb",
        choices=("verify", "repair", "compact"),
        help="verify: report damage (read-only); repair: fix it; "
        "compact: repair + drop superseded records",
    )
    parser.add_argument(
        "store",
        nargs="?",
        default=os.path.join("results", ".campaign"),
        help="store directory (an experiment dir or the campaign root; "
        "default: results/.campaign)",
    )
    args = parser.parse_args(argv)

    if not os.path.isdir(args.store):
        sys.stderr.write(f"repro campaign: no such store: {args.store}\n")
        return 2
    files = _store_files(args.store)
    if not files:
        print(f"{args.store}: no store files")
        return 0

    damaged = 0
    for path in files:
        rel = os.path.relpath(path, args.store)
        if args.verb == "verify":
            report = verify_log(path)
            print(f"{rel}: {report.summary().split(': ', 1)[1]}")
            if report.damaged:
                damaged += 1
        elif args.verb == "repair":
            result = repair_log(path)
            print(f"{rel}: {result.summary().split(': ', 1)[1]}")
        else:  # compact
            result = compact_log(path, _record_key)
            print(f"{rel}: {result.summary().split(': ', 1)[1]}")

    if args.verb == "verify":
        if damaged:
            print(f"{damaged} of {len(files)} file(s) DAMAGED "
                  "(run 'repro campaign repair')")
            return 1
        print(f"all {len(files)} file(s) intact")
    return 0


__all__ = ["campaign_main"]
