"""Crash-consistent file-write primitives.

Every byte the repository persists (campaign stores, metrics, bench
captures, report files) goes through one of three helpers:

* :func:`append_line` — append one line to a log: single ``write`` of
  the full line, ``flush``, ``fsync``. A crash can tear at most the
  trailing line, which the checksummed-store reader recovers.
* :func:`atomic_write_text` — whole-file snapshot: write to a
  ``.tmp.<pid>`` sibling, ``fsync``, ``os.replace`` over the target,
  ``fsync`` the directory. Readers see either the old or the new file,
  never a mix.
* :func:`durable_stream` — an append-many stream for high-rate writers
  (trace sinks): buffered writes, one ``flush``+``fsync`` at close, so
  durability costs one fsync per *file*, not per event.

:func:`truncate_torn_tail` is the recovery counterpart of
:func:`append_line`: it drops the uncommitted newline-less prefix a
mid-write crash leaves, restoring the exact pre-append state before an
appender reopens the file.

All three announce the named crash points of
:mod:`repro.durability.chaos` and honour the active
:class:`~repro.durability.chaos.FaultPlan`'s IO faults, which is how
the chaos harness tears writes and fills disks deterministically.
"""

from __future__ import annotations

import os
from typing import IO, Optional

from repro.durability import chaos


def fsync_dir(path: str) -> None:
    """fsync the directory containing ``path`` (rename durability).

    POSIX only makes a rename durable once the parent directory is
    synced. Platforms whose directories cannot be opened (Windows) skip
    silently — the ``os.replace`` there is already atomic.
    """
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory semantics
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_handle(handle: IO[str], plan: Optional[chaos.FaultPlan]) -> None:
    if plan is not None and plan.io_draw("fsync", handle.name, 0) == "slow_fsync":
        plan.sleep_fsync()
    handle.flush()
    os.fsync(handle.fileno())


def truncate_torn_tail(path: str) -> bool:
    """Drop a torn (newline-less) trailing partial line from ``path``.

    :func:`append_line` writes each record — newline included — in one
    ``write``, so a file whose final byte is not ``\\n`` ends in the
    torn prefix of a record that was never durably committed.
    Truncating back to the last newline restores the exact pre-append
    state; appending in ``a`` mode without this repair would weld the
    next record onto the torn prefix into one corrupt line. Returns
    ``True`` when bytes were removed.
    """
    try:
        if os.path.getsize(path) == 0:
            return False
    except OSError:
        return False
    with open(path, "rb+") as handle:
        data = handle.read()
        if data.endswith(b"\n"):
            return False
        cut = data.rfind(b"\n") + 1  # 0 when the first line itself tore
        handle.truncate(cut)
        handle.flush()
        os.fsync(handle.fileno())
    return True


def append_line(path: str, line: str, *, site: object = 0) -> None:
    """Durably append one line (adds the newline) to ``path``.

    The write/flush/fsync sequence bounds crash damage to a torn
    trailing line. ``site`` keys the deterministic IO-fault draws (pass
    a record sequence number so fault streams are stable under
    re-ordering of unrelated appends).

    Chaos crash points: ``before_append`` (nothing persisted),
    ``mid_record`` (a torn prefix of the line is persisted — the exact
    damage a power cut mid-write leaves) and ``after_append`` (the
    record is persisted, nothing after it is).
    """
    data = line if line.endswith("\n") else line + "\n"
    plan = chaos.active_plan()
    if plan is not None:
        plan.crash("before_append", path)
        fault = plan.io_draw("append", path, site)
        if fault == "enospc":
            raise plan.enospc_error(path)
    with open(path, "a", encoding="utf-8") as handle:
        if plan is not None and plan.take_mid_record(path):
            handle.write(data[: max(1, len(data) // 2)])
            _fsync_handle(handle, plan)
            plan.die()  # SIGKILL with the torn prefix on disk
        if plan is not None and fault == "partial_write":
            handle.write(data[: max(1, len(data) // 2)])
            _fsync_handle(handle, plan)
            raise plan.partial_write_error(path)
        handle.write(data)
        _fsync_handle(handle, plan)
    if plan is not None:
        plan.crash("after_append", path)


def atomic_write_text(path: str, text: str) -> None:
    """Atomically replace ``path``'s contents with ``text``.

    Write to a same-directory temp file, fsync it, ``os.replace`` over
    the target, fsync the directory. A crash leaves either the complete
    old file or the complete new one. Chaos crash points:
    ``before_replace`` / ``after_replace``.
    """
    plan = chaos.active_plan()
    if plan is not None and plan.io_draw("replace", path, 0) == "enospc":
        raise plan.enospc_error(path)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(text)
            _fsync_handle(handle, plan)
        if plan is not None:
            plan.crash("before_replace", path)
        os.replace(tmp_path, path)
        fsync_dir(path)
        if plan is not None:
            plan.crash("after_replace", path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)


class DurableStream:
    """A buffered line-stream whose close guarantees durability.

    For writers that emit many records per run (trace sinks): per-write
    fsync would turn an in-memory trace into a disk benchmark, so the
    stream buffers normally and pays a single ``flush``+``fsync`` at
    :meth:`close`. Torn tails from a crash before close are recovered
    by the same checksummed reader as every other JSONL file.
    """

    def __init__(self, path: str, mode: str = "w") -> None:
        if mode not in ("w", "a"):
            raise ValueError(f"DurableStream mode must be 'w' or 'a', got {mode!r}")
        self.path = path
        self._handle: Optional[IO[str]] = open(path, mode, encoding="utf-8")

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has already run."""
        return self._handle is None

    def write(self, data: str) -> None:
        """Buffered write of ``data`` (no per-call durability)."""
        if self._handle is None:
            raise ValueError(f"DurableStream({self.path!r}) is closed")
        self._handle.write(data)

    def close(self) -> None:
        """Flush, fsync and close (idempotent)."""
        if self._handle is not None:
            _fsync_handle(self._handle, chaos.active_plan())
            self._handle.close()
            self._handle = None


def durable_stream(path: str, mode: str = "w") -> DurableStream:
    """Open a :class:`DurableStream` on ``path``."""
    return DurableStream(path, mode)


__all__ = [
    "DurableStream",
    "append_line",
    "atomic_write_text",
    "durable_stream",
    "fsync_dir",
    "truncate_torn_tail",
]
