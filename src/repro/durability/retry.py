"""Supervised retry: policy, circuit breaker, and degraded outcomes.

A campaign cell that fails is not necessarily lost. Worker crashes and
watchdog timeouts are often *transient* (an OOM-killed sibling, a noisy
host) and succeed on a second attempt; an assertion failure inside the
deterministic simulator is not — the same inputs will fail the same way
forever, and burning the attempt budget on it just delays the campaign.

Three pieces implement the distinction:

* :class:`RetryPolicy` — how many attempts a cell gets, how long to
  back off between them (exponential, with *deterministically seeded*
  jitter so two runs of the same campaign sleep the same schedule), and
  an optional per-cell wall-clock budget.
* :class:`CircuitBreaker` — watches failure signatures per cell.
  Transient error types (:data:`TRANSIENT_ERRORS`) are always
  retryable; a deterministic error that repeats with the same signature
  opens the circuit and stops further attempts for that cell.
* :class:`DegradedCell` — the structured outcome recorded when a cell
  exhausts its attempts/budget under ``keep_going``: the campaign
  finishes, and the record says exactly why this cell did not.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.resilience.faults import RunFailure, stable_hash
from repro.telemetry.spec import fault_u01

#: Error types treated as transient: worth retrying without suspicion.
#: Everything else is presumed deterministic until proven otherwise.
TRANSIENT_ERRORS: FrozenSet[str] = frozenset(
    {"WorkerCrash", "WatchdogTimeout"}
)


def failure_signature(error_type: str, message: str) -> str:
    """Identity of one failure *mode* (not one failure instance).

    Two attempts that die with the same type and message are the same
    failure replaying — the strongest evidence available that the
    failure is deterministic.
    """
    return stable_hash((error_type, message))


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the supervisor tries before declaring a cell degraded.

    The default (``max_attempts=1``) is exactly the pre-supervision
    behaviour: one attempt, no backoff, failure recorded immediately.
    Backoff for attempt *k* (the delay before attempt ``k+1``) is::

        backoff_s * backoff_factor**(k-1) * (1 + jitter * (u - 0.5))

    with ``u`` a sha256 draw keyed by (seed, cell fingerprint, k) — the
    schedule is fully deterministic per campaign, never shared between
    cells, and replays bit-identically.
    """

    max_attempts: int = 1
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    cell_budget_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.cell_budget_s is not None and self.cell_budget_s <= 0:
            raise ValueError("cell_budget_s must be positive")

    @property
    def supervised(self) -> bool:
        """Whether this policy can ever retry (``max_attempts > 1``)."""
        return self.max_attempts > 1

    def delay_s(self, attempt: int, cell_fingerprint: str) -> float:
        """Backoff before the attempt *after* 1-based ``attempt``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = self.backoff_s * self.backoff_factor ** (attempt - 1)
        u = fault_u01(self.seed, "retry-jitter", cell_fingerprint, attempt)
        return max(0.0, base * (1.0 + self.jitter * (u - 0.5)))

    def within_budget(self, elapsed_s: float) -> bool:
        """Whether a cell at ``elapsed_s`` wall seconds may try again."""
        return self.cell_budget_s is None or elapsed_s < self.cell_budget_s


@dataclass
class CircuitBreaker:
    """Stops burning attempts on failures that provably repeat.

    Per cell fingerprint, the breaker tracks the last failure signature
    and how many consecutive attempts produced it. Transient error
    types never trip the breaker (a crash-looping host still looks like
    distinct opportunities); a deterministic signature repeating
    ``trip_threshold`` times opens the circuit for that cell.
    """

    trip_threshold: int = 2
    _state: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    _open: Dict[str, str] = field(default_factory=dict)

    def record_failure(
        self, cell_fingerprint: str, error_type: str, message: str
    ) -> None:
        """Account one failed attempt of ``cell_fingerprint``."""
        if error_type in TRANSIENT_ERRORS:
            # A transient failure resets the deterministic-repeat count:
            # it says nothing about the cell's own computation.
            self._state.pop(cell_fingerprint, None)
            return
        signature = failure_signature(error_type, message)
        last, count = self._state.get(cell_fingerprint, ("", 0))
        count = count + 1 if signature == last else 1
        self._state[cell_fingerprint] = (signature, count)
        if count >= self.trip_threshold:
            self._open[cell_fingerprint] = signature

    def record_success(self, cell_fingerprint: str) -> None:
        """Clear breaker state after a successful attempt."""
        self._state.pop(cell_fingerprint, None)
        self._open.pop(cell_fingerprint, None)

    def allows(self, cell_fingerprint: str) -> bool:
        """Whether another attempt of this cell is worth making."""
        return cell_fingerprint not in self._open

    @property
    def open_cells(self) -> List[str]:
        """Fingerprints whose circuits are open (sorted, for summaries)."""
        return sorted(self._open)

    def summary(self) -> str:
        """One-line breaker status for campaign summaries."""
        if not self._open:
            return "circuit breaker: closed"
        return f"circuit breaker: OPEN for {len(self._open)} cell(s)"


#: Reasons a :class:`DegradedCell` may carry.
DEGRADED_REASONS: Tuple[str, ...] = (
    "attempts_exhausted",
    "budget_exhausted",
    "circuit_open",
)


@dataclass
class DegradedCell:
    """Structured record of a cell the supervisor gave up on.

    Recorded alongside the final :class:`RunFailure` (not instead of
    it) so the failure stays replayable while the degradation carries
    the supervision story: why retrying stopped and how many attempts
    were spent. Wall-clock measurements deliberately stay *out* of this
    record (rule NDT001): ``degraded.jsonl`` is part of the campaign's
    reproducible byte stream, and the budget outcome is already
    captured deterministically by ``reason == "budget_exhausted"``.
    Live timings belong to logs and profiles, not durable records.
    """

    experiment: str
    variant: str
    mix_name: str
    mix_seed: int
    cell_fingerprint: str
    reason: str
    attempts: int
    last_error_type: str
    last_message: str

    def __post_init__(self) -> None:
        if self.reason not in DEGRADED_REASONS:
            raise ValueError(
                f"unknown degradation reason {self.reason!r}; "
                f"valid: {', '.join(DEGRADED_REASONS)}"
            )

    @classmethod
    def from_failure(
        cls,
        failure: RunFailure,
        *,
        reason: str,
        attempts: int,
    ) -> "DegradedCell":
        """Build the degradation record for ``failure``'s cell."""
        return cls(
            experiment=failure.experiment,
            variant=failure.variant,
            mix_name=failure.mix_name,
            mix_seed=failure.mix_seed,
            cell_fingerprint=failure.fingerprint(),
            reason=reason,
            attempts=attempts,
            last_error_type=failure.error_type,
            last_message=failure.message,
        )

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "DegradedCell":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})

    def describe(self) -> str:
        """One-line human-readable degradation description."""
        return (
            f"{self.mix_name} (variant {self.variant or '-'}): "
            f"{self.reason} after {self.attempts} attempt(s) — "
            f"last error {self.last_error_type}: {self.last_message}"
        )


__all__ = [
    "CircuitBreaker",
    "DEGRADED_REASONS",
    "DegradedCell",
    "RetryPolicy",
    "TRANSIENT_ERRORS",
    "failure_signature",
]
