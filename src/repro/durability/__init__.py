"""Durability subsystem: crash-consistent stores, chaos drills, retries.

Modules:

* :mod:`repro.durability.atomic` — the three write primitives every
  persisted byte goes through (:func:`append_line`,
  :func:`atomic_write_text`, :func:`durable_stream`);
* :mod:`repro.durability.store` — checksummed JSONL logs (store format
  v2): per-record sha256 + sequence numbers, torn-tail recovery,
  quarantine, :func:`verify_log`/:func:`repair_log`/:func:`compact_log`;
* :mod:`repro.durability.chaos` — deterministic process/IO fault plans
  (``REPRO_CHAOS``): self-SIGKILL at named crash points, injected
  ENOSPC/partial-write/slow-fsync;
* :mod:`repro.durability.retry` — supervised retry
  (:class:`RetryPolicy`), the per-cell :class:`CircuitBreaker`, and
  :class:`DegradedCell` outcomes;
* :mod:`repro.durability.cli` — ``repro campaign verify|repair|compact``.

Attribute access is lazy (PEP 562), matching :mod:`repro.resilience`:
:mod:`repro.durability.retry` imports ``repro.resilience.faults`` while
the campaign store imports this package, so eager imports would cycle.
"""

from __future__ import annotations

from typing import Any, Dict, List

_EXPORTS: Dict[str, str] = {
    "DurableStream": "repro.durability.atomic",
    "append_line": "repro.durability.atomic",
    "atomic_write_text": "repro.durability.atomic",
    "durable_stream": "repro.durability.atomic",
    "fsync_dir": "repro.durability.atomic",
    "truncate_torn_tail": "repro.durability.atomic",
    "ChecksummedLog": "repro.durability.store",
    "DamageReport": "repro.durability.store",
    "KeyedLog": "repro.durability.store",
    "RepairResult": "repro.durability.store",
    "STORE_SCHEMA_VERSION": "repro.durability.store",
    "compact_log": "repro.durability.store",
    "payload_digest": "repro.durability.store",
    "read_log": "repro.durability.store",
    "read_payloads": "repro.durability.store",
    "repair_log": "repro.durability.store",
    "verify_log": "repro.durability.store",
    "CHAOS_ENV_VAR": "repro.durability.chaos",
    "ChaosSpecError": "repro.durability.chaos",
    "FaultPlan": "repro.durability.chaos",
    "active_plan": "repro.durability.chaos",
    "set_plan": "repro.durability.chaos",
    "CircuitBreaker": "repro.durability.retry",
    "DegradedCell": "repro.durability.retry",
    "RetryPolicy": "repro.durability.retry",
    "TRANSIENT_ERRORS": "repro.durability.retry",
    "failure_signature": "repro.durability.retry",
    "campaign_main": "repro.durability.cli",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_EXPORTS))
