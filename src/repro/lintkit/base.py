"""Rule framework for the simulator-invariant linter.

A :class:`Rule` inspects one parsed module and yields :class:`Finding`
objects. Rules self-register via the :func:`register` decorator; the
driver (:func:`lint_text` / :func:`lint_file` / :func:`lint_paths`)
parses each file once, builds a :class:`LintContext`, applies every rule
whose package gate matches the module, and filters findings through the
per-line suppression comments.

Suppressions
------------
A finding is suppressed when the physical line it is reported on carries
a comment of the form::

    x = risky()  # lint: ignore[DET001]
    y = other()  # lint: ignore[DET001, CYC001] -- optional rationale
    z = all_of_them()  # lint: ignore

For findings reported on a decorated ``def``/``class`` line, suppression
comments on the decorator lines apply too, and *stack*: the codes from
every decorator line and the ``def`` line itself are unioned, so two
decorators can each acknowledge a different rule.

``# lint: skip-file`` anywhere in the first five lines exempts the whole
module (used for test fixtures that are deliberately broken).

Whole-program rules
-------------------
Rules subclassing :class:`ProjectRule` see a :class:`repro.lintkit.flow.
project.Project` built from every linted file at once (symbol table,
import graph, call graph) instead of one module. ``lint_text`` /
``lint_file`` run them over a one-module project so fixtures and single
files still exercise them; ``lint_paths`` / the CLI build the project
once from all parsed files and run each project rule a single time.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.lintkit.flow.project import Project

#: Severity levels in increasing order of importance.
SEVERITIES = ("note", "warning", "error")

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*lint:\s*skip-file")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class LintContext:
    """Everything a rule needs to inspect one module."""

    path: str
    module: str
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`code`, :attr:`summary` and optionally
    :attr:`packages` (dotted-module prefixes the rule is gated to; empty
    means every module) and implement :meth:`check`.
    """

    code: str = ""
    summary: str = ""
    severity: str = "error"
    #: Dotted module prefixes this rule applies to ("repro.cache" matches
    #: "repro.cache" and "repro.cache.anything"). Empty tuple = all files.
    packages: Tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        if not self.packages:
            return True
        return any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in self.packages
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: LintContext,
        node: ast.AST,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity or self.severity,
        )


class ProjectRule(Rule):
    """A rule that inspects the whole project instead of one module.

    Subclasses implement :meth:`check_project`; the per-module
    :meth:`check` is never called. ``packages`` gates which modules the
    rule *scans* (helpers on :class:`~repro.lintkit.flow.project.Project`
    filter by it), while resolution — call graphs, oracle lookups — may
    follow references anywhere in the project.
    """

    #: Marker the drivers dispatch on.
    project_scope = True

    def check(self, ctx: LintContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError("project rules implement check_project")

    def check_project(self, project: "Project") -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    if rule_cls.severity not in SEVERITIES:
        raise ValueError(f"unknown severity {rule_cls.severity!r}")
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> Dict[str, Type[Rule]]:
    """The registered rules, importing the built-in set on first use."""
    # Imported lazily so `import repro.lintkit.base` has no side effects
    # and the rules module can itself import from here.
    from repro.lintkit import rules as _rules  # noqa: F401

    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# Suppression comments


def _suppressions(source: str) -> Tuple[bool, Dict[int, Optional[Set[str]]]]:
    """Scan comments; returns (skip_file, {line: codes-or-None}).

    ``None`` as the code set means "ignore every rule on this line".
    """
    skip_file = False
    by_line: Dict[int, Optional[Set[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            if tok.start[0] <= 5 and _SKIP_FILE_RE.search(tok.string):
                skip_file = True
            match = _IGNORE_RE.search(tok.string)
            if match is None:
                continue
            line = tok.start[0]
            if match.group(1) is None:
                by_line[line] = None
            else:
                codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
                existing = by_line.get(line, set())
                if existing is not None:
                    by_line[line] = existing | codes
    except tokenize.TokenError:
        pass
    return skip_file, by_line


def _decorator_lines(tree: ast.Module) -> Dict[int, List[int]]:
    """Map each decorated def/class line to its decorator lines.

    Findings land on the ``def`` line, but suppression comments read most
    naturally on the decorators stacked above it — both work, and their
    rule codes are unioned.
    """
    out: Dict[int, List[int]] = {}
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and node.decorator_list:
            out[node.lineno] = [d.lineno for d in node.decorator_list]
    return out


def _is_suppressed(
    finding: Finding,
    by_line: Dict[int, Optional[Set[str]]],
    dec_lines: Optional[Dict[int, List[int]]] = None,
) -> bool:
    lines = [finding.line]
    if dec_lines:
        lines.extend(dec_lines.get(finding.line, ()))
    codes: Set[str] = set()
    for line in lines:
        entry = by_line.get(line, set())
        if entry is None:
            return True  # blanket `# lint: ignore`
        codes |= entry
    return finding.rule in codes


# ----------------------------------------------------------------------
# Module-name derivation


def module_name_for(path: str) -> str:
    """Derive the dotted module name of ``path`` from __init__.py markers.

    Walks up from the file while each parent directory is a package, so
    ``.../src/repro/cache/cache.py`` maps to ``repro.cache.cache``
    wherever the tree is checked out. Files outside a package map to
    their bare stem.
    """
    abspath = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(abspath))[0]]
    parent = os.path.dirname(abspath)
    while os.path.isfile(os.path.join(parent, "__init__.py")):
        parts.append(os.path.basename(parent))
        parent = os.path.dirname(parent)
    if parts[0] == "__init__":
        parts = parts[1:] or ["__init__"]
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Drivers


@dataclass
class ParsedFile:
    """One source file, parsed once, with its suppression map.

    ``ctx`` is None when the file could not be read or parsed; ``error``
    then carries the LINT000/LINT001 finding to report instead.
    """

    path: str
    ctx: Optional[LintContext] = None
    skip_file: bool = False
    by_line: Dict[int, Optional[Set[str]]] = field(default_factory=dict)
    dec_lines: Dict[int, List[int]] = field(default_factory=dict)
    error: Optional[Finding] = None


def parse_source(
    source: str, *, path: str = "<string>", module: Optional[str] = None
) -> ParsedFile:
    """Parse ``source`` into a :class:`ParsedFile` (never raises)."""
    module_name = module if module is not None else module_name_for(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return ParsedFile(
            path=path,
            error=Finding(
                rule="LINT000",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            ),
        )
    skip_file, by_line = _suppressions(source)
    ctx = LintContext(
        path=path,
        module=module_name,
        tree=tree,
        source=source,
        lines=source.splitlines(),
    )
    return ParsedFile(
        path=path,
        ctx=ctx,
        skip_file=skip_file,
        by_line=by_line,
        dec_lines=_decorator_lines(tree),
    )


def parse_file(path: str) -> ParsedFile:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        return ParsedFile(
            path=path,
            error=Finding(
                rule="LINT001",
                path=path,
                line=1,
                col=0,
                message=f"cannot read file: {exc}",
            ),
        )
    return parse_source(source, path=path)


def _selected_rules(
    select: Optional[Sequence[str]],
) -> Tuple[List[Rule], List["ProjectRule"]]:
    """Instantiate the selected rules, split into (per-file, project)."""
    per_file: List[Rule] = []
    project: List[ProjectRule] = []
    for code, rule_cls in sorted(all_rules().items()):
        if select is not None and code not in select:
            continue
        rule = rule_cls()
        if isinstance(rule, ProjectRule):
            project.append(rule)
        else:
            per_file.append(rule)
    return per_file, project


def lint_parsed(
    files: Sequence[ParsedFile],
    *,
    select: Optional[Sequence[str]] = None,
    apply_suppressions: bool = True,
) -> List[Finding]:
    """Lint already-parsed files: per-file rules, then one project pass.

    Per-file rules see each module independently; project rules see a
    :class:`~repro.lintkit.flow.project.Project` built from every
    parseable, non-skipped file at once. Findings are then filtered
    through each file's suppression comments and sorted.
    """
    from repro.lintkit.flow.project import Project

    per_file_rules, project_rules = _selected_rules(select)
    findings: List[Finding] = []
    active: List[ParsedFile] = []
    for parsed in files:
        if parsed.error is not None:
            findings.append(parsed.error)
            continue
        if parsed.skip_file and apply_suppressions:
            continue
        assert parsed.ctx is not None
        active.append(parsed)
        for rule in per_file_rules:
            if rule.applies_to(parsed.ctx.module):
                findings.extend(rule.check(parsed.ctx))
    if project_rules and active:
        project = Project.from_contexts([p.ctx for p in active if p.ctx])
        for rule in project_rules:
            findings.extend(rule.check_project(project))
    if apply_suppressions:
        by_path = {p.path: p for p in active}
        findings = [
            f
            for f in findings
            if f.path not in by_path
            or not _is_suppressed(
                f, by_path[f.path].by_line, by_path[f.path].dec_lines
            )
        ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_text(
    source: str,
    *,
    path: str = "<string>",
    module: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
    apply_suppressions: bool = True,
) -> List[Finding]:
    """Lint ``source`` as if it were the module ``module``.

    ``select`` limits the run to the given rule codes. Syntax errors are
    reported as a single ``LINT000`` finding rather than raised, so one
    broken file cannot abort a tree-wide run. ``apply_suppressions=False``
    ignores ``# lint: ignore`` / ``# lint: skip-file`` comments — used by
    the fixture tests, which lint deliberately-broken files that carry a
    skip-file guard against accidental tree-wide runs. Project rules run
    over a one-module project.
    """
    parsed = parse_source(source, path=path, module=module)
    return lint_parsed(
        [parsed], select=select, apply_suppressions=apply_suppressions
    )


def lint_file(
    path: str, *, select: Optional[Sequence[str]] = None
) -> List[Finding]:
    return lint_parsed([parse_file(path)], select=select)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a deterministic list of .py files."""
    for root_path in paths:
        if os.path.isfile(root_path):
            yield root_path
            continue
        for dirpath, dirnames, filenames in os.walk(root_path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in {"__pycache__", ".git", ".hypothesis"}
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def parse_paths(
    paths: Sequence[str],
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> List[ParsedFile]:
    """Parse every Python file under ``paths`` once."""
    parsed: List[ParsedFile] = []
    for filename in iter_python_files(paths):
        if progress is not None:
            progress(filename)
        parsed.append(parse_file(filename))
    return parsed


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Finding]:
    return lint_parsed(parse_paths(paths, progress=progress), select=select)


__all__ = [
    "Finding",
    "LintContext",
    "ParsedFile",
    "ProjectRule",
    "Rule",
    "SEVERITIES",
    "all_rules",
    "iter_python_files",
    "lint_file",
    "lint_parsed",
    "lint_paths",
    "lint_text",
    "module_name_for",
    "parse_file",
    "parse_paths",
    "parse_source",
    "register",
]
