"""Rule framework for the simulator-invariant linter.

A :class:`Rule` inspects one parsed module and yields :class:`Finding`
objects. Rules self-register via the :func:`register` decorator; the
driver (:func:`lint_text` / :func:`lint_file` / :func:`lint_paths`)
parses each file once, builds a :class:`LintContext`, applies every rule
whose package gate matches the module, and filters findings through the
per-line suppression comments.

Suppressions
------------
A finding is suppressed when the physical line it is reported on (or the
line its enclosing statement starts on) carries a comment of the form::

    x = risky()  # lint: ignore[DET001]
    y = other()  # lint: ignore[DET001, CYC001] -- optional rationale
    z = all_of_them()  # lint: ignore

``# lint: skip-file`` anywhere in the first five lines exempts the whole
module (used for test fixtures that are deliberately broken).
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

#: Severity levels in increasing order of importance.
SEVERITIES = ("note", "warning", "error")

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*lint:\s*skip-file")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class LintContext:
    """Everything a rule needs to inspect one module."""

    path: str
    module: str
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`code`, :attr:`summary` and optionally
    :attr:`packages` (dotted-module prefixes the rule is gated to; empty
    means every module) and implement :meth:`check`.
    """

    code: str = ""
    summary: str = ""
    severity: str = "error"
    #: Dotted module prefixes this rule applies to ("repro.cache" matches
    #: "repro.cache" and "repro.cache.anything"). Empty tuple = all files.
    packages: Tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        if not self.packages:
            return True
        return any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in self.packages
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: LintContext,
        node: ast.AST,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity or self.severity,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    if rule_cls.severity not in SEVERITIES:
        raise ValueError(f"unknown severity {rule_cls.severity!r}")
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> Dict[str, Type[Rule]]:
    """The registered rules, importing the built-in set on first use."""
    # Imported lazily so `import repro.lintkit.base` has no side effects
    # and the rules module can itself import from here.
    from repro.lintkit import rules as _rules  # noqa: F401

    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# Suppression comments


def _suppressions(source: str) -> Tuple[bool, Dict[int, Optional[Set[str]]]]:
    """Scan comments; returns (skip_file, {line: codes-or-None}).

    ``None`` as the code set means "ignore every rule on this line".
    """
    skip_file = False
    by_line: Dict[int, Optional[Set[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            if tok.start[0] <= 5 and _SKIP_FILE_RE.search(tok.string):
                skip_file = True
            match = _IGNORE_RE.search(tok.string)
            if match is None:
                continue
            line = tok.start[0]
            if match.group(1) is None:
                by_line[line] = None
            else:
                codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
                existing = by_line.get(line, set())
                if existing is not None:
                    by_line[line] = existing | codes
    except tokenize.TokenError:
        pass
    return skip_file, by_line


def _is_suppressed(
    finding: Finding, by_line: Dict[int, Optional[Set[str]]]
) -> bool:
    codes = by_line.get(finding.line, set())
    if codes is None:
        return True
    return finding.rule in codes


# ----------------------------------------------------------------------
# Module-name derivation


def module_name_for(path: str) -> str:
    """Derive the dotted module name of ``path`` from __init__.py markers.

    Walks up from the file while each parent directory is a package, so
    ``.../src/repro/cache/cache.py`` maps to ``repro.cache.cache``
    wherever the tree is checked out. Files outside a package map to
    their bare stem.
    """
    abspath = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(abspath))[0]]
    parent = os.path.dirname(abspath)
    while os.path.isfile(os.path.join(parent, "__init__.py")):
        parts.append(os.path.basename(parent))
        parent = os.path.dirname(parent)
    if parts[0] == "__init__":
        parts = parts[1:] or ["__init__"]
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Drivers


def lint_text(
    source: str,
    *,
    path: str = "<string>",
    module: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
    apply_suppressions: bool = True,
) -> List[Finding]:
    """Lint ``source`` as if it were the module ``module``.

    ``select`` limits the run to the given rule codes. Syntax errors are
    reported as a single ``LINT000`` finding rather than raised, so one
    broken file cannot abort a tree-wide run. ``apply_suppressions=False``
    ignores ``# lint: ignore`` / ``# lint: skip-file`` comments — used by
    the fixture tests, which lint deliberately-broken files that carry a
    skip-file guard against accidental tree-wide runs.
    """
    module_name = module if module is not None else module_name_for(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="LINT000",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    skip_file, by_line = _suppressions(source)
    if not apply_suppressions:
        skip_file, by_line = False, {}
    if skip_file:
        return []
    ctx = LintContext(
        path=path,
        module=module_name,
        tree=tree,
        source=source,
        lines=source.splitlines(),
    )
    findings: List[Finding] = []
    for code, rule_cls in sorted(all_rules().items()):
        if select is not None and code not in select:
            continue
        rule = rule_cls()
        if not rule.applies_to(module_name):
            continue
        findings.extend(rule.check(ctx))
    findings = [f for f in findings if not _is_suppressed(f, by_line)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(
    path: str, *, select: Optional[Sequence[str]] = None
) -> List[Finding]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                rule="LINT001",
                path=path,
                line=1,
                col=0,
                message=f"cannot read file: {exc}",
            )
        ]
    return lint_text(source, path=path, select=select)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a deterministic list of .py files."""
    for root_path in paths:
        if os.path.isfile(root_path):
            yield root_path
            continue
        for dirpath, dirnames, filenames in os.walk(root_path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in {"__pycache__", ".git", ".hypothesis"}
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Finding]:
    findings: List[Finding] = []
    for filename in iter_python_files(paths):
        if progress is not None:
            progress(filename)
        findings.extend(lint_file(filename, select=select))
    return findings


__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "SEVERITIES",
    "all_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_text",
    "module_name_for",
    "register",
]
