"""AST-based simulator-invariant linter (``repro-lint``).

The simulator's correctness rests on invariants the paper states but CPython
cannot enforce cheaply at runtime:

* results are **deterministic** — a parallel campaign must be bit-identical
  to a serial one (see :mod:`repro.parallel`), which a single stray
  ``random.random()``, wall-clock read, ``id()``-derived key or
  set-iteration silently breaks;
* **cycle counts are integers** — true division feeding a cycle or epoch
  counter truncates differently from ``//`` and quietly turns closed-form
  accounting identities into float drift;
* **accounting is conservative** — ``hits + misses == accesses`` at every
  counter the slowdown models read (Table 1 of the paper), mirrored at
  runtime by :mod:`repro.resilience.invariants`;
* **parallel payloads pickle by reference** — lambdas and nested defs
  submitted to a worker pool fail at runtime, on some platforms only.

``repro.lintkit`` proves the cheap half of these statically: a small
AST-visitor framework (:mod:`repro.lintkit.base`) hosts simulator-specific
rules (:mod:`repro.lintkit.rules`), with per-line ``# lint: ignore[RULE]``
suppressions, a JSON baseline for grandfathered findings, and human / JSON
output. Run it with ``python -m repro.lintkit src/`` or the ``repro-lint``
console script.
"""

from repro.lintkit.base import (
    Finding,
    LintContext,
    Rule,
    all_rules,
    lint_file,
    lint_paths,
    lint_text,
    register,
)

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_text",
    "register",
]
