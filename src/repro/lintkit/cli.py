"""Command-line driver: ``repro-lint`` / ``python -m repro.lintkit``.

Exit codes: 0 clean (or everything suppressed/grandfathered), 1 findings,
2 usage or internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.lintkit import baseline as baseline_mod
from repro.lintkit.base import (
    Finding,
    all_rules,
    iter_python_files,
    lint_file,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based simulator-invariant linter for the ASM reproduction "
            "(determinism, integer cycle accounting, hits+misses==accesses "
            "conservation, picklable parallel payloads)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=(
            "baseline file of grandfathered findings (default: "
            f"{baseline_mod.DEFAULT_BASELINE_NAME} in the cwd, if present)"
        ),
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the summary line on success",
    )
    return parser


def _list_rules() -> int:
    for code, rule_cls in sorted(all_rules().items()):
        gate = ", ".join(rule_cls.packages) if rule_cls.packages else "all files"
        print(f"{code}  [{rule_cls.severity}]  {rule_cls.summary}")
        print(f"        gated to: {gate}")
    return 0


def _emit(
    findings: Sequence[Finding],
    fmt: str,
    grandfathered: int,
    scanned: int,
    quiet: bool,
) -> None:
    if fmt == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_json() for f in findings],
                    "grandfathered": grandfathered,
                    "files_scanned": scanned,
                },
                indent=2,
            )
        )
        return
    for finding in findings:
        print(finding.render())
    if findings:
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"\nrepro-lint: {len(findings)} {noun} in {scanned} files", file=sys.stderr)
    elif not quiet:
        extra = f" ({grandfathered} grandfathered)" if grandfathered else ""
        print(f"repro-lint: clean — {scanned} files{extra}", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()

    select: Optional[List[str]] = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
        unknown = set(select) - set(all_rules())
        if unknown:
            print(
                f"repro-lint: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        print(
            f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr
        )
        return 2

    findings: List[Finding] = []
    sources: Dict[str, List[str]] = {}
    scanned = 0
    for path in iter_python_files(args.paths):
        scanned += 1
        file_findings = lint_file(path, select=select)
        if file_findings:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    sources[path] = handle.read().splitlines()
            except (OSError, UnicodeDecodeError):
                sources[path] = []
            findings.extend(file_findings)

    baseline_path = args.baseline
    if baseline_path is None and os.path.isfile(
        baseline_mod.DEFAULT_BASELINE_NAME
    ):
        baseline_path = baseline_mod.DEFAULT_BASELINE_NAME

    if args.write_baseline:
        target = baseline_path or baseline_mod.DEFAULT_BASELINE_NAME
        baseline_mod.write(target, findings, sources)
        print(
            f"repro-lint: wrote {len(findings)} fingerprints to {target}",
            file=sys.stderr,
        )
        return 0

    grandfathered = 0
    if baseline_path is not None:
        try:
            allowed = baseline_mod.load(baseline_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro-lint: bad baseline: {exc}", file=sys.stderr)
            return 2
        findings, grandfathered = baseline_mod.filter_baselined(
            findings, sources, allowed
        )

    _emit(findings, args.format, grandfathered, scanned, args.quiet)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
