"""Command-line driver: ``repro-lint`` / ``python -m repro.lintkit``.

Exit codes: 0 clean (or everything suppressed/grandfathered), 1 findings
(or wall-time budget exceeded), 2 usage or internal error.

The tree is parsed exactly once: per-file rules run per module, then the
whole-program rules (NDT001/UNIT001/PUR001/DUAL001) run over one
:class:`~repro.lintkit.flow.project.Project` built from every parsed
file. ``--changed-only`` still parses the full tree — project rules need
the whole symbol table to resolve calls — and only *reports* findings in
files changed relative to a git ref, so PR lint stays fast to read while
staying whole-program sound.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence, Set

from repro.lintkit import baseline as baseline_mod
from repro.lintkit.base import (
    Finding,
    all_rules,
    lint_parsed,
    parse_paths,
)

#: Finding severity -> SARIF result level (they coincide by design).
_SARIF_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based simulator-invariant linter for the ASM reproduction "
            "(determinism, integer cycle accounting, hits+misses==accesses "
            "conservation, picklable parallel payloads, whole-program "
            "nondeterminism taint and scalar<->columnar pairing)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human",
        help="output format",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=(
            "baseline file of grandfathered findings (default: "
            f"{baseline_mod.DEFAULT_BASELINE_NAME} in the cwd, if present)"
        ),
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--changed-only", metavar="REF", nargs="?", const="HEAD",
        default=None,
        help=(
            "report findings only in files changed vs the given git ref "
            "(default HEAD); the whole tree is still parsed so "
            "whole-program rules resolve across unchanged files"
        ),
    )
    parser.add_argument(
        "--budget-seconds", type=float, metavar="S", default=None,
        help=(
            "fail (exit 1) if parsing + linting takes longer than S "
            "seconds of wall time — CI's guard on analysis cost"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the summary line on success",
    )
    return parser


def _list_rules() -> int:
    for code, rule_cls in sorted(all_rules().items()):
        gate = ", ".join(rule_cls.packages) if rule_cls.packages else "all files"
        print(f"{code}  [{rule_cls.severity}]  {rule_cls.summary}")
        print(f"        gated to: {gate}")
    return 0


def _changed_files(ref: str) -> Optional[Set[str]]:
    """Absolute paths of files changed vs ``ref`` (None on git failure)."""
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", "--diff-filter=ACMR", ref],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    changed = {
        os.path.abspath(line.strip())
        for line in proc.stdout.splitlines()
        if line.strip()
    }
    # Untracked files are changes too (git diff does not list them).
    try:
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            check=True,
        )
        changed.update(
            os.path.abspath(line.strip())
            for line in untracked.stdout.splitlines()
            if line.strip()
        )
    except (OSError, subprocess.CalledProcessError):
        pass
    return changed


def sarif_report(findings: Sequence[Finding]) -> Dict[str, object]:
    """A SARIF 2.1.0 log for GitHub code scanning upload."""
    rules = all_rules()
    used = sorted({f.rule for f in findings} & set(rules))
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro-lint"
                        ),
                        "rules": [
                            {
                                "id": code,
                                "shortDescription": {
                                    "text": rules[code].summary
                                },
                                "defaultConfiguration": {
                                    "level": _SARIF_LEVELS.get(
                                        rules[code].severity, "error"
                                    )
                                },
                            }
                            for code in used
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": f.rule,
                        "level": _SARIF_LEVELS.get(f.severity, "error"),
                        "message": {"text": f.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": f.path.replace(os.sep, "/")
                                    },
                                    "region": {
                                        "startLine": max(f.line, 1),
                                        "startColumn": f.col + 1,
                                    },
                                }
                            }
                        ],
                    }
                    for f in findings
                ],
            }
        ],
    }


def _emit(
    findings: Sequence[Finding],
    fmt: str,
    grandfathered: int,
    scanned: int,
    quiet: bool,
) -> None:
    if fmt == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_json() for f in findings],
                    "grandfathered": grandfathered,
                    "files_scanned": scanned,
                },
                indent=2,
            )
        )
        return
    if fmt == "sarif":
        print(json.dumps(sarif_report(findings), indent=2))
        return
    for finding in findings:
        print(finding.render())
    if findings:
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"\nrepro-lint: {len(findings)} {noun} in {scanned} files", file=sys.stderr)
    elif not quiet:
        extra = f" ({grandfathered} grandfathered)" if grandfathered else ""
        print(f"repro-lint: clean — {scanned} files{extra}", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()

    select: Optional[List[str]] = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
        unknown = set(select) - set(all_rules())
        if unknown:
            print(
                f"repro-lint: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        print(
            f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr
        )
        return 2

    changed: Optional[Set[str]] = None
    if args.changed_only is not None:
        changed = _changed_files(args.changed_only)
        if changed is None:
            print(
                "repro-lint: --changed-only requires a git checkout and "
                f"a valid ref (got {args.changed_only!r})",
                file=sys.stderr,
            )
            return 2

    started = time.monotonic()
    parsed = parse_paths(args.paths)
    findings = lint_parsed(parsed, select=select)
    elapsed = time.monotonic() - started
    scanned = len(parsed)
    sources: Dict[str, List[str]] = {
        p.path: p.ctx.lines for p in parsed if p.ctx is not None
    }

    if changed is not None:
        findings = [
            f for f in findings if os.path.abspath(f.path) in changed
        ]

    baseline_path = args.baseline
    if baseline_path is None and os.path.isfile(
        baseline_mod.DEFAULT_BASELINE_NAME
    ):
        baseline_path = baseline_mod.DEFAULT_BASELINE_NAME

    if args.write_baseline:
        target = baseline_path or baseline_mod.DEFAULT_BASELINE_NAME
        baseline_mod.write(target, findings, sources)
        print(
            f"repro-lint: wrote {len(findings)} fingerprints to {target}",
            file=sys.stderr,
        )
        return 0

    grandfathered = 0
    if baseline_path is not None:
        try:
            allowed = baseline_mod.load(baseline_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro-lint: bad baseline: {exc}", file=sys.stderr)
            return 2
        findings, grandfathered = baseline_mod.filter_baselined(
            findings, sources, allowed
        )

    _emit(findings, args.format, grandfathered, scanned, args.quiet)
    if args.budget_seconds is not None and elapsed > args.budget_seconds:
        print(
            f"repro-lint: wall-time budget exceeded: {elapsed:.2f}s > "
            f"{args.budget_seconds:.2f}s over {scanned} files",
            file=sys.stderr,
        )
        return 1
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
