"""Worker-payload purity analysis backing PUR001.

Process pools copy module state at fork/spawn time; a worker that
mutates a module-level global mutates *its own copy*, silently — the
parent never sees the write, and whether two tasks see each other's
writes depends on pool reuse. Any module-global side effect reachable
from a parallel worker payload is therefore a cross-process
consistency bug waiting for a scheduler change.

The analysis computes, per function, the set of *effects* — module
globals rebound (``global X`` + assignment) or mutated in place
(``CACHE[k] = v``, ``REGISTRY.append(...)``) — including effects of
resolvable callees, bounded by the shared fixed point. It then finds
*payloads*: function references passed to ``submit``/``map``/
``starmap``/``apply_async`` or as ``model_builder``/``scheduler_builder``
recipe kwargs. Payload positions propagate through the call graph, so
a dispatcher like ``run_cells -> _run_tasks(fn, ...) -> pool.submit(fn)``
marks ``run_cells``'s argument as a payload too.

``# lint: pure`` on a def line asserts the function (and what it calls)
has no module-global effects; the analysis trusts it and stops there.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lintkit.facts import attribute_chain
from repro.lintkit.flow.callgraph import CallGraph, fixed_point
from repro.lintkit.flow.project import (
    FunctionInfo,
    ModuleInfo,
    param_offset,
)

#: Executor/pool methods that take a function to run in a worker.
SUBMIT_ATTRS = frozenset({"apply_async", "map", "starmap", "submit"})
#: Recipe kwargs whose values execute inside workers (see repro.parallel).
RECIPE_KWARGS = frozenset({"model_builder", "scheduler_builder"})

#: In-place mutator methods on containers. A call ``G.append(...)`` on a
#: module global G is an effect even though nothing is assigned.
_MUTATORS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)


@dataclass(frozen=True)
class PuritySummary:
    """Effects of calling a function, plus payload-forwarding params."""

    effects: Tuple[str, ...] = ()
    #: parameter indices this function hands to a pool/recipe sink.
    submit_params: Tuple[int, ...] = ()


@dataclass
class PurityViolation:
    """An impure function dispatched as a parallel worker payload."""

    func: FunctionInfo
    node: ast.AST
    payload: FunctionInfo
    effect: str


class PurityAnalysis:
    """Effect summaries + payload discovery over the call graph."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: Dict[str, PuritySummary] = {}

    def analyze(self, scan: Sequence[ModuleInfo]) -> List[PurityViolation]:
        functions = sorted(
            (f for m in scan for f in m.functions.values()),
            key=lambda f: f.ref,
        )
        fixed_point(functions, self._update)
        violations: List[PurityViolation] = []
        seen: Set[Tuple[str, int, str]] = set()
        for info in functions:
            for node, payload in self._payloads(info):
                summary = self.summaries.get(payload.ref)
                if summary is None or not summary.effects:
                    continue
                key = (
                    info.ctx.path,
                    getattr(node, "lineno", 0),
                    payload.ref,
                )
                if key in seen:
                    continue
                seen.add(key)
                violations.append(
                    PurityViolation(
                        func=info,
                        node=node,
                        payload=payload,
                        effect=summary.effects[0],
                    )
                )
        return violations

    def _update(self, info: FunctionInfo) -> bool:
        new = self._summarize(info)
        old = self.summaries.get(info.ref)
        self.summaries[info.ref] = new
        return new != old

    # -- effect summaries ----------------------------------------------
    def _summarize(self, info: FunctionInfo) -> PuritySummary:
        if info.declared_pure():
            return PuritySummary()
        module = self.graph.project.modules.get(info.module)
        if module is None:
            return PuritySummary()
        effects: Set[str] = set()
        declared_global, local_names = _scopes(info)
        mutable_roots = (
            (module.global_names | set(module.imports.members))
            - local_names
        ) | declared_global

        for stmt in _own_statements(info.node):
            for target, aug in _store_targets(stmt):
                if isinstance(target, ast.Name):
                    if target.id in declared_global or (
                        aug and target.id in mutable_roots
                        and target.id not in local_names
                    ):
                        effects.add(
                            f"rebinds module global '{target.id}'"
                        )
                else:
                    root = _root_name(target)
                    if root is not None and root in mutable_roots:
                        effects.add(
                            f"mutates module global '{root}' in place"
                        )
            for call in _own_calls(stmt):
                func = call.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                ):
                    root = _root_name(func.value)
                    if root is not None and root in mutable_roots:
                        effects.add(
                            f"mutates module global '{root}' via "
                            f".{func.attr}()"
                        )
                callee = self.graph.resolve(call, info)
                if callee is not None and callee.ref != info.ref:
                    inherited = self.summaries.get(callee.ref)
                    if inherited is not None:
                        for effect in inherited.effects:
                            effects.add(
                                f"{_base_effect(effect)} via "
                                f"{callee.name}()"
                            )
        submit_params = self._submit_params(info)
        return PuritySummary(
            effects=tuple(sorted(effects)),
            submit_params=submit_params,
        )

    def _submit_params(self, info: FunctionInfo) -> Tuple[int, ...]:
        params = info.param_names()
        out: Set[int] = set()
        for node, payload_expr in self._payload_exprs(info):
            if isinstance(payload_expr, ast.Name) and (
                payload_expr.id in params
            ):
                out.add(params.index(payload_expr.id))
        return tuple(sorted(out))

    # -- payload discovery ---------------------------------------------
    def _payload_exprs(
        self, info: FunctionInfo
    ) -> List[Tuple[ast.Call, ast.expr]]:
        """(call site, expression dispatched to a worker) pairs."""
        out: List[Tuple[ast.Call, ast.expr]] = []
        for site in self.graph.call_sites(info):
            call = site.node
            func = call.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else ""
            )
            if (
                isinstance(func, ast.Attribute)
                and name in SUBMIT_ATTRS
                and call.args
            ):
                out.append((call, call.args[0]))
            for kw in call.keywords:
                if kw.arg in RECIPE_KWARGS:
                    out.append((call, kw.value))
            callee = site.callee
            if callee is not None and callee.ref != info.ref:
                summary = self.summaries.get(callee.ref)
                if summary is None or not summary.submit_params:
                    continue
                offset = param_offset(call, callee)
                callee_params = callee.param_names()
                for index in summary.submit_params:
                    apos = index - offset
                    if 0 <= apos < len(call.args):
                        out.append((call, call.args[apos]))
                        continue
                    for kw in call.keywords:
                        if (
                            kw.arg is not None
                            and kw.arg in callee_params
                            and callee_params.index(kw.arg) == index
                        ):
                            out.append((call, kw.value))
        return out

    def _payloads(
        self, info: FunctionInfo
    ) -> List[Tuple[ast.Call, FunctionInfo]]:
        out: List[Tuple[ast.Call, FunctionInfo]] = []
        for node, expr in self._payload_exprs(info):
            payload = self._resolve_ref(expr, info)
            if payload is not None:
                out.append((node, payload))
        return out

    def _resolve_ref(
        self, expr: ast.expr, info: FunctionInfo
    ) -> Optional[FunctionInfo]:
        """A function *reference* (not call) to its FunctionInfo."""
        project = self.graph.project
        module = project.modules.get(info.module)
        if module is None:
            return None
        if isinstance(expr, ast.Name):
            local = module.functions.get(expr.id)
            if local is not None and local.class_name is None:
                return local
            member = info.imports.members.get(expr.id)
            if member is not None:
                return project.functions.get(f"{member[0]}.{member[1]}")
            return None
        chain = attribute_chain(expr)
        if chain is None or len(chain) < 2:
            return None
        root, rest = chain[0], chain[1:]
        mod = info.imports.modules.get(root)
        if mod is not None:
            return project.functions.get(".".join([mod, *rest]))
        member = info.imports.members.get(root)
        if member is not None:
            return project.functions.get(
                ".".join([member[0], member[1], *rest])
            )
        if root in module.classes and len(rest) == 1:
            return module.functions.get(f"{root}.{rest[0]}")
        return None


def _base_effect(effect: str) -> str:
    return effect.split(" via ")[0]


def _scopes(info: FunctionInfo) -> Tuple[Set[str], Set[str]]:
    """(names declared ``global``, local names that shadow globals)."""
    declared: Set[str] = set()
    local: Set[str] = set(info.param_names())
    args = info.node.args
    local.update(a.arg for a in args.kwonlyargs)
    if args.vararg is not None:
        local.add(args.vararg.arg)
    if args.kwarg is not None:
        local.add(args.kwarg.arg)
    for stmt in _own_statements(info.node):
        if isinstance(stmt, ast.Global):
            declared.update(stmt.names)
            continue
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Store
            ):
                local.add(node.id)
    local -= declared
    return declared, local


def _store_targets(stmt: ast.stmt) -> List[Tuple[ast.expr, bool]]:
    """(assignment target, is-augmented) pairs for one statement."""
    if isinstance(stmt, ast.Assign):
        return [(t, False) for t in stmt.targets]
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        return [(stmt.target, False)]
    if isinstance(stmt, ast.AugAssign):
        return [(stmt.target, True)]
    if isinstance(stmt, ast.Delete):
        return [(t, True) for t in stmt.targets]
    return []


def _root_name(expr: ast.expr) -> Optional[str]:
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _own_statements(node: ast.AST) -> List[ast.stmt]:
    out: List[ast.stmt] = []
    stack: List[ast.stmt] = list(getattr(node, "body", []))
    while stack:
        stmt = stack.pop(0)
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        out.append(stmt)
        for attr in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, attr, []))
        for handler in getattr(stmt, "handlers", []):
            stack.extend(handler.body)
    return out


def _own_calls(stmt: ast.stmt) -> List[ast.Call]:
    calls: List[ast.Call] = []
    for expr in ast.iter_child_nodes(stmt):
        if isinstance(expr, ast.expr):
            calls.extend(
                n for n in ast.walk(expr) if isinstance(n, ast.Call)
            )
    return calls


__all__ = [
    "PurityAnalysis",
    "PuritySummary",
    "PurityViolation",
    "RECIPE_KWARGS",
    "SUBMIT_ATTRS",
]
