"""Whole-program lint rules built on the flow analyses.

========  ============================================================
NDT001    nondeterminism taint: a wall-clock / global-RNG / ``id()`` /
          set-order value flows (possibly through several calls) into a
          campaign-store write, fingerprint, cache key or serialized
          output — the cross-function generalization of DET001
UNIT001   dimension inference: cycle / event / byte / fraction
          quantities combined or compared incompatibly, with units
          carried through helper returns
PUR001    parallel purity: a function dispatched as a pool worker
          payload (or reachable from one) mutates module-global state —
          per-process copies silently diverge
DUAL001   scalar<->columnar pairing: every public ``repro.vector``
          kernel declares its event-loop oracle in ``SCALAR_ORACLES``
          and stays structurally in sync with it (constants, branch
          kinds), with intentional drift waived in ``DRIFT_WAIVERS``
========  ============================================================

These register alongside the per-file rules; the driver hands them the
:class:`~repro.lintkit.flow.project.Project` built from all linted
files at once.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.lintkit.base import Finding, ProjectRule, register
from repro.lintkit.flow.callgraph import CallGraph
from repro.lintkit.flow.pairs import check_pairs
from repro.lintkit.flow.project import Project
from repro.lintkit.flow.purity import PurityAnalysis
from repro.lintkit.flow.taint import TaintAnalysis
from repro.lintkit.flow.units import UnitAnalysis
from repro.lintkit.rules import DETERMINISM_PACKAGES, HOT_PACKAGES

#: Everything DET001 covers plus every layer that persists or keys
#: campaign state — taint may *flow* anywhere, but findings are only
#: reported in modules whose outputs feed results or durable records.
NONDET_SCAN_PACKAGES: Tuple[str, ...] = DETERMINISM_PACKAGES + (
    "repro.durability",
    "repro.experiments",
    "repro.harness",
    "repro.obs",
    "repro.parallel",
    "repro.resilience",
    "repro.telemetry",
    "repro.workloads",
)


@register
class Ndt001NondeterminismTaint(ProjectRule):
    """Nondeterministic values must not reach persisted/keyed outputs.

    DET001 flags the *source* call sites inside simulation modules; this
    rule follows the value. A ``time.monotonic()`` read is legitimate
    for a retry budget — until the elapsed time is stored into a
    durable record, hashed into a run key, or serialized next to
    results, at which point re-running the campaign produces different
    bytes and resume/verification tooling breaks.
    """

    code = "NDT001"
    summary = "nondeterministic value flows into a persistence/key sink"
    packages = NONDET_SCAN_PACKAGES

    def check_project(self, project: Project) -> Iterator[Finding]:
        scan = project.modules_matching(self.packages)
        analysis = TaintAnalysis(CallGraph(project))
        for violation in analysis.analyze(scan):
            yield self.finding(
                violation.func.ctx,
                violation.node,
                f"{violation.source} reaches {violation.sink} in "
                f"{violation.func.qualname}(); persisted/keyed bytes "
                "must be reproducible — derive this value from "
                "simulated time or config, or keep it out of durable "
                "records",
            )


@register
class Unit001DimensionMismatch(ProjectRule):
    """Cycles, events, bytes and fractions must not mix implicitly.

    The slowdown model is ratio arithmetic over cycle and event counts;
    Python will happily add a fraction to a cycle count. Units are
    inferred from names and carried through helper returns; declare a
    return unit with ``# lint: unit[cycles]`` on the def line when the
    name alone is ambiguous.
    """

    code = "UNIT001"
    summary = "incompatible units combined in quantity arithmetic"
    packages = HOT_PACKAGES

    def check_project(self, project: Project) -> Iterator[Finding]:
        scan = project.modules_matching(self.packages)
        analysis = UnitAnalysis(CallGraph(project))
        for violation in analysis.analyze(scan):
            yield self.finding(
                violation.func.ctx,
                violation.node,
                f"unit mismatch in {violation.func.qualname}(): "
                f"{violation.message}; convert explicitly or rename if "
                "the inferred unit is wrong "
                "(# lint: unit[...] declares return units)",
            )


@register
class Pur001ImpureWorkerPayload(ProjectRule):
    """Pool worker payloads must not mutate module-global state.

    Each pool process gets its own copy of module globals; a payload
    that rebinds or mutates one writes to a copy the parent never sees,
    and task-to-task visibility depends on worker reuse. Mark a function
    ``# lint: pure`` on its def line if its effects are confined (e.g.
    a per-process cache that is semantically transparent).
    """

    code = "PUR001"
    summary = "parallel worker payload mutates module-global state"

    def check_project(self, project: Project) -> Iterator[Finding]:
        scan = project.modules_matching(self.packages)
        analysis = PurityAnalysis(CallGraph(project))
        for violation in analysis.analyze(scan):
            yield self.finding(
                violation.func.ctx,
                violation.node,
                f"worker payload {violation.payload.qualname}() "
                f"{violation.effect}; module-global writes diverge "
                "across pool processes — pass state in, return results "
                "out (# lint: pure on the def asserts confinement)",
            )


@register
class Dual001ScalarColumnarDrift(ProjectRule):
    """Columnar kernels must declare and track their scalar oracles."""

    code = "DUAL001"
    summary = "columnar kernel unregistered or drifted from its oracle"
    packages = ("repro.vector",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        scan = project.modules_matching(self.packages)
        for violation in check_pairs(project, scan):
            yield self.finding(
                violation.module.ctx, violation.node, violation.message
            )


__all__ = [
    "Dual001ScalarColumnarDrift",
    "NONDET_SCAN_PACKAGES",
    "Ndt001NondeterminismTaint",
    "Pur001ImpureWorkerPayload",
    "Unit001DimensionMismatch",
]
