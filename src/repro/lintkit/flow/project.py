"""Project symbol table: modules, classes, functions, call resolution.

A :class:`Project` indexes every linted module once. Rules and analyses
resolve names through it instead of re-deriving imports per file:

* ``resolve_call`` — an ``ast.Call`` in a given function to the
  :class:`FunctionInfo` it invokes, through ``from x import y as z``
  aliases, ``import m as n`` chains, ``self.method(...)`` and
  same-module ``ClassName.method(...)`` references.
* ``resolve_dotted`` — a fully-qualified dotted string (as written in
  the ``SCALAR_ORACLES`` registry) to a function or class.

Resolution is best-effort and sound-for-silence: anything dynamic
(instance attributes, ``getattr``, re-exported names) returns ``None``
and downstream analyses treat the call as opaque.

Declared facts
--------------
Two comment markers on a ``def`` line feed the analyses:

* ``# lint: pure`` — trust the function to have no module-global side
  effects (PUR001 stops descending).
* ``# lint: unit[cycles]`` — declare the return unit for dimension
  inference (UNIT001) when the name alone is ambiguous.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.lintkit.base import LintContext
from repro.lintkit.facts import ImportMap, attribute_chain

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_PURE_RE = re.compile(r"#\s*lint:\s*pure\b")
_UNIT_RE = re.compile(r"#\s*lint:\s*unit\[([a-z]+)\]")


@dataclass
class FunctionInfo:
    """One function or method, with enough context to analyze it."""

    module: str
    qualname: str
    node: FunctionNode
    imports: ImportMap
    ctx: LintContext
    class_name: Optional[str] = None

    @property
    def ref(self) -> str:
        """Fully-qualified name: ``module.qualname``."""
        return f"{self.module}.{self.qualname}"

    @property
    def name(self) -> str:
        return self.node.name

    def param_names(self) -> List[str]:
        """Parameter names, including ``self`` for methods.

        Keyword-only parameters come last, so a positional argument's
        index always lands inside the positional region and a
        keyword argument resolves by name wherever it sits.
        """
        args = self.node.args
        return [
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]

    def _def_line(self) -> str:
        return self.ctx.source_line(self.node.lineno)

    def declared_pure(self) -> bool:
        """``# lint: pure`` on the def line: trusted to have no effects."""
        return _PURE_RE.search(self._def_line()) is not None

    def declared_unit(self) -> Optional[str]:
        """The unit declared by ``# lint: unit[...]`` on the def line."""
        match = _UNIT_RE.search(self._def_line())
        return match.group(1) if match else None


@dataclass
class ClassInfo:
    """One class with its directly-defined methods."""

    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def ref(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class ModuleInfo:
    """One indexed module: symbols, imports, module-level bindings."""

    ctx: LintContext
    imports: ImportMap
    #: qualname ("f" or "Cls.m") -> info, for every indexed function.
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: names bound by module-level assignments (mutable-global candidates).
    global_names: FrozenSet[str] = frozenset()

    @property
    def name(self) -> str:
        return self.ctx.module


def _module_global_names(tree: ast.Module) -> FrozenSet[str]:
    names: set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name):
                    names.add(node.id)
    return frozenset(names)


def _index_module(ctx: LintContext) -> ModuleInfo:
    imports = ImportMap()
    imports.visit(ctx.tree)
    info = ModuleInfo(
        ctx=ctx,
        imports=imports,
        global_names=_module_global_names(ctx.tree),
    )
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[stmt.name] = FunctionInfo(
                module=ctx.module,
                qualname=stmt.name,
                node=stmt,
                imports=imports,
                ctx=ctx,
            )
        elif isinstance(stmt, ast.ClassDef):
            cls = ClassInfo(module=ctx.module, name=stmt.name, node=stmt)
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method = FunctionInfo(
                        module=ctx.module,
                        qualname=f"{stmt.name}.{member.name}",
                        node=member,
                        imports=imports,
                        ctx=ctx,
                        class_name=stmt.name,
                    )
                    cls.methods[member.name] = method
                    info.functions[method.qualname] = method
            info.classes[stmt.name] = cls
    return info


class Project:
    """Symbol table over every linted module, built once per run."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        #: full ref ("pkg.mod.Cls.m") -> info, across all modules.
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for minfo in modules.values():
            for func in minfo.functions.values():
                self.functions[func.ref] = func
            for cls in minfo.classes.values():
                self.classes[cls.ref] = cls

    @classmethod
    def from_contexts(cls, contexts: Sequence[LintContext]) -> "Project":
        modules: Dict[str, ModuleInfo] = {}
        for ctx in contexts:
            modules[ctx.module] = _index_module(ctx)
        return cls(modules)

    # -- queries --------------------------------------------------------
    def modules_matching(
        self, packages: Tuple[str, ...]
    ) -> List[ModuleInfo]:
        """Modules gated by ``packages`` (all modules when empty), in
        deterministic name order."""
        out: List[ModuleInfo] = []
        for name in sorted(self.modules):
            if not packages or any(
                name == pkg or name.startswith(pkg + ".")
                for pkg in packages
            ):
                out.append(self.modules[name])
        return out

    def owns_module_of(self, dotted: str) -> bool:
        """Whether ``dotted`` names a symbol inside a linted module —
        i.e. failing to resolve it is a finding, not missing context."""
        return any(
            dotted.startswith(name + ".") for name in self.modules
        )

    def resolve_dotted(
        self, dotted: str
    ) -> Optional[Union[FunctionInfo, ClassInfo]]:
        """A fully-qualified dotted name to its function or class."""
        func = self.functions.get(dotted)
        if func is not None:
            return func
        return self.classes.get(dotted)

    def resolve_call(
        self, call: ast.Call, caller: FunctionInfo
    ) -> Optional[FunctionInfo]:
        """The project function an ``ast.Call`` in ``caller`` invokes."""
        minfo = self.modules.get(caller.module)
        if minfo is None:
            return None
        func = call.func
        imports = caller.imports
        if isinstance(func, ast.Name):
            local = minfo.functions.get(func.id)
            if local is not None and local.class_name is None:
                return local
            member = imports.members.get(func.id)
            if member is not None:
                return self.functions.get(f"{member[0]}.{member[1]}")
            return None
        chain = attribute_chain(func)
        if chain is None or len(chain) < 2:
            return None
        root, rest = chain[0], chain[1:]
        if root == "self" and caller.class_name is not None and len(rest) == 1:
            return minfo.functions.get(f"{caller.class_name}.{rest[0]}")
        module = imports.modules.get(root)
        if module is not None:
            return self.functions.get(".".join([module, *rest]))
        member = imports.members.get(root)
        if member is not None:
            return self.functions.get(
                ".".join([member[0], member[1], *rest])
            )
        if root in minfo.classes and len(rest) == 1:
            return minfo.functions.get(f"{root}.{rest[0]}")
        return None


def param_offset(call: ast.Call, callee: FunctionInfo) -> int:
    """How many leading params (``self``/``cls``) the call binds
    implicitly — 1 for a plain method invoked as ``obj.m(...)``, else 0.
    """
    if callee.class_name is None:
        return 0
    decorators = {
        d.id for d in callee.node.decorator_list if isinstance(d, ast.Name)
    }
    if "staticmethod" in decorators:
        return 0
    if isinstance(call.func, ast.Attribute):
        return 1
    return 0


__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "FunctionNode",
    "ModuleInfo",
    "Project",
    "param_offset",
]
