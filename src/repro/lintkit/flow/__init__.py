"""Whole-program flow analysis for the simulator-invariant linter.

The per-file rules in :mod:`repro.lintkit.rules` see one module at a
time, so any invariant violation that crosses a function boundary — a
wall-clock value returned from a helper into a persisted record, a
fraction flowing into cycle arithmetic through two calls, a worker
payload that mutates a module global three frames down — escapes them.
This package gives rules a *project* view:

* :mod:`~repro.lintkit.flow.project` — symbol table: every module,
  class and function in the linted tree, plus call resolution through
  import aliases, ``self``, and cross-module references.
* :mod:`~repro.lintkit.flow.callgraph` — resolved call sites per
  function and the bounded fixed-point driver every interprocedural
  analysis shares.
* :mod:`~repro.lintkit.flow.taint` — nondeterminism taint (NDT001):
  wall-clock / global-RNG / ``id()`` / set-iteration-order values
  tracked through calls and returns into persistence and key sinks.
* :mod:`~repro.lintkit.flow.units` — lightweight dimension inference
  (UNIT001) over cycle / event / byte / fraction quantities.
* :mod:`~repro.lintkit.flow.purity` — module-global side-effect
  analysis (PUR001) of everything reachable from parallel worker
  payloads.
* :mod:`~repro.lintkit.flow.pairs` — the scalar<->columnar pair
  registry facts (DUAL001) keeping ``repro.vector`` kernels structurally
  in sync with their event-loop oracles.
* :mod:`~repro.lintkit.flow.rules` — the :class:`ProjectRule`
  subclasses wiring the analyses into the lint driver.

All analyses are deliberately *bounded*: summaries propagate through the
call graph for a fixed number of passes (:data:`~repro.lintkit.flow.
callgraph.MAX_PASSES`), nested function scopes are not descended into,
and unresolvable calls drop to "unknown" rather than guessing. The rules
err on the side of silence; declared facts (``# lint: pure``,
``# lint: unit[...]``, the ``SCALAR_ORACLES`` registry) let code state
what analysis cannot see. See ``docs/lintkit.md``.
"""

from repro.lintkit.flow.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
)

__all__ = ["ClassInfo", "FunctionInfo", "ModuleInfo", "Project"]
