"""Scalar<->columnar pair registry backing DUAL001.

The columnar backend (:mod:`repro.vector`) reimplements event-loop
semantics as batch kernels; the event loop is the bit-exactness oracle.
That equivalence only holds while the two implementations agree on the
*structure* of the computation — thresholds, bank-count moduli, branch
predicates. A constant tweaked on one side and not the other is exactly
the bug the A/B harness exists to catch, one release too late.

DUAL001 makes the pairing explicit and machine-checked:

* every public kernel in a ``*.passes`` module must have an entry in a
  module-level ``SCALAR_ORACLES`` dict literal (anywhere in the linted
  tree) mapping its dotted name to its scalar oracle's dotted name;
* the oracle must resolve to a function or class in the linted tree;
* the kernel's *structural facts* — numeric constants (magnitudes 0, 1
  and 2 are ignored as ambient) and comparison operator kinds — must be
  a subset of the oracle's. New constants or new kinds of branches on
  the kernel side mean the pair has drifted.

Intentional divergence is declared in ``DRIFT_WAIVERS`` (dotted kernel
name -> one-line rationale), which suppresses the drift check but never
the registration requirement.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.lintkit.flow.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
)

#: Names of the module-level dict literals the registry is read from.
ORACLES_NAME = "SCALAR_ORACLES"
WAIVERS_NAME = "DRIFT_WAIVERS"

#: Constant magnitudes too common to signify structure.
_AMBIENT = frozenset({0.0, 1.0, 2.0})


@dataclass(frozen=True)
class StructFacts:
    """Constants and comparison kinds that define a function's shape."""

    constants: FrozenSet[float]
    compare_ops: FrozenSet[str]


def struct_facts(node: ast.AST) -> StructFacts:
    """Extract :class:`StructFacts` from any AST subtree."""
    constants: set[float] = set()
    ops: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant):
            value = sub.value
            if (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and abs(float(value)) not in _AMBIENT
            ):
                constants.add(abs(float(value)))
        elif isinstance(sub, ast.Compare):
            ops.update(type(op).__name__ for op in sub.ops)
    return StructFacts(
        constants=frozenset(constants), compare_ops=frozenset(ops)
    )


@dataclass
class PairViolation:
    """A kernel without (or out of sync with) its scalar oracle."""

    module: ModuleInfo
    node: ast.AST
    kernel: str
    message: str


def registry(project: Project) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Merge every ``SCALAR_ORACLES`` / ``DRIFT_WAIVERS`` literal in the
    linted tree into (oracles, waivers) maps."""
    oracles: Dict[str, str] = {}
    waivers: Dict[str, str] = {}
    for name in sorted(project.modules):
        tree = project.modules[name].ctx.tree
        for stmt in tree.body:
            target = _dict_literal_named(stmt)
            if target is None:
                continue
            dict_name, value = target
            into = oracles if dict_name == ORACLES_NAME else waivers
            for key, val in zip(value.keys, value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(val, ast.Constant)
                    and isinstance(val.value, str)
                ):
                    into[key.value] = val.value
    return oracles, waivers


def _dict_literal_named(
    stmt: ast.stmt,
) -> Optional[Tuple[str, ast.Dict]]:
    value: Optional[ast.expr]
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target, value = stmt.targets[0], stmt.value
    elif isinstance(stmt, ast.AnnAssign):
        target, value = stmt.target, stmt.value
    else:
        return None
    if (
        isinstance(target, ast.Name)
        and target.id in (ORACLES_NAME, WAIVERS_NAME)
        and isinstance(value, ast.Dict)
    ):
        return target.id, value
    return None


def _oracle_facts(
    resolved: Union[FunctionInfo, ClassInfo],
) -> StructFacts:
    return struct_facts(resolved.node)


def check_pairs(
    project: Project, scan: List[ModuleInfo]
) -> List[PairViolation]:
    """Run the DUAL001 checks over kernel modules in ``scan``."""
    oracles, waivers = registry(project)
    violations: List[PairViolation] = []
    for module in scan:
        if not _is_kernel_module(module.name):
            continue
        for qualname in sorted(module.functions):
            info = module.functions[qualname]
            if info.class_name is not None or info.name.startswith("_"):
                continue
            ref = info.ref
            oracle = oracles.get(ref)
            if oracle is None:
                violations.append(
                    PairViolation(
                        module=module,
                        node=info.node,
                        kernel=ref,
                        message=(
                            f"kernel '{info.name}' has no entry in "
                            f"{ORACLES_NAME}; declare its scalar oracle"
                        ),
                    )
                )
                continue
            resolved = project.resolve_dotted(oracle)
            if resolved is None:
                if project.owns_module_of(oracle):
                    violations.append(
                        PairViolation(
                            module=module,
                            node=info.node,
                            kernel=ref,
                            message=(
                                f"declared oracle '{oracle}' does not "
                                "resolve to a function or class"
                            ),
                        )
                    )
                continue
            if ref in waivers:
                continue
            drift = _drift(struct_facts(info.node), _oracle_facts(resolved))
            if drift is not None:
                violations.append(
                    PairViolation(
                        module=module,
                        node=info.node,
                        kernel=ref,
                        message=(
                            f"kernel '{info.name}' drifted from oracle "
                            f"'{oracle}': {drift} (waive in "
                            f"{WAIVERS_NAME} if intentional)"
                        ),
                    )
                )
    return violations


def _is_kernel_module(name: str) -> bool:
    return name == "repro.vector.passes" or name.endswith(".passes")


def _drift(kernel: StructFacts, oracle: StructFacts) -> Optional[str]:
    """A human-readable drift description, or None when in sync."""
    extra_constants = kernel.constants - oracle.constants
    if extra_constants:
        listed = ", ".join(
            _fmt_const(c) for c in sorted(extra_constants)[:4]
        )
        return f"constants absent from the oracle: {listed}"
    if kernel.compare_ops:
        extra_ops = kernel.compare_ops - oracle.compare_ops
        if extra_ops:
            return (
                "comparison kinds absent from the oracle: "
                + ", ".join(sorted(extra_ops))
            )
    return None


def _fmt_const(value: float) -> str:
    return str(int(value)) if value == int(value) else str(value)


__all__ = [
    "ORACLES_NAME",
    "PairViolation",
    "StructFacts",
    "WAIVERS_NAME",
    "check_pairs",
    "registry",
    "struct_facts",
]
