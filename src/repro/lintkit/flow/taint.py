"""Nondeterminism taint analysis backing NDT001.

Tracks values born from wall clocks, the module-global RNG, entropy
sources, ``id()``/``hash()`` and set-iteration order through
assignments, calls and returns, and reports when one reaches a
*persistence or key sink* — a campaign-store write, a fingerprint/key
helper, ``json``/``pickle`` serialization, or a ``hashlib`` digest.

The analysis is interprocedural via per-function summaries:

* ``returns`` — calling the function yields a tainted value (and why);
* ``param_returns`` — parameters whose values flow into the return
  value (constructors and wrappers forward taint through these);
* ``param_sinks`` — parameters that reach a sink inside the function
  (or inside one of its callees, bounded by the fixed-point depth).

Within a function the walk is statement-ordered and accumulate-only:
branches merge by union, loops are scanned once, attribute/subscript
stores are not tracked. Parameters are seeded with ``[param:i]`` markers
so dependence on inputs and dependence on real sources share one
mechanism. ``sorted()``/``min()``/``sum()``-style consumers clear
*set-order* taint (order no longer matters) but never value taint —
``int(time.time())`` is still a wall-clock value.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lintkit.facts import call_target, describe_setish, nondet_call
from repro.lintkit.flow.callgraph import CallGraph, fixed_point
from repro.lintkit.flow.project import FunctionInfo, ModuleInfo, param_offset

#: Bare/attribute call names that persist or key campaign state. These
#: are matched by *name* so wrappers and methods count: the campaign
#: store writers, the durable-write helpers, and the fingerprint/key
#: derivation helpers.
SINK_NAMES: FrozenSet[str] = frozenset(
    {
        "append_degraded",
        "append_failure",
        "append_line",
        "atomic_write_text",
        "cache_key",
        "config_fingerprint",
        "failure_signature",
        "put_alone",
        "put_metrics",
        "put_run",
        "run_key",
        "stable_hash",
    }
)

#: Import-resolved (root module, member) sinks: serialization and
#: digests. A nondeterministic value reaching these ends up in a file,
#: a fingerprint, or a checksum.
SINK_TARGETS: FrozenSet[Tuple[str, str]] = frozenset(
    {
        ("hashlib", "md5"),
        ("hashlib", "new"),
        ("hashlib", "sha1"),
        ("hashlib", "sha256"),
        ("json", "dump"),
        ("json", "dumps"),
        ("pickle", "dump"),
        ("pickle", "dumps"),
    }
)

#: Builtins whose result is order-insensitive in their iterable input:
#: they clear set-order taint (and, being aggregations over content,
#: value taint of the *ordering* kind only).
_ORDER_SANITIZERS = frozenset(
    {"all", "any", "frozenset", "len", "max", "min", "set", "sorted", "sum"}
)
#: Builtins that materialize iteration order into a sequence.
_ORDER_MATERIALIZERS = frozenset({"iter", "list", "tuple"})
#: Builtins that preserve the taint of their argument value.
_VALUE_PRESERVING = frozenset(
    {"abs", "bool", "bytes", "float", "format", "int", "repr", "round", "str"}
)

_PARAM_MARKER_RE = re.compile(r"\[param:(\d+)\]")
_SET_ORDER_TAG = "[set-order]"


def _is_param_marker(desc: str) -> bool:
    """Whether ``desc`` carries only parameter dependence, no real source."""
    return _PARAM_MARKER_RE.sub("", desc).strip() == ""


def _param_indices(desc: str) -> List[int]:
    return [int(m) for m in _PARAM_MARKER_RE.findall(desc)]


def _base_desc(desc: str) -> str:
    """Strip the ``via`` chain so summaries stay bounded across passes."""
    return desc.split(" via ")[0]


@dataclass(frozen=True)
class TaintSummary:
    """What callers need to know about one function."""

    returns: Optional[str] = None
    param_returns: Tuple[int, ...] = ()
    param_sinks: Tuple[Tuple[int, str], ...] = ()


@dataclass
class TaintViolation:
    """A nondeterministic value reaching a persistence/key sink."""

    func: FunctionInfo
    node: ast.AST
    source: str
    sink: str


@dataclass
class _FnState:
    info: FunctionInfo
    params: List[str]
    env: Dict[str, str] = field(default_factory=dict)
    returns: Optional[str] = None
    param_returns: Set[int] = field(default_factory=set)
    param_sinks: Dict[int, str] = field(default_factory=dict)


class TaintAnalysis:
    """Two-phase driver: summary fixed point, then violation collection."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: Dict[str, TaintSummary] = {}

    def analyze(self, scan: Sequence[ModuleInfo]) -> List[TaintViolation]:
        functions = sorted(
            (f for m in scan for f in m.functions.values()),
            key=lambda f: f.ref,
        )
        fixed_point(functions, self._update)
        violations: List[TaintViolation] = []
        for info in functions:
            self._run(info, violations)
        unique: Dict[Tuple[str, int, int, str, str], TaintViolation] = {}
        for violation in violations:
            key = (
                violation.func.ctx.path,
                getattr(violation.node, "lineno", 0),
                getattr(violation.node, "col_offset", 0),
                violation.source,
                violation.sink,
            )
            unique.setdefault(key, violation)
        return list(unique.values())

    def _update(self, info: FunctionInfo) -> bool:
        new = self._run(info, None)
        old = self.summaries.get(info.ref)
        self.summaries[info.ref] = new
        return new != old

    # -- per-function walk ---------------------------------------------
    def _run(
        self, info: FunctionInfo, collect: Optional[List[TaintViolation]]
    ) -> TaintSummary:
        params = info.param_names()
        st = _FnState(info=info, params=params)
        for index, name in enumerate(params):
            st.env[name] = f"[param:{index}]"
        self._stmts(info.node.body, st, collect)
        return TaintSummary(
            returns=st.returns,
            param_returns=tuple(sorted(st.param_returns)),
            param_sinks=tuple(sorted(st.param_sinks.items())),
        )

    def _stmts(
        self,
        stmts: Sequence[ast.stmt],
        st: _FnState,
        collect: Optional[List[TaintViolation]],
    ) -> None:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested scopes are out of the bounded walk
            for expr in ast.iter_child_nodes(stmt):
                if isinstance(expr, ast.expr):
                    self._check_sinks(expr, st, collect)
            if isinstance(stmt, ast.Assign):
                taint = self._expr(stmt.value, st)
                for target in stmt.targets:
                    self._bind(target, taint, st)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._bind(stmt.target, self._expr(stmt.value, st), st)
            elif isinstance(stmt, ast.AugAssign):
                taint = self._expr(stmt.value, st)
                if taint is None and isinstance(stmt.target, ast.Name):
                    taint = st.env.get(stmt.target.id)
                if taint is not None:
                    self._bind(stmt.target, taint, st)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                taint = self._expr(stmt.value, st)
                if taint is not None:
                    if _is_param_marker(taint):
                        st.param_returns.update(_param_indices(taint))
                    elif st.returns is None:
                        st.returns = _base_desc(taint)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._bind(stmt.target, self._iter_taint(stmt.iter, st), st)
                self._stmts(stmt.body, st, collect)
                self._stmts(stmt.orelse, st, collect)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._stmts(stmt.body, st, collect)
                self._stmts(stmt.orelse, st, collect)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        self._bind(
                            item.optional_vars,
                            self._expr(item.context_expr, st),
                            st,
                        )
                self._stmts(stmt.body, st, collect)
            elif isinstance(stmt, ast.Try):
                self._stmts(stmt.body, st, collect)
                for handler in stmt.handlers:
                    self._stmts(handler.body, st, collect)
                self._stmts(stmt.orelse, st, collect)
                self._stmts(stmt.finalbody, st, collect)

    def _bind(
        self, target: ast.expr, taint: Optional[str], st: _FnState
    ) -> None:
        if isinstance(target, ast.Name):
            if taint is None:
                st.env.pop(target.id, None)
            else:
                st.env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint, st)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint, st)
        # attribute/subscript stores are not tracked (bounded analysis)

    # -- expression taint ----------------------------------------------
    def _expr(self, expr: ast.expr, st: _FnState) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return st.env.get(expr.id)
        if isinstance(expr, ast.Call):
            return self._call(expr, st)
        if isinstance(expr, ast.Lambda):
            return None
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in expr.generators:
                taint = self._iter_taint(gen.iter, st)
                if taint is not None and not isinstance(expr, ast.SetComp):
                    return taint
            return None
        # Compound expression (tuple/dict/binop/...): a real source in
        # any operand wins; otherwise union the parameter markers so a
        # marker in one slot cannot shadow a source in the next.
        marker_indices: Set[int] = set()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                taint = self._expr(child, st)
                if taint is None:
                    continue
                if _is_param_marker(taint):
                    marker_indices.update(_param_indices(taint))
                else:
                    return taint
        if marker_indices:
            return "".join(f"[param:{i}]" for i in sorted(marker_indices))
        return None

    def _iter_taint(self, expr: ast.expr, st: _FnState) -> Optional[str]:
        setish = describe_setish(expr)
        if setish is not None:
            return f"iteration order of {setish} {_SET_ORDER_TAG}"
        return self._expr(expr, st)

    def _call(self, call: ast.Call, st: _FnState) -> Optional[str]:
        hit = nondet_call(call, st.info.imports)
        if hit is not None:
            kind, desc = hit
            return f"{desc} [{kind}]"
        func = call.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        arg_taints = [self._expr(arg, st) for arg in call.args]
        kw_taints = [self._expr(kw.value, st) for kw in call.keywords]
        if isinstance(func, ast.Name) and name in _ORDER_SANITIZERS:
            for taint in (*arg_taints, *kw_taints):
                if taint is not None and _SET_ORDER_TAG not in taint:
                    return taint
            return None
        if (
            isinstance(func, ast.Name)
            and name in _ORDER_MATERIALIZERS
            and call.args
        ):
            setish = describe_setish(call.args[0])
            if setish is not None:
                return f"iteration order of {setish} {_SET_ORDER_TAG}"
            return arg_taints[0]
        if isinstance(func, ast.Attribute) and name == "pop":
            setish = describe_setish(func.value)
            if setish is not None:
                return f".pop() from {setish} {_SET_ORDER_TAG}"
        callee = self.graph.resolve(call, st.info)
        if callee is not None:
            summary = self.summaries.get(callee.ref)
            if summary is None:
                return None
            if summary.returns is not None:
                return f"{summary.returns} via {callee.name}()"
            reals: List[str] = []
            markers: List[str] = []
            for pos, taint in self._mapped_args(call, callee, arg_taints, kw_taints):
                if pos in summary.param_returns and taint is not None:
                    if _is_param_marker(taint):
                        markers.append(taint)
                    else:
                        reals.append(taint)
            if reals:
                return f"{_base_desc(reals[0])} via {callee.name}()"
            if markers:
                indices = sorted(
                    {i for text in markers for i in _param_indices(text)}
                )
                return "".join(f"[param:{i}]" for i in indices)
            return None
        if isinstance(func, ast.Name) and name in _VALUE_PRESERVING:
            for taint in arg_taints:
                if taint is not None:
                    return taint
            return None
        if isinstance(func, ast.Attribute):
            receiver = self._expr(func.value, st)
            if receiver is not None:
                return receiver
        # Unresolved call: conservatively forward argument taint — the
        # result of f(x) is a function of x. A real source wins; absent
        # one, parameter markers from *all* arguments are unioned so a
        # constructor like DegradedCell.from_failure(failure, elapsed_s=e)
        # forwards dependence on every input, not just the first.
        marker_indices: Set[int] = set()
        for taint in (*arg_taints, *kw_taints):
            if taint is None:
                continue
            if _is_param_marker(taint):
                marker_indices.update(_param_indices(taint))
            else:
                return taint
        if marker_indices:
            return "".join(
                f"[param:{i}]" for i in sorted(marker_indices)
            )
        return None

    # -- sinks ----------------------------------------------------------
    def _mapped_args(
        self,
        call: ast.Call,
        callee: FunctionInfo,
        arg_taints: Sequence[Optional[str]],
        kw_taints: Sequence[Optional[str]],
    ) -> List[Tuple[int, Optional[str]]]:
        """(callee param index, taint) for each mappable argument."""
        offset = param_offset(call, callee)
        params = callee.param_names()
        out: List[Tuple[int, Optional[str]]] = []
        for pos, taint in enumerate(arg_taints):
            out.append((pos + offset, taint))
        for kw, taint in zip(call.keywords, kw_taints):
            if kw.arg is not None and kw.arg in params:
                out.append((params.index(kw.arg), taint))
        return out

    def _sink_of(self, call: ast.Call, info: FunctionInfo) -> Optional[str]:
        target = call_target(call, info.imports)
        if target is not None:
            root = target[0].split(".")[0]
            if (root, target[1]) in SINK_TARGETS:
                return f"{root}.{target[1]}()"
        func = call.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if name in SINK_NAMES:
            return f"{name}()"
        return None

    def _check_sinks(
        self,
        expr: ast.expr,
        st: _FnState,
        collect: Optional[List[TaintViolation]],
    ) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            sink = self._sink_of(node, st.info)
            if sink is not None:
                for arg in (*node.args, *(kw.value for kw in node.keywords)):
                    self._record(arg, self._expr(arg, st), sink, st, collect)
            callee = self.graph.resolve(node, st.info)
            if callee is None:
                continue
            summary = self.summaries.get(callee.ref)
            if summary is None or not summary.param_sinks:
                continue
            sinks = dict(summary.param_sinks)
            arg_taints = [self._expr(arg, st) for arg in node.args]
            kw_taints = [self._expr(kw.value, st) for kw in node.keywords]
            for pos, taint in self._mapped_args(
                node, callee, arg_taints, kw_taints
            ):
                inner = sinks.get(pos)
                if inner is None:
                    continue
                via = f"{_base_desc(inner)} via {callee.name}()"
                arg_node = self._arg_node(node, callee, pos)
                self._record(arg_node, taint, via, st, collect)

    def _arg_node(
        self, call: ast.Call, callee: FunctionInfo, pos: int
    ) -> ast.expr:
        offset = param_offset(call, callee)
        apos = pos - offset
        if 0 <= apos < len(call.args):
            return call.args[apos]
        params = callee.param_names()
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in params and (
                params.index(kw.arg) == pos
            ):
                return kw.value
        return call

    def _record(
        self,
        node: ast.expr,
        taint: Optional[str],
        sink: str,
        st: _FnState,
        collect: Optional[List[TaintViolation]],
    ) -> None:
        if taint is None:
            return
        if _is_param_marker(taint):
            for index in _param_indices(taint):
                st.param_sinks.setdefault(index, _base_desc(sink))
            return
        if collect is not None:
            collect.append(
                TaintViolation(
                    func=st.info, node=node, source=taint, sink=sink
                )
            )


__all__ = [
    "SINK_NAMES",
    "SINK_TARGETS",
    "TaintAnalysis",
    "TaintSummary",
    "TaintViolation",
]
