"""Resolved call sites and the bounded fixed-point driver.

Every interprocedural analysis here follows the same shape: compute a
per-function *summary*, let summaries flow along call edges, repeat
until nothing changes. :func:`fixed_point` bounds that iteration at
:data:`MAX_PASSES` sweeps over the function list — deep enough for any
realistic helper chain in this tree (summaries reach ``MAX_PASSES``
call-graph hops), and a hard guarantee that lint time stays linear in
project size even on pathological recursive inputs.

:class:`CallGraph` caches call-site resolution so the three analyses
(taint, units, purity) resolve each call exactly once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.lintkit.flow.project import FunctionInfo, Project

#: Fixed-point sweep bound: summaries propagate at most this many
#: call-graph hops. Raising it deepens analysis linearly in lint time.
MAX_PASSES = 4


@dataclass
class CallSite:
    """One ``ast.Call`` in a function, with its resolved callee (if any)."""

    node: ast.Call
    callee: Optional[FunctionInfo]


class CallGraph:
    """Per-function resolved call sites over a :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self._sites: Dict[str, List[CallSite]] = {}

    def call_sites(self, info: FunctionInfo) -> List[CallSite]:
        """Every call in ``info``'s body (nested defs included), resolved."""
        cached = self._sites.get(info.ref)
        if cached is None:
            cached = [
                CallSite(node, self.project.resolve_call(node, info))
                for node in ast.walk(info.node)
                if isinstance(node, ast.Call)
            ]
            self._sites[info.ref] = cached
        return cached

    def resolve(
        self, call: ast.Call, caller: FunctionInfo
    ) -> Optional[FunctionInfo]:
        """Resolve one call via the per-function cache."""
        for site in self.call_sites(caller):
            if site.node is call:
                return site.callee
        return self.project.resolve_call(call, caller)


def fixed_point(
    functions: Sequence[FunctionInfo],
    update: Callable[[FunctionInfo], bool],
) -> None:
    """Run ``update`` over ``functions`` until stable or ``MAX_PASSES``.

    ``update`` recomputes one function's summary from current callee
    summaries and returns True when the summary changed. Functions are
    visited in the given (deterministic) order each sweep.
    """
    for _ in range(MAX_PASSES):
        changed = False
        for info in functions:
            if update(info):
                changed = True
        if not changed:
            return


__all__ = ["CallGraph", "CallSite", "MAX_PASSES", "fixed_point"]
