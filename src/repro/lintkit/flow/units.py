"""Lightweight dimension inference backing UNIT001.

The simulator mixes four quantity kinds that Python happily conflates:
*cycles* (time), *events* (counts of hits/misses/accesses), *bytes*
(capacities), and *fractions* (ratios in [0, 1] — the currency of the
slowdown model). Adding a fraction to a cycle count, or comparing hits
against a deadline, type-checks and runs; it is just wrong.

Units are inferred from names (``stall_cycles``, ``miss_frac``), from
``# lint: unit[...]`` declarations on def lines, and propagated through
a tiny algebra:

=========================  ==========================================
expression                 result
=========================  ==========================================
``X + Y``, ``X - Y``       ``X`` if units agree — mismatch otherwise
``X % Y``                  same rule as ``+``
``cycles * fraction``      ``cycles`` (either operand order)
``X * unitless``           ``X``
``X / X``                  ``fraction``
``X / fraction``           ``X``
``X / unitless``           ``X``
``X < Y`` (any compare)    mismatch when both known and different
=========================  ==========================================

Function return units flow through the call graph as summaries, so a
helper named innocuously still carries the unit of what it computes.
Unknown units are compatible with everything — the rule only speaks
when both sides are confidently known.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lintkit.flow.callgraph import CallGraph, fixed_point
from repro.lintkit.flow.project import FunctionInfo, ModuleInfo

#: Recognized units, in documentation order.
UNITS = ("cycles", "events", "bytes", "fraction")

_NAME_UNIT_RES = (
    (
        "cycles",
        re.compile(
            r"(?:^|_)(?:cycles?|quantum|quanta|epochs?|times?|busy"
            r"|stalls?|delays?|latenc(?:y|ies))(?:$|_)"
        ),
    ),
    # Plural forms only: in this tree plural names count events
    # ("epoch_misses") while the singular modifies a time ("miss_busy",
    # "avg_hit" — the average hit *service time*).
    (
        "events",
        re.compile(r"(?:^|_)(?:hits|misses|accesses|events)(?:$|_)"),
    ),
    ("bytes", re.compile(r"(?:^|_)(?:bytes?)(?:$|_)")),
    ("fraction", re.compile(r"(?:^|_)(?:frac|fraction|ratio)(?:$|_)")),
)


def unit_of_name(name: str) -> Optional[str]:
    """The unit a variable/function name implies, if any.

    When several components match, the *latest* wins: in compound names
    the final noun is the measured quantity (``quantum_hits`` counts
    hits, ``hit_time`` measures time).
    """
    lowered = name.lower()
    best: Optional[Tuple[int, str]] = None
    for unit, pattern in _NAME_UNIT_RES:
        for match in pattern.finditer(lowered):
            if best is None or match.start() > best[0]:
                best = (match.start(), unit)
    return best[1] if best is not None else None


@dataclass
class UnitViolation:
    """Two dimensioned quantities combined incompatibly."""

    func: FunctionInfo
    node: ast.AST
    message: str


class UnitAnalysis:
    """Infer units per function; flag mismatched arithmetic/compares."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.return_units: Dict[str, Optional[str]] = {}

    def analyze(self, scan: Sequence[ModuleInfo]) -> List[UnitViolation]:
        functions = sorted(
            (f for m in scan for f in m.functions.values()),
            key=lambda f: f.ref,
        )
        fixed_point(functions, self._update)
        violations: List[UnitViolation] = []
        for info in functions:
            self._run(info, violations)
        return violations

    def _update(self, info: FunctionInfo) -> bool:
        new = self._summary(info)
        old = self.return_units.get(info.ref, "\0unset")
        self.return_units[info.ref] = new
        return new != old

    def _summary(self, info: FunctionInfo) -> Optional[str]:
        declared = info.declared_unit()
        if declared is not None:
            return declared if declared in UNITS else None
        env = self._seed_env(info)
        inferred: Optional[str] = None
        for node in _own_statements(info.node):
            if isinstance(node, ast.Return) and node.value is not None:
                unit = self._infer(node.value, env, info)
                if unit is not None:
                    inferred = unit
            self._track_assign(node, env, info)
        if inferred is not None:
            return inferred
        return unit_of_name(info.name)

    # -- per-function walk ---------------------------------------------
    def _seed_env(self, info: FunctionInfo) -> Dict[str, str]:
        env: Dict[str, str] = {}
        for name in info.param_names():
            unit = unit_of_name(name)
            if unit is not None:
                env[name] = unit
        return env

    def _track_assign(
        self,
        stmt: ast.stmt,
        env: Dict[str, str],
        info: FunctionInfo,
        collect: Optional[List[UnitViolation]] = None,
    ) -> None:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            return
        unit = self._infer(value, env, info)
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            implied = unit_of_name(target.id)
            if unit is not None:
                env[target.id] = unit
                if (
                    collect is not None
                    and implied is not None
                    and implied != unit
                ):
                    collect.append(
                        UnitViolation(
                            func=info,
                            node=target,
                            message=(
                                f"'{target.id}' implies {implied} but is "
                                f"assigned a {unit} value"
                            ),
                        )
                    )
            elif implied is not None:
                env[target.id] = implied

    def _run(
        self, info: FunctionInfo, collect: List[UnitViolation]
    ) -> None:
        env = self._seed_env(info)
        for stmt in _own_statements(info.node):
            # Report on this statement's direct expressions first (env
            # as of *before* any assignment the statement makes), then
            # fold the assignment into the environment.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._infer(child, env, info, collect)
            self._track_assign(stmt, env, info, collect)

    # -- inference ------------------------------------------------------
    def _infer(
        self,
        expr: ast.expr,
        env: Dict[str, str],
        info: FunctionInfo,
        collect: Optional[List[UnitViolation]] = None,
    ) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return env.get(expr.id, unit_of_name(expr.id))
        if isinstance(expr, ast.Attribute):
            return unit_of_name(expr.attr)
        if isinstance(expr, ast.Constant):
            return None
        if isinstance(expr, ast.Call):
            return self._call_unit(expr, env, info, collect)
        if isinstance(expr, ast.UnaryOp):
            return self._infer(expr.operand, env, info, collect)
        if isinstance(expr, ast.IfExp):
            body = self._infer(expr.body, env, info, collect)
            orelse = self._infer(expr.orelse, env, info, collect)
            return body if body is not None else orelse
        if isinstance(expr, ast.BinOp):
            return self._binop_unit(expr, env, info, collect)
        if isinstance(expr, ast.Compare):
            if collect is not None:
                self._check_compare(expr, env, info, collect)
            return None
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                self._infer(value, env, info, collect)
            return None
        return None

    def _call_unit(
        self,
        call: ast.Call,
        env: Dict[str, str],
        info: FunctionInfo,
        collect: Optional[List[UnitViolation]],
    ) -> Optional[str]:
        for arg in call.args:
            self._infer(arg, env, info, collect)
        callee = self.graph.resolve(call, info)
        if callee is not None:
            return self.return_units.get(callee.ref)
        func = call.func
        if isinstance(func, ast.Name) and func.id in {
            "abs",
            "float",
            "int",
            "max",
            "min",
            "round",
        }:
            for arg in call.args:
                unit = self._infer(arg, env, info)
                if unit is not None:
                    return unit
            return None
        if isinstance(func, ast.Name):
            return unit_of_name(func.id)
        if isinstance(func, ast.Attribute):
            return unit_of_name(func.attr)
        return None

    def _binop_unit(
        self,
        expr: ast.BinOp,
        env: Dict[str, str],
        info: FunctionInfo,
        collect: Optional[List[UnitViolation]],
    ) -> Optional[str]:
        left = self._infer(expr.left, env, info, collect)
        right = self._infer(expr.right, env, info, collect)
        op = expr.op
        if isinstance(op, (ast.Add, ast.Sub, ast.Mod)):
            if left is not None and right is not None and left != right:
                if collect is not None:
                    symbol = {"Add": "+", "Sub": "-", "Mod": "%"}[
                        type(op).__name__
                    ]
                    collect.append(
                        UnitViolation(
                            func=info,
                            node=expr,
                            message=f"{left} {symbol} {right}",
                        )
                    )
                return None
            return left if left is not None else right
        if isinstance(op, ast.Mult):
            units = {left, right} - {None}
            if units == {"cycles", "fraction"}:
                return "cycles"
            if left == right:
                return "fraction" if left == "fraction" else None
            # A unit survives multiplication only by a *literal* scalar;
            # an unknown-named operand may carry its own dimension.
            if left is not None and _is_literal(expr.right):
                return left
            if right is not None and _is_literal(expr.left):
                return right
            return None
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if left is not None and left == right:
                return "fraction"
            if left is not None and (
                right == "fraction" or _is_literal(expr.right)
            ):
                return left
            return None
        return None

    def _check_compare(
        self,
        expr: ast.Compare,
        env: Dict[str, str],
        info: FunctionInfo,
        collect: List[UnitViolation],
    ) -> None:
        operands = [expr.left, *expr.comparators]
        units = [self._infer(op, env, info, collect) for op in operands]
        known = [u for u in units if u is not None]
        if len(known) >= 2 and len(set(known)) > 1:
            collect.append(
                UnitViolation(
                    func=info,
                    node=expr,
                    message=" vs ".join(sorted(set(known))),
                )
            )


def _is_literal(expr: ast.expr) -> bool:
    """A numeric literal (possibly signed): dimensionless by definition."""
    if isinstance(expr, ast.UnaryOp):
        return _is_literal(expr.operand)
    return isinstance(expr, ast.Constant) and isinstance(
        expr.value, (int, float)
    )


def _own_statements(node: ast.AST) -> List[ast.stmt]:
    """Statements in ``node``'s body, skipping nested def/class scopes."""
    out: List[ast.stmt] = []
    stack: List[ast.stmt] = list(getattr(node, "body", []))
    while stack:
        stmt = stack.pop(0)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        out.append(stmt)
        for attr in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, attr, []))
        for handler in getattr(stmt, "handlers", []):
            stack.extend(handler.body)
    return out


__all__ = ["UNITS", "UnitAnalysis", "UnitViolation", "unit_of_name"]
