"""Baseline files: grandfather existing findings, fail on new ones.

A baseline is a JSON document of finding *fingerprints*. Fingerprints are
line-number free — rule code + normalized path + the stripped source line
text + an occurrence index among identical lines — so unrelated edits
above a grandfathered finding do not resurrect it, while a new identical
violation elsewhere in the file is still caught.

The checked-in repository baselines **only DOC001** findings (docstring
gaps that predate the rule) plus the one **IO001** site in the fault
injectors (the FlakyModel sentinel: scratch test state, not campaign
state); every simulator-invariant rule holds with no grandfathered
findings, so a new violation fails CI immediately. Each
entry records the rule and path next to the fingerprint so the
grandfathered set stays reviewable; bare-string entries (the original
format) still load.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Sequence, Tuple

from repro.lintkit.base import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


def _normalize_path(path: str) -> str:
    return os.path.normpath(path).replace(os.sep, "/")


def fingerprints(
    findings: Sequence[Finding], sources: Dict[str, List[str]]
) -> List[Tuple[Finding, str]]:
    """Pair each finding with its stable fingerprint.

    ``sources`` maps path -> source lines (used for the line-text part;
    findings on unreadable files fall back to the empty string).
    """
    seen: Dict[Tuple[str, str, str], int] = {}
    out: List[Tuple[Finding, str]] = []
    for finding in findings:
        lines = sources.get(finding.path, [])
        text = (
            lines[finding.line - 1].strip()
            if 1 <= finding.line <= len(lines)
            else ""
        )
        key = (finding.rule, _normalize_path(finding.path), text)
        index = seen.get(key, 0)
        seen[key] = index + 1
        digest = hashlib.sha256(
            "\x00".join((*key, str(index))).encode("utf-8")
        ).hexdigest()[:16]
        out.append((finding, digest))
    return out


def load(path: str) -> List[str]:
    """Load the fingerprint list from a baseline file."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a v{BASELINE_VERSION} lint baseline file"
        )
    raw = data.get("findings", [])
    if not isinstance(raw, list):
        raise ValueError(f"{path}: 'findings' must be a list")
    out: List[str] = []
    for item in raw:
        if isinstance(item, dict):
            out.append(str(item.get("fingerprint", "")))
        else:
            out.append(str(item))
    return out


def write(
    path: str,
    findings: Sequence[Finding],
    sources: Dict[str, List[str]],
) -> None:
    """Write ``findings`` as the new baseline (rule/path kept for review)."""
    entries = [
        {
            "fingerprint": digest,
            "rule": finding.rule,
            "path": _normalize_path(finding.path),
        }
        for finding, digest in fingerprints(findings, sources)
    ]
    entries.sort(key=lambda e: (e["path"], e["rule"], e["fingerprint"]))
    payload = {
        "version": BASELINE_VERSION,
        "findings": entries,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def filter_baselined(
    findings: Sequence[Finding],
    sources: Dict[str, List[str]],
    baselined: Sequence[str],
) -> Tuple[List[Finding], int]:
    """Split findings into (new, grandfathered-count)."""
    allowed = set(baselined)
    fresh: List[Finding] = []
    grandfathered = 0
    for finding, digest in fingerprints(findings, sources):
        if digest in allowed:
            grandfathered += 1
        else:
            fresh.append(finding)
    return fresh, grandfathered


__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "filter_baselined",
    "fingerprints",
    "load",
    "write",
]
