"""Simulator-specific lint rules.

Each rule protects one invariant of the ASM reproduction (see DESIGN.md,
"Static analysis", for the paper mapping):

========  ============================================================
DET001    no wall-clock / module-global-RNG / identity-derived values
          in simulation modules (bit-identical parallel == serial runs)
DET002    no iteration over set/frozenset (or ``.keys()`` views) in
          simulation hot paths (hash order must never reach results)
CYC001    no true division feeding cycle/epoch/quantum counters
          (cycle arithmetic stays in integers; use ``//``)
PKL001    parallel payloads must pickle by reference: no lambdas or
          nested defs handed to pool submission / CellSpec recipes
ACC001    every class that counts both hits and misses must witness the
          ``hits + misses == accesses`` conservation law
TEL001    slowdown models read simulator counters only through their
          ``CounterBank`` accessors (raw access is legal only inside
          ``attach()``, where the externals are registered)
DOC001    public classes/functions in the observability layer and the
          model zoo carry docstrings (the documentation suite links
          into both; an undocumented symbol is a broken promise)
IO001     persistence layers never open files for writing bare: every
          durable write routes through ``repro.durability.atomic``
          (append_line / atomic_write_text / durable_stream) so a
          crash can tear at most an uncommitted trailing line
VEC001    the columnar backend's hot passes (``repro.vector``) never
          loop over column arrays element by element — per-element work
          belongs in the kernel layer (``repro.vector.columns``), which
          is the only module exempt
NDT001    whole-program nondeterminism taint: wall-clock / global-RNG /
          ``id()`` / set-order values must not flow — through any chain
          of calls and returns — into campaign-store writes, run keys,
          fingerprints or serialized output (flow-powered DET001)
UNIT001   dimension inference: cycle / event / byte / fraction
          quantities never combined or compared across units, with
          units carried through helper returns
PUR001    parallel purity: functions reachable from pool worker
          payloads never mutate module-global state (per-process
          copies silently diverge)
DUAL001   every public columnar kernel declares its scalar event-loop
          oracle in ``SCALAR_ORACLES`` and stays structurally in sync
          with it (see :mod:`repro.vector.oracles`)
========  ============================================================

The last four are :class:`~repro.lintkit.base.ProjectRule` subclasses
living in :mod:`repro.lintkit.flow.rules`; they are imported at the
bottom of this module so one import registers the full rule set.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lintkit.base import Finding, LintContext, Rule, register
from repro.lintkit.facts import (
    BANNED_BUILTINS as _BANNED_BUILTINS,
    DATETIME_ATTRS as _DATETIME_ATTRS,
    ImportMap as _ImportTracker,
    RANDOM_ALLOWED as _RANDOM_ALLOWED,
    WALL_CLOCK_ATTRS as _WALL_CLOCK_ATTRS,
    call_target as _call_target,
    describe_setish as _describe_setish,
    has_unwrapped_true_division,
    int_wrapper_names,
)

#: Modules whose behaviour feeds simulation results. DET001 is gated to
#: exactly the packages ISSUE/DESIGN name; the wider HOT set adds the
#: core model and harness, whose iteration order also reaches results.
DETERMINISM_PACKAGES: Tuple[str, ...] = (
    "repro.engine",
    "repro.cache",
    "repro.mem",
    "repro.models",
    "repro.policies",
    "repro.cloud",
    "repro.analytic",
)
HOT_PACKAGES: Tuple[str, ...] = DETERMINISM_PACKAGES + (
    "repro.cpu",
    "repro.harness",
    "repro.workloads",
)

@register
class Det001WallClockAndGlobalRng(Rule):
    """Wall clocks, module-global RNG and identity-derived values.

    The parallel campaign contract (:mod:`repro.parallel`) is that
    ``workers=N`` is bit-identical to serial. Any value derived from
    ``time.time()``-style clocks, the module-global ``random`` functions
    (shared, implicitly seeded state), ``datetime.now()``, ``id()``
    (address-dependent) or ``hash()`` (``PYTHONHASHSEED``-dependent for
    str/bytes) differs across processes and silently breaks it.
    """

    code = "DET001"
    summary = "nondeterministic value source in a simulation module"
    packages = DETERMINISM_PACKAGES

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        imports = _ImportTracker()
        imports.visit(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node, imports)
            if target is not None:
                module, member = target
                root = module.split(".")[0]
                if root == "time" and member in _WALL_CLOCK_ATTRS:
                    yield self.finding(
                        ctx,
                        node,
                        f"wall-clock read time.{member}() in a simulation "
                        "module; simulated time is engine.now — if this is "
                        "a watchdog, acknowledge it with "
                        "`# lint: ignore[DET001]`",
                    )
                elif root == "datetime" and member in _DATETIME_ATTRS:
                    yield self.finding(
                        ctx,
                        node,
                        f"datetime.{member}() is a wall-clock read; "
                        "simulation state must not depend on real time",
                    )
                elif module == "random" and member not in _RANDOM_ALLOWED:
                    yield self.finding(
                        ctx,
                        node,
                        f"module-global random.{member}() uses shared, "
                        "implicitly seeded state; use an explicitly seeded "
                        "random.Random(seed) instance",
                    )
                elif root in {"uuid", "secrets"} or (
                    root == "os" and member == "urandom"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{module}.{member}() is entropy-derived and "
                        "differs across runs",
                    )
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _BANNED_BUILTINS
                and func.id not in imports.members
                and func.id not in imports.modules
            ):
                why = (
                    "object addresses differ across processes"
                    if func.id == "id"
                    else "str/bytes hashes depend on PYTHONHASHSEED"
                )
                yield self.finding(
                    ctx,
                    node,
                    f"{func.id}() is nondeterministic across processes "
                    f"({why}); derive keys from stable fields instead",
                )


# ----------------------------------------------------------------------


class _SetIterVisitor(ast.NodeVisitor):
    """Find iteration over set-typed expressions, with one-level local
    inference: ``s = set(...)`` followed by ``for x in s`` in the same
    function body is caught too."""

    def __init__(self, rule: "Det002SetIteration", ctx: LintContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: List[Finding] = []
        #: name -> description, per enclosing function scope (stacked).
        self._scopes: List[Dict[str, str]] = [{}]

    def _lookup(self, node: ast.expr) -> Optional[str]:
        desc = _describe_setish(node)
        if desc is not None:
            return desc
        if isinstance(node, ast.Name):
            for scope in reversed(self._scopes):
                if node.id in scope:
                    return scope[node.id]
        return None

    def _check_iter(self, node: ast.expr, where: str) -> None:
        desc = self._lookup(node)
        if desc is None:
            return
        self.findings.append(
            self.rule.finding(
                self.ctx,
                node,
                f"{where} iterates {desc}; set iteration order is hash-"
                "dependent and can differ across processes — iterate a "
                "list kept in insertion order, or wrap in sorted()",
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        desc = _describe_setish(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if desc is not None:
                    self._scopes[-1][target.id] = f"{desc} (assigned here)"
                else:
                    self._scopes[-1].pop(target.id, None)
        self.generic_visit(node)

    def _visit_function(self, node: ast.AST) -> None:
        self._scopes.append({})
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, "for loop")
        self.generic_visit(node)

    def _visit_comp(
        self, node: ast.expr, generators: List[ast.comprehension]
    ) -> None:
        where = {
            "ListComp": "list comprehension",
            "DictComp": "dict comprehension",
            "GeneratorExp": "generator expression",
        }.get(type(node).__name__, "comprehension")
        for gen in generators:
            # Building another set from a set is order-insensitive.
            if not isinstance(node, ast.SetComp):
                self._check_iter(gen.iter, where)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node, node.generators)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comp(node, node.generators)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comp(node, node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        # sorted(...)/min/max/sum/len/any/all consume order-insensitively
        # only when the generator is their direct argument; that wrapping
        # is handled by the caller check in visit_Call.
        self._visit_comp(node, node.generators)


#: Calls whose result does not depend on the iteration order of a direct
#: set argument / generator-over-set argument.
_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset"}
)


@register
class Det002SetIteration(Rule):
    """Iteration over sets (or ``.keys()`` views) in hot paths.

    Set iteration order depends on insertion history *and* element
    hashes; for str keys the hash is process-seeded, so a cache eviction
    scan or mix construction that walks a set can differ between the
    serial and the parallel campaign. ``.keys()`` views are flagged too:
    they iterate deterministically today, but read as (and are routinely
    refactored into) set operations — iterate the mapping itself.
    """

    code = "DET002"
    summary = "hash-ordered iteration in a simulation hot path"
    packages = HOT_PACKAGES

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        visitor = _SetIterVisitor(self, ctx)
        visitor.visit(ctx.tree)
        # Drop findings whose iterable feeds an order-insensitive
        # consumer directly: sum(x for x in some_set) is fine.
        insensitive_spans: Set[Tuple[int, int]] = set()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_INSENSITIVE_CONSUMERS
            ):
                for arg in node.args:
                    for inner in ast.walk(arg):
                        lineno = getattr(inner, "lineno", None)
                        col = getattr(inner, "col_offset", None)
                        if lineno is not None and col is not None:
                            insensitive_spans.add((lineno, col))
        yield from (
            f
            for f in visitor.findings
            if (f.line, f.col) not in insensitive_spans
        )


# ----------------------------------------------------------------------

_CYCLE_NAME_RE = re.compile(
    r"(?:^|_)(?:cycles?|quantum|quanta|epochs?)(?:$|_)"
)


def _target_names(node: ast.expr) -> Iterator[str]:
    """The identifier(s) a store target binds, through subscripts/attrs."""
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Attribute):
        yield node.attr
    elif isinstance(node, ast.Subscript):
        yield from _target_names(node.value)
    elif isinstance(node, (ast.Tuple, ast.List)):
        for elt in node.elts:
            yield from _target_names(elt)
    elif isinstance(node, ast.Starred):
        yield from _target_names(node.value)


@register
class Cyc001TrueDivisionIntoCycles(Rule):
    """True division feeding a cycle/epoch/quantum counter.

    Cycle counts are integers by construction (the engine schedules at
    integer timestamps and ``Engine.schedule`` rejects nothing else
    loudly only for negatives). A ``/`` that reaches a ``*_cycles`` /
    ``quantum`` / ``epoch`` name produces a float that the paper's
    accounting identities (hits + misses == accesses scaled by cycle
    windows) then compare inexactly. Use ``//`` or wrap in ``int()``.
    """

    code = "CYC001"
    summary = "true division assigned to a cycle-typed name"
    packages = ("repro",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        imports = _ImportTracker()
        imports.visit(ctx.tree)
        wrappers = int_wrapper_names(imports)
        for node in ast.walk(ctx.tree):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.op, ast.Div):
                    names = [
                        n
                        for n in _target_names(node.target)
                        if _CYCLE_NAME_RE.search(n)
                    ]
                    if names:
                        yield self.finding(
                            ctx,
                            node,
                            f"`{names[0]} /= ...` makes a cycle counter "
                            "fractional; use //= or int()",
                        )
                    continue
                targets, value = [node.target], node.value
            else:
                continue
            tainted = [
                name
                for target in targets
                for name in _target_names(target)
                if _CYCLE_NAME_RE.search(name)
            ]
            if not tainted or value is None:
                continue
            div = has_unwrapped_true_division(value, wrappers)
            if div is not None:
                yield self.finding(
                    ctx,
                    div,
                    f"true division feeds cycle-typed name "
                    f"`{tainted[0]}`; cycle/epoch/quantum counts are "
                    "integers — use // or wrap in int()",
                )


# ----------------------------------------------------------------------

#: Call-site attributes that submit work to a process pool.
_SUBMIT_ATTRS = frozenset({"submit", "map", "starmap", "apply_async"})
#: CellSpec keyword recipes that are pickled by reference.
_RECIPE_KWARGS = frozenset({"model_builder", "scheduler_builder"})


class _LocalDefs(ast.NodeVisitor):
    """Names bound to lambdas or nested def/class inside each function."""

    def __init__(self) -> None:
        self.unpicklable: Dict[str, str] = {}
        self._depth = 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._depth > 0:
            self.unpicklable[node.name] = (
                f"function `{node.name}` defined inside a function"
            )
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if self._depth > 0:
            self.unpicklable[node.name] = (
                f"function `{node.name}` defined inside a function"
            )
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._depth > 0:
            self.unpicklable[node.name] = (
                f"class `{node.name}` defined inside a function"
            )
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.unpicklable[target.id] = (
                        f"lambda bound to `{target.id}`"
                    )
        self.generic_visit(node)


@register
class Pkl001UnpicklableParallelPayload(Rule):
    """Lambdas / nested defs handed to worker-pool submission sites.

    Everything crossing a :class:`~concurrent.futures.ProcessPoolExecutor`
    boundary pickles by *reference*: module-level names only. A lambda or
    a def nested in a function imports fine, runs fine serially, then
    raises ``PicklingError`` only when ``--workers`` is used — the rule
    rejects it at review time instead. CellSpec's ``model_builder`` /
    ``scheduler_builder`` recipes have the same contract.
    """

    code = "PKL001"
    summary = "unpicklable callable passed to a parallel payload sink"

    def _is_sink(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _SUBMIT_ATTRS:
            return f".{func.attr}()"
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if name in {"CellSpec", "run_cells"}:
            return name
        return None

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        local_defs = _LocalDefs()
        local_defs.visit(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            sink = self._is_sink(node)
            if sink is None:
                continue
            payload_args: List[Tuple[ast.expr, str]] = [
                (arg, "argument") for arg in node.args
            ]
            for kw in node.keywords:
                if sink in {"CellSpec", "run_cells"} and (
                    kw.arg is None or kw.arg not in _RECIPE_KWARGS
                ):
                    continue
                payload_args.append((kw.value, f"`{kw.arg}` recipe"))
            for arg, role in payload_args:
                if isinstance(arg, ast.Lambda):
                    yield self.finding(
                        ctx,
                        arg,
                        f"lambda passed as {role} to {sink}: worker "
                        "payloads pickle by reference — use a "
                        "module-level function",
                    )
                elif (
                    isinstance(arg, ast.Name)
                    and arg.id in local_defs.unpicklable
                ):
                    yield self.finding(
                        ctx,
                        arg,
                        f"{local_defs.unpicklable[arg.id]} passed as "
                        f"{role} to {sink}: worker payloads pickle by "
                        "reference — move it to module level",
                    )


# ----------------------------------------------------------------------

_HITS_RE = re.compile(r"^(?P<prefix>.*?)hits$")
_MISSES_RE = re.compile(r"^(?P<prefix>.*?)misses$")


def _incremented_attr(node: ast.AugAssign) -> Optional[str]:
    """`self.X += ...` / `self.X[i] += ...` -> "X" (Add increments only)."""
    if not isinstance(node.op, ast.Add):
        return None
    target = node.target
    if isinstance(target, ast.Subscript):
        target = target.value
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


def _self_attr_name(node: ast.expr) -> Optional[str]:
    """`self.X` or `self.X[i]` -> "X"."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _witness_pairs_in(func: ast.AST) -> Set[Tuple[str, str]]:
    """(attr_a, attr_b) pairs added together somewhere in ``func``.

    Tracks one level of local indirection: ``h = self.hits[i]`` followed
    by ``h + m`` witnesses (hits, misses) just like the direct form.
    """
    local_src: Dict[str, str] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                src = _self_attr_name(node.value)
                if src is not None:
                    local_src[target.id] = src

    def resolve(expr: ast.expr) -> Optional[str]:
        attr = _self_attr_name(expr)
        if attr is not None:
            return attr
        if isinstance(expr, ast.Name):
            return local_src.get(expr.id)
        return None

    pairs: Set[Tuple[str, str]] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left = resolve(node.left)
            right = resolve(node.right)
            if left is not None and right is not None:
                pairs.add((left, right))
                pairs.add((right, left))
    return pairs


@register
class Acc001HitsMissesConservation(Rule):
    """Conservation law: ``hits + misses == accesses`` per counter group.

    Mirrors the runtime guard in :mod:`repro.resilience.invariants`
    statically. For every class that *increments* both a ``*hits`` and
    the matching ``*misses`` attribute, one of two witnesses must exist:

    * a **derived total** — some method adds the pair together
      (``self.Xhits + self.Xmisses``, directly or through locals), i.e.
      accesses is computed from the parts and cannot drift; or
    * a **coupled increment** — every method incrementing the pair also
      increments an ``*accesses*`` attribute in the same body.

    A lone hits (or misses) counter with no counterpart is exempt: with
    only one part there is no identity to violate.
    """

    code = "ACC001"
    summary = "hits/misses counters without an accesses conservation witness"
    packages = HOT_PACKAGES

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            yield from self._check_class(ctx, cls)

    def _check_class(
        self, ctx: LintContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        functions = [
            n
            for n in ast.walk(cls)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # prefix -> kind -> list of (attr, function, first increment node)
        groups: Dict[str, Dict[str, List[Tuple[str, ast.AST, ast.AugAssign]]]]
        groups = {}
        for func in functions:
            for node in ast.walk(func):
                if not isinstance(node, ast.AugAssign):
                    continue
                attr = _incremented_attr(node)
                if attr is None:
                    continue
                for kind, pattern in (("hits", _HITS_RE), ("misses", _MISSES_RE)):
                    match = pattern.match(attr)
                    if match:
                        groups.setdefault(
                            match.group("prefix"), {}
                        ).setdefault(kind, []).append((attr, func, node))
        if not groups:
            return

        witness_pairs: Set[Tuple[str, str]] = set()
        for func in functions:
            witness_pairs |= _witness_pairs_in(func)

        for prefix, kinds in sorted(groups.items()):
            if "hits" not in kinds or "misses" not in kinds:
                continue  # lone counter: no identity to conserve
            hits_attr = kinds["hits"][0][0]
            misses_attr = kinds["misses"][0][0]
            if (hits_attr, misses_attr) in witness_pairs:
                continue
            if self._coupled_increments(kinds):
                continue
            first = kinds["hits"][0][2]
            yield self.finding(
                ctx,
                first,
                f"class `{cls.name}` increments `{hits_attr}`/"
                f"`{misses_attr}` but never witnesses the conservation "
                f"law: add a derived total (`self.{hits_attr} + "
                f"self.{misses_attr}`) or increment a matching "
                "`*accesses*` counter alongside them",
            )

    @staticmethod
    def _coupled_increments(
        kinds: Dict[str, List[Tuple[str, ast.AST, ast.AugAssign]]]
    ) -> bool:
        incrementing_funcs = {
            id(func): func
            for sites in kinds.values()
            for (_, func, _) in sites
        }
        for func in incrementing_funcs.values():
            has_accesses = any(
                isinstance(node, ast.AugAssign)
                and (attr := _incremented_attr(node)) is not None
                and "accesses" in attr
                for node in ast.walk(func)
            )
            if not has_accesses:
                return False
        return True


# ----------------------------------------------------------------------

#: Simulator-owned counters a slowdown model may only touch inside
#: ``attach()`` — where it registers them as guarded
#: :class:`repro.telemetry.counters.CounterBank` externals. Everywhere
#: else models must read through ``CounterVec.read`` /
#: ``ExternalSample.read``/``delta`` so telemetry faults and invariant
#: guards see every sample.
RAW_COUNTER_ATTRS = frozenset(
    {
        "queueing_cycles",
        "interference_cycles",
        "demand_hits",
        "demand_misses",
        "secondary_misses",
        "busy_cycles",
        "latency_sum",
        "latency_count",
        "alone_latency_sum",
    }
)

#: Model-package modules that legitimately own raw counters: the shared
#: accounting helpers, not estimators themselves.
_TEL001_EXEMPT_MODULES = frozenset(
    {"repro.models.base", "repro.models.perrequest"}
)


class _RawCounterVisitor(ast.NodeVisitor):
    """Collect raw-counter attribute uses outside any ``attach`` scope."""

    def __init__(self) -> None:
        self.stack: List[str] = []
        self.sites: List[ast.Attribute] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in RAW_COUNTER_ATTRS and "attach" not in self.stack:
            self.sites.append(node)
        self.generic_visit(node)


@register
class Tel001RawCounterRead(Rule):
    """Models read simulator counters only through the guarded bank.

    A slowdown model may touch raw simulator counters (controller
    queueing cycles, per-request interference cycles, hierarchy demand
    counters, tracker busy cycles) only inside ``attach()``, where they
    are wrapped as :class:`~repro.telemetry.counters.CounterBank`
    externals (typically as reader lambdas). Any other access bypasses
    the telemetry fault injectors *and* the estimate guards — the model
    would keep trusting a counter the fault campaign corrupts.
    """

    code = "TEL001"
    summary = "model reads a simulator counter outside CounterBank accessors"
    packages = ("repro.models", "repro.cloud")

    def applies_to(self, module: str) -> bool:
        if module in _TEL001_EXEMPT_MODULES:
            return False
        return super().applies_to(module)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        visitor = _RawCounterVisitor()
        visitor.visit(ctx.tree)
        for node in visitor.sites:
            yield self.finding(
                ctx,
                node,
                f"raw simulator counter `{node.attr}` accessed outside "
                "`attach()`: register it as a CounterBank external there "
                "and read it through the bank (`.read(core)` / "
                "`.delta(core)`) so telemetry faults and estimate guards "
                "see the sample",
            )


@register
class Doc001MissingDocstring(Rule):
    """Public API of the documented packages carries docstrings.

    ``docs/models.md`` and ``docs/architecture.md`` link into
    ``repro.models`` and ``repro.obs`` by symbol name; an undocumented
    public class or function there is a hole in the documentation suite.
    Names starting with ``_`` (including dunders) are exempt, as are
    members of private classes and functions nested inside other
    functions.
    """

    code = "DOC001"
    summary = "public class/function lacks a docstring"
    severity = "warning"
    packages = ("repro.obs", "repro.models", "repro.analytic")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        yield from self._check_body(ctx, ctx.tree.body, private_scope=False)

    def _check_body(
        self, ctx: LintContext, body: List[ast.stmt], private_scope: bool
    ) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                private = private_scope or node.name.startswith("_")
                if not private and ast.get_docstring(node) is None:
                    yield self.finding(
                        ctx,
                        node,
                        f"public class `{node.name}` has no docstring; "
                        "the docs suite links into this package by symbol",
                    )
                yield from self._check_body(ctx, node.body, private)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Private names and dunders both start with "_"; nested
                # functions are never visited (we only descend classes).
                if private_scope or node.name.startswith("_"):
                    continue
                if ast.get_docstring(node) is None:
                    yield self.finding(
                        ctx,
                        node,
                        f"public function `{node.name}` has no docstring; "
                        "the docs suite links into this package by symbol",
                    )


# ----------------------------------------------------------------------

#: Packages whose files persist campaign / trace state across crashes.
PERSISTENCE_PACKAGES: Tuple[str, ...] = (
    "repro.durability",
    "repro.obs",
    "repro.parallel",
    "repro.resilience",
    "repro.cloud",
)

#: The atomic-write helper itself must call ``open()`` — it *is* the
#: sanctioned wrapper the rule directs everyone else to.
_IO001_EXEMPT_MODULES = frozenset({"repro.durability.atomic"})

#: ``open()`` mode characters that make the handle writable.
_WRITE_MODE_CHARS = frozenset("wax+")


def _open_write_mode(node: ast.Call) -> Optional[str]:
    """The literal mode string of a writable ``open()`` call, else None.

    Only string-literal modes are decidable statically; a computed mode
    is ignored rather than guessed at. The default mode is ``"r"``, so a
    call with no mode argument is read-only and clean.
    """
    func = node.func
    if not (isinstance(func, ast.Name) and func.id == "open"):
        return None
    mode: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
        return None
    if _WRITE_MODE_CHARS & set(mode.value):
        return mode.value
    return None


@register
class Io001BarePersistenceWrite(Rule):
    """Bare writable ``open()`` in a persistence layer.

    The durability contract (DESIGN.md, "Durability & supervision") is
    that campaign state survives ``kill -9`` with at most a torn,
    uncommitted trailing line. A bare ``open(path, "w")`` breaks it
    twice: truncate-then-write destroys the old contents before the new
    ones are durable, and without an fsync the "written" bytes may still
    be lost afterwards. Every durable write must route through
    :mod:`repro.durability.atomic` — ``append_line`` for checksummed
    appends, ``atomic_write_text`` for whole-file snapshots,
    ``durable_stream`` for bulk streams — which the chaos harness can
    also fault-inject. ``Path.write_text()`` is the same truncating
    write in disguise and is flagged too.
    """

    code = "IO001"
    summary = "bare write-mode open() in a persistence layer"
    packages = PERSISTENCE_PACKAGES

    def applies_to(self, module: str) -> bool:
        if module in _IO001_EXEMPT_MODULES:
            return False
        return super().applies_to(module)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            mode = _open_write_mode(node)
            if mode is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"bare open(..., {mode!r}) in a persistence layer is "
                    "not crash-consistent; route the write through "
                    "repro.durability.atomic (append_line / "
                    "atomic_write_text / durable_stream)",
                )
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "write_text":
                yield self.finding(
                    ctx,
                    node,
                    ".write_text() truncates in place with no fsync; use "
                    "repro.durability.atomic.atomic_write_text so the old "
                    "contents survive a crash mid-write",
                )


# ----------------------------------------------------------------------
# VEC001: per-element loops over columns in the columnar hot passes

#: The kernel layer is where per-element fallback loops are *supposed* to
#: live (they are the pure-Python mirror of the numpy kernels); every
#: other repro.vector module must compose kernels instead.
_VEC001_EXEMPT_MODULES = frozenset({"repro.vector.columns"})

#: Variable/attribute names that conventionally hold column arrays in
#: the columnar backend (repro.vector's own naming discipline).
_VEC001_COLUMN_NAMES = frozenset(
    {
        "addrs",
        "banks",
        "channels",
        "completions",
        "cores",
        "cycles",
        "flags",
        "hits",
        "kinds",
        "latencies",
        "mask",
        "masks",
        "rows",
        "sampled",
        "seqs",
        "set_idx",
        "tags",
    }
)
_VEC001_COLUMN_SUFFIXES = ("_col", "_cols", "_mask", "_masks", "_flags", "_idx")


def _vec001_column_name(node: Optional[ast.expr]) -> Optional[str]:
    """The column-conventional name an expression refers to, else None."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    if name in _VEC001_COLUMN_NAMES or name.endswith(_VEC001_COLUMN_SUFFIXES):
        return name
    return None


def _vec001_iterated_column(iter_node: ast.expr) -> Optional[str]:
    """The column a loop iterable walks element by element, else None.

    Catches direct iteration (``for x in addrs``), index loops
    (``range(len(addrs))``) and the wrapping iterators that merely
    disguise them (``enumerate`` / ``zip`` / ``reversed`` / ``iter``).
    """
    name = _vec001_column_name(iter_node)
    if name is not None:
        return name
    if not isinstance(iter_node, ast.Call):
        return None
    func = iter_node.func
    if not isinstance(func, ast.Name):
        return None
    if func.id not in ("range", "enumerate", "zip", "reversed", "iter"):
        return None
    for arg in iter_node.args:
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Name)
            and arg.func.id == "len"
            and arg.args
        ):
            name = _vec001_column_name(arg.args[0])
            if name is not None:
                return name
        name = _vec001_column_name(arg)
        if name is not None:
            return name
    return None


@register
class Vec001PerElementColumnLoop(Rule):
    """Per-element Python loop over a column array in a columnar hot pass.

    The columnar backend's entire performance case is that hot-path work
    runs as whole-array kernel calls (``repro.vector.columns``), which
    dispatch to numpy when available. A ``for`` loop (or comprehension)
    walking a column element by element inside ``repro.vector`` silently
    reverts that pass to scalar speed — and still passes every test,
    because the fallback kernels produce identical results. Compose
    kernels instead (``col.take`` / ``col.group_by`` / ``col.count_true``
    / ...), or move genuinely elementwise logic into the kernel layer,
    the one module exempt from this rule.
    """

    code = "VEC001"
    summary = "per-element Python loop over a column in a columnar hot pass"
    packages = ("repro.vector",)

    def applies_to(self, module: str) -> bool:
        if module in _VEC001_EXEMPT_MODULES:
            return False
        return super().applies_to(module)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                name = _vec001_iterated_column(node.iter)
                if name is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"per-element for-loop over column {name!r} in a "
                        "columnar hot pass; compose repro.vector.columns "
                        "kernels (or move the elementwise logic into the "
                        "kernel layer)",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for gen in node.generators:
                    name = _vec001_iterated_column(gen.iter)
                    if name is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"comprehension over column {name!r} in a "
                            "columnar hot pass; compose repro.vector.columns "
                            "kernels instead",
                        )


# Registers NDT001 / UNIT001 / PUR001 / DUAL001. Imported last: the
# flow rules import the package constants defined above.
from repro.lintkit.flow import rules as _flow_rules  # noqa: E402,F401

__all__ = [
    "Acc001HitsMissesConservation",
    "Cyc001TrueDivisionIntoCycles",
    "DETERMINISM_PACKAGES",
    "Doc001MissingDocstring",
    "Det001WallClockAndGlobalRng",
    "Det002SetIteration",
    "HOT_PACKAGES",
    "Io001BarePersistenceWrite",
    "PERSISTENCE_PACKAGES",
    "Pkl001UnpicklableParallelPayload",
    "RAW_COUNTER_ATTRS",
    "Tel001RawCounterRead",
    "Vec001PerElementColumnLoop",
]
