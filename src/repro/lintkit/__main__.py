"""``python -m repro.lintkit [paths...]`` — see :mod:`repro.lintkit.cli`."""

import sys

from repro.lintkit.cli import main

if __name__ == "__main__":
    sys.exit(main())
