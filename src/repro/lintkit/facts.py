"""Shared static facts: import resolution, nondeterminism sources, units.

The per-file rules (:mod:`repro.lintkit.rules`) and the whole-program flow
layer (:mod:`repro.lintkit.flow`) agree on what counts as a
nondeterministic value source, how to resolve a call through import
aliases, and which wrappers restore integer-ness to a division. Those
facts live here so the two layers cannot drift apart.

Import resolution handles the aliased forms the original per-file rules
missed: nested attribute chains (``import datetime as dtm;
dtm.datetime.now()``) and aliased member imports of the integer wrappers
(``from math import floor as fl``).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Tuple

#: time-module attributes that read a wall clock. ``monotonic`` is
#: included: even watchdog uses must be explicitly acknowledged with a
#: suppression so a reviewer sees every wall-clock read in the hot path.
WALL_CLOCK_ATTRS: FrozenSet[str] = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "localtime",
        "gmtime",
        "clock_gettime",
    }
)
DATETIME_ATTRS: FrozenSet[str] = frozenset({"now", "utcnow", "today"})
#: The only constructors allowed on the ``random`` module: explicitly
#: seeded generator instances.
RANDOM_ALLOWED: FrozenSet[str] = frozenset({"Random"})
BANNED_BUILTINS: FrozenSet[str] = frozenset({"id", "hash"})

#: Wrapping a division in one of these restores integer-ness.
INT_WRAPPERS: FrozenSet[str] = frozenset({"int", "round", "floor", "ceil", "trunc"})
#: Modules whose members the int wrappers may be imported from.
_INT_WRAPPER_MODULES: FrozenSet[str] = frozenset({"math", "builtins"})


class ImportMap(ast.NodeVisitor):
    """Map local names to the modules / module members they alias."""

    def __init__(self) -> None:
        #: local alias -> module dotted name ("import time as _t")
        self.modules: Dict[str, str] = {}
        #: local name -> (module, member) ("from random import randint")
        self.members: Dict[str, Tuple[str, str]] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name.split(".")[0]] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            self.members[alias.asname or alias.name] = (node.module, alias.name)


def attribute_chain(node: ast.expr) -> Optional[List[str]]:
    """Flatten ``a.b.c`` into ``["a", "b", "c"]``; None if not a pure chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def call_target(
    node: ast.Call, imports: ImportMap
) -> Optional[Tuple[str, str]]:
    """Resolve a call to (module, member) through the import aliases.

    ``random.randint(...)`` -> ("random", "randint"); with ``from time
    import time as now``, ``now()`` -> ("time", "time"); with ``import
    datetime as dtm``, ``dtm.datetime.now()`` -> ("datetime.datetime",
    "now") — the nested chain the original per-file resolver missed.
    Unresolvable calls return None.
    """
    func = node.func
    if isinstance(func, ast.Attribute):
        chain = attribute_chain(func)
        if chain is None or len(chain) < 2:
            return None
        root, *rest = chain
        module = imports.modules.get(root)
        if module is not None:
            # import m [as root]; root.x(...) / root.sub.x(...)
            return ".".join([module, *rest[:-1]]), rest[-1]
        member = imports.members.get(root)
        if member is not None:
            # from m import x [as root]; root.y(...) / root.y.z(...)
            return ".".join([member[0], member[1], *rest[:-1]]), rest[-1]
        return None
    if isinstance(func, ast.Name):
        member = imports.members.get(func.id)
        if member is not None:
            return member
    return None


def nondet_call(
    node: ast.Call, imports: ImportMap
) -> Optional[Tuple[str, str]]:
    """Classify a call that produces a nondeterministic value.

    Returns ``(kind, description)`` for wall clocks, module-global RNG,
    entropy sources and the banned builtins (``id``/``hash``), or None
    for deterministic calls. The *kind* is one of ``"wall-clock"``,
    ``"global-rng"``, ``"entropy"``, ``"identity"``.
    """
    target = call_target(node, imports)
    if target is not None:
        module, member = target
        root = module.split(".")[0]
        if root == "time" and member in WALL_CLOCK_ATTRS:
            return "wall-clock", f"time.{member}()"
        if root == "datetime" and member in DATETIME_ATTRS:
            return "wall-clock", f"datetime.{member}()"
        if module == "random" and member not in RANDOM_ALLOWED:
            return "global-rng", f"random.{member}()"
        if root in {"uuid", "secrets"} or (root == "os" and member == "urandom"):
            return "entropy", f"{module}.{member}()"
    func = node.func
    if (
        isinstance(func, ast.Name)
        and func.id in BANNED_BUILTINS
        and func.id not in imports.members
        and func.id not in imports.modules
    ):
        return "identity", f"{func.id}()"
    return None


def int_wrapper_names(imports: ImportMap) -> FrozenSet[str]:
    """The local names that denote an integer wrapper in this module.

    The builtin names themselves plus any ``from math import floor as
    fl``-style alias of a wrapper member.
    """
    names = set(INT_WRAPPERS)
    for alias, (module, member) in imports.members.items():
        if member in INT_WRAPPERS and module in _INT_WRAPPER_MODULES:
            names.add(alias)
    return frozenset(names)


def has_unwrapped_true_division(
    node: ast.expr, wrappers: FrozenSet[str] = INT_WRAPPERS
) -> Optional[ast.BinOp]:
    """First ``/`` not inside an ``int()``/``round()``/``floor()`` wrapper.

    ``wrappers`` is the module's resolved wrapper-name set (see
    :func:`int_wrapper_names`), so aliased imports of ``math.floor`` and
    friends sanitize a division just like the canonical spellings.
    """

    def scan(expr: ast.expr) -> Optional[ast.BinOp]:
        if isinstance(expr, ast.Call):
            func = expr.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else ""
            )
            if name in wrappers:
                return None  # divisions under the wrapper are integered
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    hit = scan(child)
                    if hit is not None:
                        return hit
            return None
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Div):
            return expr
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                hit = scan(child)
                if hit is not None:
                    return hit
        return None

    return scan(node)


def describe_setish(node: ast.expr) -> Optional[str]:
    """Why ``node`` has hash-dependent (or order-obscuring) iteration."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return f"{func.id}(...)"
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return "a .keys() view"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        left = describe_setish(node.left)
        if left is not None:
            return f"a set expression ({left} ...)"
        right = describe_setish(node.right)
        if right is not None:
            return f"a set expression (... {right})"
    return None


__all__ = [
    "BANNED_BUILTINS",
    "DATETIME_ATTRS",
    "INT_WRAPPERS",
    "ImportMap",
    "RANDOM_ALLOWED",
    "WALL_CLOCK_ATTRS",
    "attribute_chain",
    "call_target",
    "describe_setish",
    "has_unwrapped_true_division",
    "int_wrapper_names",
    "nondet_call",
]
