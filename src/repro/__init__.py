"""repro — a reproduction of "The Application Slowdown Model" (MICRO 2015).

The package bundles everything the paper's evaluation needs, implemented
from scratch in pure Python:

* a discrete-event multi-core memory-system simulator (OoO-approximating
  cores, shared partitionable LLC, DDR3 timing model, FR-FCFS/PARBS/TCM
  memory schedulers) — :mod:`repro.cpu`, :mod:`repro.cache`,
  :mod:`repro.mem`, :mod:`repro.harness`;
* the Application Slowdown Model and the prior estimators it is compared
  against (FST, PTCA, MISE, STFM) — :mod:`repro.models`;
* the slowdown-aware resource-management policies built on it (ASM-Cache,
  ASM-Mem, ASM-QoS, ASM-Cache-Mem) and prior-work baselines (UCP, MCFQ) —
  :mod:`repro.policies`;
* synthetic SPEC/NAS/TPC-C/YCSB-like workloads — :mod:`repro.workloads`;
* per-figure/table experiment drivers — :mod:`repro.experiments`.

Quick start::

    from repro import AsmModel, run_workload, scaled_config, make_mix

    mix = make_mix(["mcf", "bzip2", "libquantum", "h264ref"], seed=1)
    result = run_workload(
        mix, scaled_config(),
        model_factories={"asm": lambda: AsmModel(sampled_sets=16)},
        quanta=2,
    )
    print(result.mean_error("asm"))
"""

from repro.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    SystemConfig,
    DEFAULT_CONFIG,
    scaled_config,
)
from repro.engine import Engine
from repro.harness.runner import (
    AloneRunCache,
    RunResult,
    run_alone,
    run_workload,
)
from repro.harness.system import System
from repro.models import AsmModel, FstModel, MiseModel, PtcaModel, StfmModel
from repro.resilience import (
    Campaign,
    InvariantChecker,
    InvariantViolation,
    QuantumWatchdog,
    RunFailure,
    replay_failure,
)
from repro.policies import (
    AsmCacheMemPolicy,
    AsmCachePolicy,
    AsmMemPolicy,
    AsmQosPolicy,
    McfqPolicy,
    NaiveQosPolicy,
    UcpPolicy,
)
from repro.workloads import CATALOG, hog_spec, make_mix, random_mixes

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "DramConfig",
    "SystemConfig",
    "DEFAULT_CONFIG",
    "scaled_config",
    "Engine",
    "System",
    "AloneRunCache",
    "RunResult",
    "run_alone",
    "run_workload",
    "AsmModel",
    "FstModel",
    "MiseModel",
    "PtcaModel",
    "StfmModel",
    "Campaign",
    "InvariantChecker",
    "InvariantViolation",
    "QuantumWatchdog",
    "RunFailure",
    "replay_failure",
    "AsmCacheMemPolicy",
    "AsmCachePolicy",
    "AsmMemPolicy",
    "AsmQosPolicy",
    "McfqPolicy",
    "NaiveQosPolicy",
    "UcpPolicy",
    "CATALOG",
    "hog_spec",
    "make_mix",
    "random_mixes",
    "__version__",
]
