"""The trace bus: one emit path, a category mask, pluggable sinks.

Emit sites follow a single discipline so the disabled path costs one
predicate::

    obs = self.obs
    if obs is not None and obs.mask & CATEGORY:
        obs.emit(now, CATEGORY, "kind", core=..., value=...)

``obs is None`` (the default everywhere) short-circuits before any
payload dict is built; a bus with the category masked out costs one
integer AND more. Only when the category is enabled does the event
object exist at all.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.obs.events import ALL_CATEGORIES, TraceEvent
from repro.obs.sinks import TraceSink


class TraceBus:
    """Routes :class:`~repro.obs.events.TraceEvent` records to sinks.

    ``mask`` is the category enable mask (bitwise OR of the constants in
    :mod:`repro.obs.events`); emit sites check it *before* calling
    :meth:`emit`, so a masked-out category never allocates an event.
    """

    __slots__ = ("mask", "sinks")

    def __init__(
        self,
        sinks: Sequence[TraceSink],
        categories: int = ALL_CATEGORIES,
    ) -> None:
        """``categories`` is the initial enable mask (default: all)."""
        self.mask = categories
        self.sinks = list(sinks)

    def wants(self, category: int) -> bool:
        """Whether events of ``category`` are currently enabled."""
        return bool(self.mask & category)

    def emit(self, cycle: int, category: int, kind: str, **data: Any) -> None:
        """Publish one event to every sink.

        Callers gate on :attr:`mask` first; :meth:`emit` re-checks so a
        direct call with a masked category is still a no-op.
        """
        if not self.mask & category:
            return
        event = TraceEvent(cycle=cycle, category=category, kind=kind, data=data)
        for sink in self.sinks:
            sink.write(event)

    def close(self) -> None:
        """Flush and close every sink (file sinks need this)."""
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "TraceBus":
        """Context-manager support: ``with TraceBus(...) as bus:``."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Close the sinks on scope exit."""
        self.close()


__all__ = ["TraceBus"]
