"""Opt-in stage timers for the simulator's hot paths.

A :class:`StageProfiler` attaches to a constructed
:class:`~repro.harness.system.System` (pass it via ``run_workload``'s
``system_hooks``) and wraps three seams with ``time.perf_counter``
timers:

* ``engine.drain`` — every :meth:`Engine.run` call, via the engine's
  ``run_observer`` hook (one ``None`` check per run when disabled);
* ``hierarchy.access`` — the shared-LLC demand access path, by wrapping
  the bound method *and* re-pointing every core's captured
  ``hierarchy_access`` reference (cores bind it at construction);
* one stage per quantum listener — model updates and policy decisions,
  labelled by owner (``AsmModel:asm``, ``AsmCachePolicy:asm-cache``).

Stages nest: ``engine.drain`` is the envelope that contains the cache
accesses, and the quantum listeners run outside it. The table therefore
reports shares of the *profiled wall time*, not a partition of it.

Profiling changes wall-clock behaviour only; simulated results are
bit-identical (the timers never touch simulation state).
"""

from __future__ import annotations

import cProfile
import io
import pstats
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.harness.system import System


class StageTiming:
    """Accumulated wall time and call count for one named stage."""

    __slots__ = ("name", "calls", "seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.seconds = 0.0

    def add(self, seconds: float) -> None:
        """Record one timed call."""
        self.calls += 1
        self.seconds += seconds


def _listener_label(listener: Callable[[], None], index: int) -> str:
    """A human-readable stage name for a quantum listener."""
    owner = getattr(listener, "__self__", None)
    if owner is not None:
        name = getattr(owner, "name", "")
        suffix = f":{name}" if isinstance(name, str) and name else ""
        return f"{type(owner).__name__}{suffix}"
    return getattr(listener, "__name__", f"listener{index}")


class StageProfiler:
    """Collects per-stage wall-clock timings for one system's run."""

    def __init__(self) -> None:
        self.stages: Dict[str, StageTiming] = {}
        self.engine_events = 0

    def stage(self, name: str) -> StageTiming:
        """The timing bucket for ``name``, creating it on first use."""
        timing = self.stages.get(name)
        if timing is None:
            timing = StageTiming(name)
            self.stages[name] = timing
        return timing

    # -- attachment ------------------------------------------------------
    def attach(self, system: "System") -> None:
        """Instrument ``system``; pass as a ``system_hooks`` entry so all
        models and policies are already registered."""
        self._attach_engine(system)
        self._attach_cache(system)
        self._attach_listeners(system)

    def _attach_engine(self, system: "System") -> None:
        drain = self.stage("engine.drain")

        def observe(events: int, seconds: float) -> None:
            drain.add(seconds)
            self.engine_events += events

        system.engine.run_observer = observe

    def _attach_cache(self, system: "System") -> None:
        hierarchy = system.hierarchy
        original = hierarchy.access
        timing = self.stage("hierarchy.access")

        def timed_access(
            core: int,
            line_addr: int,
            is_write: bool,
            on_complete: Optional[Callable[[int], None]],
        ) -> Optional[int]:
            start = perf_counter()
            try:
                return original(core, line_addr, is_write, on_complete)
            finally:
                timing.add(perf_counter() - start)

        hierarchy.access = timed_access  # type: ignore[method-assign]
        # Cores capture the bound method at construction; re-point them
        # or their accesses would bypass the timer entirely.
        for core_obj in system.cores:
            core_obj.hierarchy_access = timed_access

    def _attach_listeners(self, system: "System") -> None:
        wrapped: List[Callable[[], None]] = []
        for index, listener in enumerate(system.quantum_listeners):
            timing = self.stage(_listener_label(listener, index))
            wrapped.append(self._timed_listener(listener, timing))
        system.quantum_listeners[:] = wrapped

    @staticmethod
    def _timed_listener(
        listener: Callable[[], None], timing: StageTiming
    ) -> Callable[[], None]:
        def run() -> None:
            start = perf_counter()
            try:
                listener()
            finally:
                timing.add(perf_counter() - start)

        return run

    # -- reporting -------------------------------------------------------
    def rows(self) -> List[Tuple[str, int, float]]:
        """(stage, calls, seconds) rows, slowest first."""
        return sorted(
            ((t.name, t.calls, t.seconds) for t in self.stages.values()),
            key=lambda row: -row[2],
        )

    def table(self) -> str:
        """Render the stage timings as an aligned text table."""
        rows = self.rows()
        total = sum(seconds for _, _, seconds in rows)
        lines = [f"{'stage':32s} {'calls':>10s} {'seconds':>10s} {'share':>7s}"]
        for name, calls, seconds in rows:
            share = seconds / total if total > 0 else 0.0
            lines.append(
                f"{name:32s} {calls:>10d} {seconds:>10.4f} {share:>6.1%}"
            )
        if self.engine_events:
            drain = self.stages.get("engine.drain")
            if drain is not None and drain.seconds > 0:
                rate = self.engine_events / drain.seconds
                lines.append(
                    f"engine events: {self.engine_events} "
                    f"({rate:,.0f} events/s inside the drain)"
                )
        return "\n".join(lines)


def profile_call(
    fn: Callable[[], Any], top: int = 20
) -> Tuple[Any, str]:
    """Run ``fn`` under :mod:`cProfile`; returns (result, stats text).

    The stats text lists the ``top`` functions by cumulative time —
    the function-level companion to the stage table.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return result, buffer.getvalue()


__all__ = ["StageProfiler", "StageTiming", "profile_call"]
