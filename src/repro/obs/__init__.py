"""Observability layer: structured tracing, metrics and profiling hooks.

``repro.obs`` makes the simulator inspectable without changing what it
computes. Three independent facilities share the package:

* the **trace bus** (:mod:`repro.obs.bus`) — typed, sim-cycle-timestamped
  events (quantum boundaries, epoch ownership, model estimates, policy
  reallocations/skips, estimate-guard degradations, watchdog faults)
  published to pluggable sinks (:mod:`repro.obs.sinks`) behind per-category
  enable masks;
* the **metrics registry** (:mod:`repro.obs.metrics`) — counters, gauges
  and histograms snapshotted at every quantum boundary and dumped next to
  campaign checkpoints;
* **profiling hooks** (:mod:`repro.obs.profile`) — opt-in
  ``time.perf_counter`` stage timers around the engine drain, the shared
  cache access path and the model/policy quantum updates, surfaced by the
  ``repro profile`` CLI verb and the campaign per-cell timing table.

The contract that keeps all of this out of the hot path: every
instrumented component holds an ``Optional[TraceBus]`` that defaults to
``None``, and the disabled path is a single ``obs is not None`` (or, for
category-gated sites, ``obs.mask & CATEGORY``) predicate. A run with
``obs=None`` — or with a bus whose mask disables a category — is
bit-identical to a run without the instrumentation compiled in at all;
``tests/test_obs.py`` asserts that via result fingerprints.
"""

from repro.obs.bus import TraceBus
from repro.obs.events import (
    ALL_CATEGORIES,
    CACHE,
    CATEGORY_NAMES,
    DEFAULT_CATEGORIES,
    EPOCH,
    FAULT,
    GUARD,
    MODEL,
    POLICY,
    QUANTUM,
    TraceEvent,
    mask_for,
    names_for,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_metric_series,
)
from repro.obs.sinks import JsonlSink, NullSink, RingBufferSink, read_jsonl

__all__ = [
    "ALL_CATEGORIES",
    "CACHE",
    "CATEGORY_NAMES",
    "Counter",
    "DEFAULT_CATEGORIES",
    "EPOCH",
    "FAULT",
    "GUARD",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MODEL",
    "MetricsRegistry",
    "render_metric_series",
    "NullSink",
    "POLICY",
    "QUANTUM",
    "RingBufferSink",
    "TraceBus",
    "TraceEvent",
    "mask_for",
    "names_for",
    "read_jsonl",
]
