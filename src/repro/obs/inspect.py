"""Trace inspector: fold an event stream into a per-quantum narrative.

The simulator emits events in a fixed order within each quantum (epochs
during the quantum; model estimates, guard degradations and policy
decisions at the boundary; the runner's ``quantum`` record last), so the
summariser is a single pass: accumulate until a ``quantum`` event closes
the window, then start the next one.

This is the debugging view the paper's Figures 4/9/10 imply: for every
quantum, each core's estimated CAR_alone vs measured CAR_shared, the
epoch-ownership fractions those estimates were built from, and what the
policies did about it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.obs.events import (
    CATEGORY_NAMES,
    EPOCH,
    FAULT,
    GUARD,
    MODEL,
    POLICY,
    QUANTUM,
    TraceEvent,
)


@dataclass
class QuantumSummary:
    """Everything the trace recorded about one quantum."""

    index: int
    cycle: int
    instructions: List[int] = field(default_factory=list)
    shared_ipc: List[float] = field(default_factory=list)
    actual_slowdowns: List[float] = field(default_factory=list)
    #: model name -> the MODEL "estimates" event payload (estimates,
    #: confidence, degraded, optional per-core ``stats``).
    models: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: core -> epochs owned during this quantum.
    epoch_counts: Dict[int, int] = field(default_factory=dict)
    policy_events: List[Dict[str, Any]] = field(default_factory=list)
    guard_events: List[Dict[str, Any]] = field(default_factory=list)
    fault_events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def num_cores(self) -> int:
        """Core count, inferred from the per-core ground-truth lists."""
        return len(self.instructions)

    @property
    def total_epochs(self) -> int:
        """Epochs observed in this quantum across all owners."""
        return sum(self.epoch_counts.values())

    def epoch_fraction(self, core: int) -> float:
        """Fraction of this quantum's epochs owned by ``core``."""
        total = self.total_epochs
        return self.epoch_counts.get(core, 0) / total if total else 0.0

    def reallocations(self) -> List[Dict[str, Any]]:
        """The policy events that changed an allocation or weighting."""
        return [e for e in self.policy_events if e.get("kind") != "skip"]

    def skips(self) -> List[Dict[str, Any]]:
        """The policy events that declined to act (low confidence)."""
        return [e for e in self.policy_events if e.get("kind") == "skip"]


def summarize_events(events: Sequence[TraceEvent]) -> List[QuantumSummary]:
    """Group an ordered event stream into one summary per quantum.

    Events after the last ``quantum`` boundary (a truncated trace) are
    dropped; ring-buffer traces may also lose the *head* of the run, in
    which case the first summary only covers what survived.
    """
    summaries: List[QuantumSummary] = []
    pending = QuantumSummary(index=-1, cycle=0)
    for event in events:
        if event.category == EPOCH:
            if event.kind == "epoch":
                owner = int(event.data.get("owner", -1))
                pending.epoch_counts[owner] = pending.epoch_counts.get(owner, 0) + 1
        elif event.category == MODEL:
            name = str(event.data.get("model", "?"))
            pending.models[name] = dict(event.data)
        elif event.category == POLICY:
            record = dict(event.data)
            record["kind"] = event.kind
            pending.policy_events.append(record)
        elif event.category == GUARD:
            pending.guard_events.append(dict(event.data))
        elif event.category == FAULT:
            record = dict(event.data)
            record["kind"] = event.kind
            pending.fault_events.append(record)
        elif event.category == QUANTUM:
            pending.index = int(event.data.get("index", len(summaries)))
            pending.cycle = event.cycle
            pending.instructions = list(event.data.get("instructions", []))
            pending.shared_ipc = list(event.data.get("shared_ipc", []))
            pending.actual_slowdowns = list(
                event.data.get("actual_slowdowns", [])
            )
            summaries.append(pending)
            pending = QuantumSummary(index=-1, cycle=0)
    return summaries


def _fmt(value: Any) -> str:
    """Compact numeric formatting for table cells."""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_summary(summaries: Sequence[QuantumSummary]) -> str:
    """Render quantum summaries as the human-readable narrative."""
    if not summaries:
        return "no quantum boundaries in trace"
    lines: List[str] = []
    for summary in summaries:
        lines.append(f"quantum {summary.index} @ cycle {summary.cycle}")
        if summary.epoch_counts:
            parts = [
                f"core{core} {summary.epoch_fraction(core):.0%}"
                f" ({summary.epoch_counts[core]})"
                for core in sorted(summary.epoch_counts)
            ]
            lines.append(
                f"  epoch ownership ({summary.total_epochs} epochs): "
                + ", ".join(parts)
            )
        for name in sorted(summary.models):
            payload = summary.models[name]
            estimates = payload.get("estimates", [])
            confidence = payload.get("confidence", [])
            stats = payload.get("stats") or []
            lines.append(f"  model {name}:")
            header = (
                f"    {'core':>4s} {'CAR_alone':>10s} {'CAR_shared':>10s} "
                f"{'est':>7s} {'actual':>7s} {'conf':>5s}"
            )
            lines.append(header)
            for core in range(summary.num_cores or len(estimates)):
                stat = stats[core] if core < len(stats) else {}
                est = estimates[core] if core < len(estimates) else float("nan")
                conf = confidence[core] if core < len(confidence) else 1.0
                actual = (
                    summary.actual_slowdowns[core]
                    if core < len(summary.actual_slowdowns)
                    else float("nan")
                )
                lines.append(
                    f"    {core:>4d} "
                    f"{_fmt(stat.get('car_alone', float('nan'))):>10s} "
                    f"{_fmt(stat.get('car_shared', float('nan'))):>10s} "
                    f"{_fmt(est):>7s} {_fmt(actual):>7s} {conf:>5.2f}"
                )
        for event in summary.policy_events:
            detail = ", ".join(
                f"{k}={_fmt(v)}"
                for k, v in sorted(event.items())
                if k not in ("kind", "policy")
            )
            lines.append(
                f"  policy {event.get('policy', '?')} "
                f"{event.get('kind', '?')}" + (f": {detail}" if detail else "")
            )
        for event in summary.guard_events:
            lines.append(
                f"  guard {event.get('model', '?')} core{event.get('core', '?')}"
                f" degraded: {event.get('reason', '?')}"
                f" (conf {_fmt(event.get('confidence', float('nan')))})"
            )
        for event in summary.fault_events:
            detail = ", ".join(
                f"{k}={_fmt(v)}" for k, v in sorted(event.items()) if k != "kind"
            )
            lines.append(
                f"  FAULT {event.get('kind', '?')}"
                + (f": {detail}" if detail else "")
            )
    return "\n".join(lines)


def render_events(events: Sequence[TraceEvent], limit: int = 0) -> str:
    """One line per event (``repro trace show``); 0 = no limit.

    When ``limit`` truncates, the *tail* of the trace is shown — the
    most recent events are the ones a post-mortem needs.
    """
    shown = list(events)
    dropped = 0
    if limit and len(shown) > limit:
        dropped = len(shown) - limit
        shown = shown[-limit:]
    lines = []
    if dropped:
        lines.append(f"... {dropped} earlier events omitted (--limit)")
    for event in shown:
        category = CATEGORY_NAMES.get(event.category, str(event.category))
        detail = ", ".join(
            f"{k}={_fmt(v)}" for k, v in sorted(event.data.items())
        )
        lines.append(
            f"{event.cycle:>12d} {category:>8s} {event.kind:<12s} {detail}"
        )
    return "\n".join(lines) if lines else "empty trace"


__all__ = [
    "QuantumSummary",
    "render_events",
    "render_summary",
    "summarize_events",
]
