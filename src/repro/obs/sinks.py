"""Trace sinks: where the bus delivers events.

Three built-ins cover the intended uses:

* :class:`RingBufferSink` — bounded in-memory buffer ("flight recorder"):
  always cheap, keeps the last N events for post-mortem inspection;
* :class:`JsonlSink` — one JSON object per line to a file, loadable with
  :func:`read_jsonl` and by ``repro trace show``;
* :class:`NullSink` — drops everything; useful for measuring pure
  emission overhead.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, List, Optional

from repro.durability.atomic import DurableStream
from repro.durability.store import read_log
from repro.obs.events import TraceEvent


class TraceSink:
    """Sink interface: subclasses override :meth:`write` (and maybe
    :meth:`close`)."""

    def write(self, event: TraceEvent) -> None:
        """Receive one event from the bus."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush/close any resources; the base implementation is a no-op."""


class NullSink(TraceSink):
    """Counts events and drops them."""

    def __init__(self) -> None:
        self.count = 0

    def write(self, event: TraceEvent) -> None:
        """Discard ``event`` (the counter is the only side effect)."""
        self.count += 1


class RingBufferSink(TraceSink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self.total = 0

    def write(self, event: TraceEvent) -> None:
        """Append ``event``, evicting the oldest once at capacity."""
        self._ring.append(event)
        self.total += 1

    @property
    def dropped(self) -> int:
        """Events evicted because the buffer was full."""
        return self.total - len(self._ring)

    def events(self) -> List[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


class JsonlSink(TraceSink):
    """Writes each event as one JSON line to ``path``.

    Backed by a :class:`~repro.durability.atomic.DurableStream`: writes
    buffer normally (a trace emits far too many events to fsync each
    one), and close pays a single flush+fsync, so a completed trace
    survives a crash-after-close intact. A crash mid-trace leaves at
    most a torn trailing line, which :func:`read_jsonl` skips.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._stream: Optional[DurableStream] = DurableStream(path, "w")

    def write(self, event: TraceEvent) -> None:
        """Serialise ``event`` and append it to the file."""
        stream = self._stream
        if stream is None:
            raise ValueError(f"JsonlSink({self.path!r}) is closed")
        stream.write(json.dumps(event.to_json()) + "\n")

    def close(self) -> None:
        """Flush, fsync and close the file (idempotent)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None


def read_jsonl(path: str) -> List[TraceEvent]:
    """Load the events a :class:`JsonlSink` wrote, skipping torn lines.

    Delegates torn-line recovery to the checksummed-store reader of
    :mod:`repro.durability.store` (trace files are plain v1 JSONL — the
    reader's legacy path — so damaged lines are skipped, not
    quarantined).
    """
    payloads, _report = read_log(path)
    return [
        TraceEvent.from_json(record)
        for record in payloads
        if isinstance(record, dict)
    ]


__all__ = [
    "JsonlSink",
    "NullSink",
    "RingBufferSink",
    "TraceSink",
    "read_jsonl",
]
