"""CLI verbs for the observability layer.

``python -m repro trace show|summarize`` runs a small instrumented mix
(or loads a previously captured JSONL trace) and renders the event
stream either raw or folded into the per-quantum narrative of
:mod:`repro.obs.inspect`.

``python -m repro profile`` runs the same kind of mix under the
:class:`~repro.obs.profile.StageProfiler` and prints the stage timing
table (optionally with a :mod:`cProfile` function-level breakdown).

Both verbs are dispatched from :mod:`repro.cli` before its experiment
argument parsing, so ``repro trace --help`` works like any subcommand.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.obs.bus import TraceBus
from repro.obs.events import TraceEvent, mask_for
from repro.obs.inspect import render_events, render_summary, summarize_events
from repro.obs.profile import StageProfiler, profile_call
from repro.obs.sinks import JsonlSink, RingBufferSink, TraceSink, read_jsonl

#: Default event retention for in-memory traces. Large enough to hold
#: every non-CACHE event of a small diagnostic run; CACHE-enabled traces
#: should stream to --out instead of relying on the ring.
DEFAULT_RING_CAPACITY = 65536


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by every verb that simulates a diagnostic mix."""
    parser.add_argument("--apps", type=str, default="mcf,bzip2",
                        help="comma-separated catalog apps, one per core")
    parser.add_argument("--quanta", type=int, default=3,
                        help="quanta to simulate")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload-generation seed")
    parser.add_argument("--quantum-cycles", type=int, default=100_000,
                        help="cycles per quantum")
    parser.add_argument("--epoch-cycles", type=int, default=5_000,
                        help="cycles per epoch")


def _run_traced(
    args: argparse.Namespace, sinks: Sequence[TraceSink], mask: int
) -> None:
    """Simulate the requested mix with a trace bus over ``sinks``.

    Uses the scaled platform with the ASM model and ASM-Cache policy so
    the trace exercises every event category the simulator can emit.
    """
    from repro.config import scaled_config
    from repro.harness.runner import run_workload
    from repro.models.asm import AsmModel
    from repro.policies.asm_cache import AsmCachePolicy
    from repro.workloads.mixes import make_mix

    apps = [name.strip() for name in args.apps.split(",") if name.strip()]
    if not apps:
        raise SystemExit("repro trace: --apps must name at least one app")
    mix = make_mix(apps, seed=args.seed)
    config = scaled_config(len(apps)).with_quantum(
        args.quantum_cycles, args.epoch_cycles
    )
    bus = TraceBus(list(sinks), categories=mask)
    with bus:
        run_workload(
            mix,
            config,
            model_factories={
                "asm": lambda: AsmModel(sampled_sets=config.ats_sampled_sets)
            },
            policy_factories=[lambda models: AsmCachePolicy(models["asm"])],
            quanta=args.quanta,
            obs=bus,
        )


def trace_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro trace show|summarize``."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Capture and inspect structured simulator traces.",
    )
    parser.add_argument("command", choices=("show", "summarize"),
                        help="'show' renders raw events, 'summarize' the "
                             "per-quantum narrative")
    _add_run_options(parser)
    parser.add_argument("--input", type=str, default="", metavar="FILE",
                        help="inspect an existing JSONL trace instead of "
                             "running a mix")
    parser.add_argument("--out", type=str, default="", metavar="FILE",
                        help="also stream the captured trace to this JSONL "
                             "file")
    parser.add_argument("--categories", type=str, default="default",
                        help="comma-separated categories to enable "
                             "(quantum,epoch,cache,model,policy,guard,fault), "
                             "'default' (all but cache) or 'all'")
    parser.add_argument("--limit", type=int, default=200,
                        help="max events for 'show' (0 = unlimited)")
    args = parser.parse_args(argv)

    events: List[TraceEvent]
    if args.input:
        events = list(read_jsonl(args.input))
    else:
        try:
            mask = mask_for(name.strip() for name in args.categories.split(","))
        except ValueError as exc:
            parser.error(str(exc))
        ring = RingBufferSink(capacity=DEFAULT_RING_CAPACITY)
        sinks: List[TraceSink] = [ring]
        if args.out:
            sinks.append(JsonlSink(args.out))
        _run_traced(args, sinks, mask)
        if ring.dropped:
            print(
                f"note: ring buffer dropped {ring.dropped} early events "
                f"(capacity {DEFAULT_RING_CAPACITY}); use --out for the "
                "full stream",
                file=sys.stderr,
            )
        events = list(ring.events())

    if args.command == "show":
        print(render_events(events, limit=args.limit))
    else:
        print(render_summary(summarize_events(events)))
    return 0


def profile_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro profile``."""
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Profile the simulator's hot paths on a small mix.",
    )
    _add_run_options(parser)
    parser.add_argument("--cprofile", type=int, default=0, metavar="TOP",
                        help="also run under cProfile and print the TOP "
                             "functions by cumulative time")
    args = parser.parse_args(argv)

    from repro.config import scaled_config
    from repro.harness.runner import RunProfile, run_workload
    from repro.models.asm import AsmModel
    from repro.policies.asm_cache import AsmCachePolicy
    from repro.workloads.mixes import make_mix

    apps = [name.strip() for name in args.apps.split(",") if name.strip()]
    if not apps:
        raise SystemExit("repro profile: --apps must name at least one app")
    mix = make_mix(apps, seed=args.seed)
    config = scaled_config(len(apps)).with_quantum(
        args.quantum_cycles, args.epoch_cycles
    )
    profiler = StageProfiler()
    run_profiles: List[RunProfile] = []

    def run() -> None:
        run_workload(
            mix,
            config,
            model_factories={
                "asm": lambda: AsmModel(sampled_sets=config.ats_sampled_sets)
            },
            policy_factories=[lambda models: AsmCachePolicy(models["asm"])],
            quanta=args.quanta,
            system_hooks=[profiler.attach],
            profile_sink=run_profiles.append,
        )

    stats_text = ""
    if args.cprofile:
        _, stats_text = profile_call(run, top=args.cprofile)
    else:
        run()

    print(f"profile: {mix.name} x {args.quanta} quanta "
          f"({args.quantum_cycles} cycles/quantum)")
    print(profiler.table())
    if run_profiles:
        profile = run_profiles[0]
        print(
            f"wall {profile.wall_time_s:.3f}s "
            f"(alone {profile.share('alone'):.0%}, "
            f"shared {profile.share('shared'):.0%}); "
            f"{profile.events_per_second:,.0f} events/s in the shared run"
        )
    if stats_text:
        print("\ncProfile (cumulative):")
        print(stats_text)
    return 0


__all__ = ["profile_main", "trace_main"]
