"""Trace event model: categories, masks and the event record itself.

Categories are single bits so a :class:`~repro.obs.bus.TraceBus` can gate
emission with one integer AND. Event *kinds* (the ``kind`` string on each
event) subdivide a category; the stable kinds emitted by the simulator:

==========  ==========  =====================================================
category    kind        emitted when
==========  ==========  =====================================================
QUANTUM     quantum     a quantum boundary: ground truth + per-core IPC
EPOCH       epoch       the epoch driver assigns an owner (prioritisation)
EPOCH       measure     the owner's post-warm-up measurement window opens
CACHE       access      one shared-LLC demand access (hit or primary miss)
MODEL       estimates   a model published its per-core slowdown estimates
POLICY      *           a policy acted (``reallocation``/``reweight``) or
                        declined to (``skip``)
GUARD       degraded    an EstimateGuard replaced or down-weighted a core's
                        estimate
FAULT       *           a watchdog/deadline abort (``watchdog-stall``,
                        ``deadline-exceeded``) crossed the runner
==========  ==========  =====================================================

Timestamps are **simulated cycles** (``engine.now`` at emission), never
wall-clock: traces from two runs of the same seed are directly diffable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List

#: Quantum boundaries: ground truth, shared IPC, instructions.
QUANTUM = 1
#: Epoch driver: ownership assignments and measurement-window openings.
EPOCH = 2
#: Per-access shared-cache stream (high volume; off by default).
CACHE = 4
#: Model estimates at each quantum boundary (ASM stats ride along).
MODEL = 8
#: Policy decisions: reallocations, epoch reweights, confidence skips.
POLICY = 16
#: EstimateGuard degradations (soft clamps and hard fallbacks).
GUARD = 32
#: Watchdog stalls, wall-clock deadline aborts, captured run failures.
FAULT = 64

#: Category bit -> canonical lowercase name (serialisation format).
CATEGORY_NAMES: Dict[int, str] = {
    QUANTUM: "quantum",
    EPOCH: "epoch",
    CACHE: "cache",
    MODEL: "model",
    POLICY: "policy",
    GUARD: "guard",
    FAULT: "fault",
}

_NAME_TO_CATEGORY: Dict[str, int] = {
    name: bit for bit, name in CATEGORY_NAMES.items()
}

#: Every category enabled.
ALL_CATEGORIES = 0
for _bit in CATEGORY_NAMES:
    ALL_CATEGORIES |= _bit

#: The default mask: everything except the per-access CACHE firehose,
#: which multiplies event volume by the access count of the run.
DEFAULT_CATEGORIES = ALL_CATEGORIES & ~CACHE


def mask_for(names: Iterable[str]) -> int:
    """Build a category mask from names (``["quantum", "model"]``).

    ``"all"`` selects every category; ``"default"`` selects
    :data:`DEFAULT_CATEGORIES` (everything but CACHE). Unknown names raise
    ``ValueError`` so CLI typos fail loudly instead of silently tracing
    nothing.
    """
    mask = 0
    for name in names:
        key = name.strip().lower()
        if not key:
            continue
        if key == "all":
            return ALL_CATEGORIES
        if key == "default":
            mask |= DEFAULT_CATEGORIES
            continue
        bit = _NAME_TO_CATEGORY.get(key)
        if bit is None:
            valid = ", ".join(sorted(_NAME_TO_CATEGORY))
            raise ValueError(
                f"unknown trace category {name!r}; valid: {valid}, "
                "all, default"
            )
        mask |= bit
    return mask


def names_for(mask: int) -> List[str]:
    """The canonical names of the categories enabled in ``mask``."""
    return [
        name
        for bit, name in sorted(CATEGORY_NAMES.items())
        if mask & bit
    ]


@dataclass
class TraceEvent:
    """One structured trace record.

    ``cycle`` is simulated time (``engine.now`` at emission), ``category``
    one of the bit constants in this module, ``kind`` the event subtype,
    and ``data`` the kind-specific payload (JSON-serialisable values
    only, by convention of the emit sites).
    """

    cycle: int
    category: int
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        """Serialise to a JSON-ready dict (category by name)."""
        return {
            "cycle": self.cycle,
            "category": CATEGORY_NAMES.get(self.category, str(self.category)),
            "kind": self.kind,
            "data": self.data,
        }

    @classmethod
    def from_json(cls, record: Dict[str, Any]) -> "TraceEvent":
        """Rebuild an event from :meth:`to_json` output."""
        raw = record["category"]
        category = _NAME_TO_CATEGORY.get(raw, 0) if isinstance(raw, str) else int(raw)
        return cls(
            cycle=int(record["cycle"]),
            category=category,
            kind=str(record["kind"]),
            data=dict(record.get("data") or {}),
        )


__all__ = [
    "ALL_CATEGORIES",
    "CACHE",
    "CATEGORY_NAMES",
    "DEFAULT_CATEGORIES",
    "EPOCH",
    "FAULT",
    "GUARD",
    "MODEL",
    "POLICY",
    "QUANTUM",
    "TraceEvent",
    "mask_for",
    "names_for",
]
