"""Metrics registry: counters, gauges and histograms with snapshots.

A :class:`MetricsRegistry` is a flat namespace of named instruments.
The runner updates them once per quantum and calls :meth:`snap` at the
boundary, so a run leaves behind one snapshot per quantum; campaigns
dump those next to their JSONL checkpoints (``metrics.jsonl``).

Instruments are plain Python (no locks, no background threads): the
simulator is single-threaded per run, and per-quantum update frequency
makes overhead irrelevant. Naming convention used by the runner:
``core{i}.demand_hits``, ``{model}.core{i}.car_alone``,
``engine.events``, ``queueing_delay`` (histogram).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


#: Default bucket edges for cycle-valued distributions (queueing delay).
DEFAULT_EDGES: Tuple[float, ...] = (10, 25, 50, 100, 200, 400, 800)


class Histogram:
    """A fixed-bucket histogram of observed values.

    ``edges`` are the inclusive upper bounds of the first ``len(edges)``
    buckets; values above the last edge land in an overflow bucket, so
    ``sum(counts) == count`` always holds.
    """

    __slots__ = ("name", "edges", "counts", "count", "total")

    def __init__(self, name: str, edges: Sequence[float] = DEFAULT_EDGES) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError("histogram edges must be non-empty and ascending")
        self.name = name
        self.edges: Tuple[float, ...] = tuple(edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        index = len(self.edges)  # overflow bucket
        for i, edge in enumerate(self.edges):
            if value <= edge:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean of the observed samples (NaN with no samples)."""
        return self.total / self.count if self.count else float("nan")


class MetricsRegistry:
    """A named collection of instruments plus per-quantum snapshots."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: One dict per :meth:`snap` call, in call order.
        self.snapshots: List[Dict[str, Any]] = []

    # -- instrument access (get-or-create) ------------------------------
    def counter(self, name: str) -> Counter:
        """The counter named ``name``, creating it on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = Counter(name)
            self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, creating it on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = Gauge(name)
            self._gauges[name] = instrument
        return instrument

    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram named ``name``, creating it on first use.

        ``edges`` only applies at creation; a later mismatch raises so
        two call sites cannot silently disagree about the buckets.
        """
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = Histogram(name, edges if edges is not None else DEFAULT_EDGES)
            self._histograms[name] = instrument
        elif edges is not None and tuple(edges) != instrument.edges:
            raise ValueError(
                f"histogram {name!r} already exists with edges {instrument.edges}"
            )
        return instrument

    def _check_free(self, name: str) -> None:
        if (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        ):
            raise ValueError(f"metric name {name!r} already used by another kind")

    # -- snapshots -------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Current values of every instrument as a JSON-ready dict."""
        out: Dict[str, Any] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._gauges):
            out[name] = self._gauges[name].value
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            out[name] = {
                "edges": list(hist.edges),
                "counts": list(hist.counts),
                "count": hist.count,
                "total": hist.total,
            }
        return out

    def snap(self, cycle: int) -> Dict[str, Any]:
        """Append (and return) a snapshot stamped with the sim cycle."""
        record: Dict[str, Any] = {"cycle": cycle}
        record.update(self.snapshot())
        self.snapshots.append(record)
        return record


def render_metric_series(
    snapshots: Sequence[Dict[str, Any]],
    names: Optional[Sequence[str]] = None,
) -> str:
    """Render registry snapshots as a per-metric time-series table.

    One row per scalar metric (counters and gauges; histogram dicts are
    skipped), one column per snapshot, labelled by the snapshot's
    ``cycle`` stamp. ``names`` restricts and orders the rows; by default
    every scalar metric that appears in any snapshot is shown, sorted.
    The fleet dashboard (``repro cloud report``) renders its per-round
    samples through this.
    """
    if not snapshots:
        return "(no metric snapshots)"
    if names is None:
        seen: Dict[str, None] = {}
        for snap in snapshots:
            for key in sorted(snap):
                if key != "cycle" and isinstance(
                    snap[key], (int, float)
                ):
                    seen[key] = None
        names = sorted(seen)
    header = ["metric"] + [str(snap.get("cycle", "?")) for snap in snapshots]
    rows: List[List[str]] = []
    for name in names:
        cells = [name]
        for snap in snapshots:
            value = snap.get(name)
            cells.append(
                f"{value:g}" if isinstance(value, (int, float)) else "-"
            )
        rows.append(cells)
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        if rows
        else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(len(header)))
    ]
    for row in rows:
        lines.append(
            "  ".join(row[i].rjust(widths[i]) for i in range(len(row)))
        )
    return "\n".join(lines)


__all__ = [
    "Counter",
    "DEFAULT_EDGES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_metric_series",
]
