"""Parallel fan-out of independent campaign cells across worker processes.

A *cell* is one (mix, config, quanta, variant) simulation together with the
recipes for its slowdown models and memory scheduler. Cells of a sweep are
independent of each other, so a campaign can fan them out across a
:class:`~concurrent.futures.ProcessPoolExecutor`:

1. **Resume** — cells already in the campaign's checkpoint store are
   deserialized in the parent; only the rest are dispatched.
2. **Alone profiles** — the expensive alone-run profiles the cells depend
   on are deduplicated by cache key (one application may appear in many
   mixes), computed once each in the pool, persisted through the campaign's
   alone-run cache, and shipped to the cell workers pre-seeded.
3. **Cells** — each worker simulates one full cell and returns a picklable
   payload: the :class:`~repro.harness.runner.RunResult` on success, or the
   exception's type/message/traceback/diagnosis on failure. The parent
   merges results into the checkpoint store **in submission order**, so a
   parallel sweep commits the same records, and surveys accumulate floats
   in the same order, as a serial one — ``workers=N`` is bit-identical to
   ``workers=1``.

Failure discipline matches :meth:`Campaign.run_mix`: a failing cell becomes
a replayable :class:`~repro.resilience.faults.RunFailure`; with
``keep_going`` the sweep continues (the cell yields ``None``), otherwise
:class:`WorkerRunError` re-raises it in the parent with the worker's
traceback. A worker that dies outright (the pool breaks) is recorded as a
``WorkerCrash`` failure, the pool is rebuilt, and the surviving cells are
resubmitted.

Failed cells are then *retried* under the campaign's
:class:`~repro.durability.retry.RetryPolicy`: each fan-out round is
followed by a round of the cells whose failures the supervisor still
considers worth attempting (attempts left, circuit breaker closed,
per-cell wall-clock budget not exhausted), with deterministic backoff
between rounds. A transient ``WorkerCrash`` typically succeeds on the
next round; a deterministic failure repeats, trips the breaker, and is
recorded (failure + :class:`~repro.durability.retry.DegradedCell`)
without burning the remaining attempt budget. The default policy
(``max_attempts=1``) runs exactly one round — the pre-supervision
behaviour. Retried cells commit in a later round than their neighbours,
so *store append order* can differ from a serial sweep; the store is
keyed last-record-wins, and returned results stay bit-identical.

Model/scheduler recipes must be **module-level callables** (pickled by
reference): ``model_builder(*model_builder_args)`` must return the
``{name: factory}`` dict ``run_workload`` expects, and
``scheduler_builder(*scheduler_builder_args)`` a Scheduler instance.
"""

from __future__ import annotations

import dataclasses
import time
import traceback as _traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    cast,
)

from repro.analytic.runner import resolve_fidelity, run_analytic
from repro.config import SystemConfig
from repro.harness.runner import (
    AloneProfile,
    AloneRunCache,
    ModelFactory,
    RunProfile,
    RunResult,
    run_alone,
    run_workload,
)
from repro.obs.metrics import MetricsRegistry
from repro.resilience.campaign import result_from_json, result_to_json
from repro.resilience.faults import RunFailure, config_fingerprint
from repro.telemetry.spec import TelemetrySpec
from repro.workloads.mixes import WorkloadMix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.resilience.campaign import Campaign

#: An alone-run cache key (see AloneRunCache._key) and one worker task.
ProfileKey = Tuple[Any, ...]
ProfileTask = Tuple[WorkloadMix, int, SystemConfig, int]


@dataclass(frozen=True)
class CellSpec:
    """One independent unit of campaign work (a single shared run)."""

    mix: WorkloadMix
    config: SystemConfig
    quanta: int = 1
    variant: str = ""
    model_builder: Optional[Callable[..., Dict[str, ModelFactory]]] = None
    model_builder_args: Tuple[Any, ...] = ()
    scheduler_builder: Optional[Callable[..., Any]] = None
    scheduler_builder_args: Tuple[Any, ...] = ()
    telemetry: Optional[TelemetrySpec] = None
    # Fidelity tier ("analytical" | "columnar" | "event", see
    # docs/fidelity.md). Empty means unset: ``config.engine`` governs, so
    # pre-fidelity call sites and ``--engine columnar`` are unchanged.
    fidelity: str = ""


class WorkerRunError(RuntimeError):
    """A cell failed in a worker process while ``keep_going`` was off."""

    def __init__(self, failure: RunFailure) -> None:
        super().__init__(
            f"{failure.error_type} in worker for mix '{failure.mix_name}': "
            f"{failure.message}\n{failure.traceback}"
        )
        self.failure = failure


def build_model_factories(spec: CellSpec) -> Optional[Dict[str, ModelFactory]]:
    if spec.model_builder is None:
        return None
    return spec.model_builder(*spec.model_builder_args)


def build_scheduler_factory(spec: CellSpec) -> Optional[Callable[[], Any]]:
    builder = spec.scheduler_builder
    if builder is None:
        return None
    args = spec.scheduler_builder_args
    return lambda: builder(*args)


# ----------------------------------------------------------------------
# Worker-side entry points (module-level so they pickle by reference).

def _error_payload(exc: BaseException) -> Dict[str, Any]:
    diagnosis = getattr(exc, "diagnosis", None)
    return {
        "error_type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
        "diagnosis": dict(diagnosis) if isinstance(diagnosis, dict) else {},
    }


def _profile_worker(task: ProfileTask) -> Dict[str, Any]:
    """Compute one alone-run profile: (mix, core, config, cycles)."""
    mix, core, config, cycles = task
    try:
        profile = run_alone(mix.trace_for_core(core), config, cycles)
        return {"ok": True, "profile": profile}
    except Exception as exc:  # noqa: BLE001 - isolated and reported
        return {"ok": False, **_error_payload(exc)}


@dataclass(frozen=True)
class _CellTask:
    """Everything a worker needs to run one cell, fully picklable."""

    spec: CellSpec
    profiles: Tuple[Tuple[ProfileKey, AloneProfile], ...]
    check_invariants: bool
    wall_clock_budget_s: Optional[float]
    profile: bool = False


def _cell_worker(task: _CellTask) -> Dict[str, Any]:
    spec = task.spec
    try:
        cache = AloneRunCache()
        cache.absorb(task.profiles)
        captured: List[RunProfile] = []
        run_metrics = MetricsRegistry() if task.profile else None
        if spec.config.engine == "analytic":
            result = run_analytic(
                spec.mix,
                spec.config,
                quanta=spec.quanta,
                profile_sink=captured.append if task.profile else None,
            )
        else:
            result = run_workload(
                spec.mix,
                spec.config,
                model_factories=build_model_factories(spec),
                scheduler_factory=build_scheduler_factory(spec),
                quanta=spec.quanta,
                alone_cache=cache,
                check_invariants=task.check_invariants,
                wall_clock_budget_s=task.wall_clock_budget_s,
                telemetry=spec.telemetry,
                profile_sink=captured.append if task.profile else None,
                run_metrics=run_metrics,
            )
        payload: Dict[str, Any] = {"ok": True, "result": result}
        if captured:
            payload["wall_s"] = captured[0].wall_time_s
            payload["events"] = captured[0].events_executed
        if run_metrics is not None:
            # Snapshots are plain dicts: picklable as-is.
            payload["metrics"] = run_metrics.snapshots
        return payload
    except Exception as exc:  # noqa: BLE001 - isolated and reported
        return {"ok": False, **_error_payload(exc)}


# ----------------------------------------------------------------------
# Parent-side orchestration.

def _run_tasks(
    fn: Callable[[Any], Any], payloads: Sequence[Any], workers: int
) -> List[Tuple[str, Any]]:
    """Run ``payloads`` through a process pool, surviving hard crashes.

    Returns one ``("ok", value)`` or ``("crash", message)`` per payload, in
    order. When a worker dies outright the pool breaks and every
    unfinished future raises; the first one (in submission order) is
    attributed as the crash, the pool is rebuilt, and the rest are
    resubmitted. Each rebuild permanently consumes at least one payload,
    so a poisoned payload cannot wedge the sweep. Attribution is
    best-effort: with several payloads in flight the recorded cell may be
    an innocent neighbour of the one that actually died.
    """
    outcomes: List[Optional[Tuple[str, Any]]] = [None] * len(payloads)
    pending = list(range(len(payloads)))
    while pending:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending))
        ) as pool:
            futures = [(i, pool.submit(fn, payloads[i])) for i in pending]
            crash_attributed = False
            retry: List[int] = []
            for i, future in futures:
                try:
                    outcomes[i] = ("ok", future.result())
                except (BrokenExecutor, EOFError, OSError) as exc:
                    if crash_attributed:
                        retry.append(i)
                    else:
                        crash_attributed = True
                        outcomes[i] = (
                            "crash",
                            "worker process died before returning a result "
                            f"({type(exc).__name__}: {exc})",
                        )
        pending = retry
    # Every index was either completed or attributed as a crash above.
    return cast(List[Tuple[str, Any]], outcomes)


def _failure_from_payload(
    campaign: "Campaign", cell: CellSpec, payload: Dict[str, Any]
) -> RunFailure:
    return RunFailure(
        experiment=campaign.experiment,
        variant=cell.variant,
        mix_name=cell.mix.name,
        mix_seed=cell.mix.seed,
        specs=[dataclasses.asdict(spec) for spec in cell.mix.specs],
        config_fingerprint=config_fingerprint(cell.config),
        quanta=cell.quanta,
        error_type=payload["error_type"],
        message=payload["message"],
        traceback=payload.get("traceback", ""),
        diagnosis=payload.get("diagnosis") or {},
        telemetry=cell.telemetry.to_json() if cell.telemetry is not None else None,
    )


def _cell_fingerprint(campaign: "Campaign", cell: CellSpec) -> str:
    """The cell-identity fingerprint the circuit breaker keys on.

    Matches :meth:`RunFailure.fingerprint` — the failing *cell*, not the
    failing error — so parent-side success bookkeeping and worker-side
    failure records land on the same breaker entry.
    """
    return _failure_from_payload(
        campaign, cell, {"error_type": "", "message": ""}
    ).fingerprint()


def _record_failure(
    campaign: "Campaign",
    cell: CellSpec,
    payload: Dict[str, Any],
    *,
    attempts: int = 1,
    elapsed_s: float = 0.0,
) -> None:
    """Final give-up on a cell: failure record, degradation, maybe raise."""
    failure = _failure_from_payload(campaign, cell, payload)
    campaign.record_give_up(failure, attempts, elapsed_s)
    if not campaign.keep_going:
        raise WorkerRunError(failure)


def _alone_cycles(cell: CellSpec) -> int:
    # Must match run_workload: profiles cover one quantum beyond the run.
    return (cell.quanta + 1) * cell.config.quantum_cycles


def _with_fidelity(cell: CellSpec) -> CellSpec:
    """``cell`` with its declared fidelity folded into ``config.engine``."""
    config = resolve_fidelity(cell.config, cell.fidelity)
    if config is cell.config:
        return cell
    return dataclasses.replace(cell, config=config)


def run_cells(
    campaign: "Campaign",
    cells: Sequence[CellSpec],
    *,
    workers: int = 1,
) -> List[Optional[RunResult]]:
    """Run ``cells`` under ``campaign``'s fault/checkpoint discipline.

    Returns one entry per cell, in order: the :class:`RunResult`, or
    ``None`` for cells whose failure was captured by ``keep_going``.
    ``workers=1`` delegates to :meth:`Campaign.run_mix` serially; results
    are identical either way.

    Cells declaring a :attr:`CellSpec.fidelity` tier have it folded into
    ``config.engine`` up front, so store keys, resume and dispatch all see
    the resolved engine. Analytic cells skip phase 1 entirely — the alone
    fixed point is part of the closed form (see :mod:`repro.analytic`).
    """
    cells = [_with_fidelity(cell) for cell in cells]
    if workers <= 1:
        cache = campaign.alone_cache()
        return [
            campaign.run_mix(
                cell.mix,
                cell.config,
                quanta=cell.quanta,
                variant=cell.variant,
                model_factories=build_model_factories(cell),
                scheduler_factory=build_scheduler_factory(cell),
                alone_cache=cache,
                telemetry=cell.telemetry,
            )
            for cell in cells
        ]

    results: List[Optional[RunResult]] = [None] * len(cells)
    keys = [
        campaign.run_key(
            cell.mix, cell.config, cell.quanta, cell.variant,
            telemetry=cell.telemetry,
        )
        for cell in cells
    ]
    pending: List[int] = []
    for i, cell in enumerate(cells):
        if campaign.resume and campaign.store is not None:
            cached = campaign.store.get_run(keys[i])
            if cached is not None:
                results[i] = result_from_json(cached, cell.config)
                campaign.resumed += 1
                continue
        pending.append(i)
    if not pending:
        return results

    # Phase 1: dedup the alone profiles the pending cells need, reuse what
    # the campaign's cache already holds, compute the rest in the pool.
    cache = campaign.alone_cache()
    needed: Dict[ProfileKey, ProfileTask] = {}
    cell_keys: Dict[int, List[ProfileKey]] = {}
    for i in pending:
        cell = cells[i]
        cell_keys[i] = []
        if cell.config.engine == "analytic":
            continue  # closed form: no alone profiles to collect
        cycles = _alone_cycles(cell)
        for core in range(cell.mix.num_cores):
            key = AloneRunCache._key(cell.mix, core, cell.config, cycles)
            cell_keys[i].append(key)
            needed.setdefault(key, (cell.mix, core, cell.config, cycles))

    have: Dict[ProfileKey, AloneProfile] = {}
    missing: List[ProfileKey] = []
    for key, task in needed.items():
        store_hits_before = cache.store_hits
        profile = cache.peek(*task)
        if profile is not None:
            have[key] = profile
            if cache.store_hits == store_hits_before:
                cache.hits += 1  # persistent peek counts store hits itself
        else:
            missing.append(key)
    profile_errors: Dict[ProfileKey, Dict[str, Any]] = {}
    if missing:
        outcomes = _run_tasks(
            _profile_worker, [needed[key] for key in missing], workers
        )
        for key, (kind, value) in zip(missing, outcomes):
            if kind == "crash":
                profile_errors[key] = {
                    "error_type": "WorkerCrash",
                    "message": value,
                }
            elif value["ok"]:
                have[key] = value["profile"]
                cache.misses += 1
                cache.seed_profile(*needed[key], value["profile"])
            else:
                profile_errors[key] = value

    # Phase 2: fan the runnable cells out; cells depending on a failed
    # profile fail immediately with that profile's error.
    runnable: List[int] = []
    for i in pending:
        bad = next((k for k in cell_keys[i] if k in profile_errors), None)
        if bad is not None:
            _record_failure(campaign, cells[i], profile_errors[bad])
        else:
            runnable.append(i)
    def _task_for(i: int) -> _CellTask:
        return _CellTask(
            spec=cells[i],
            profiles=tuple((key, have[key]) for key in cell_keys[i]),
            check_invariants=campaign.check_invariants,
            wall_clock_budget_s=campaign.wall_clock_budget_s,
            profile=campaign.profile,
        )

    fanout_start = perf_counter() if campaign.profile else 0.0
    busy_s = 0.0
    fanout_elapsed = 0.0
    attempts: Dict[int, int] = {i: 0 for i in runnable}
    dispatched: Dict[int, float] = {}
    active = list(runnable)
    while active:
        now = time.monotonic()
        for i in active:
            dispatched.setdefault(i, now)
        outcomes = _run_tasks(
            _cell_worker, [_task_for(i) for i in active], workers
        )
        next_round: List[int] = []
        backoff = 0.0
        for i, (kind, value) in zip(active, outcomes):
            attempts[i] += 1
            if kind == "crash":
                payload: Dict[str, Any] = {
                    "error_type": "WorkerCrash", "message": value,
                }
            elif value["ok"]:
                result = value["result"]
                if campaign.store is not None:
                    campaign.store.put_run(keys[i], result_to_json(result))
                campaign.computed += 1
                results[i] = result
                if attempts[i] > 1:
                    campaign.note_retry_success(
                        _cell_fingerprint(campaign, cells[i])
                    )
                if "wall_s" in value:
                    busy_s += value["wall_s"]
                    campaign.record_timing(
                        cells[i].mix.name, cells[i].variant, cells[i].quanta,
                        value["wall_s"], value.get("events", 0),
                    )
                if campaign.store is not None and value.get("metrics"):
                    campaign.store.put_metrics(keys[i], value["metrics"])
                continue
            else:
                payload = value
            failure = _failure_from_payload(campaign, cells[i], payload)
            fingerprint = failure.fingerprint()
            campaign.breaker.record_failure(
                fingerprint, failure.error_type, failure.message
            )
            elapsed = time.monotonic() - dispatched[i]
            if campaign.may_retry(fingerprint, attempts[i], elapsed):
                campaign.note_retry(fingerprint)
                backoff = max(
                    backoff,
                    campaign.retry_policy.delay_s(attempts[i], fingerprint),
                )
                next_round.append(i)
            else:
                _record_failure(
                    campaign, cells[i], payload,
                    attempts=attempts[i], elapsed_s=elapsed,
                )
        if next_round and backoff > 0:
            time.sleep(backoff)
        active = next_round
    if campaign.profile:
        fanout_elapsed = perf_counter() - fanout_start
    if campaign.profile and fanout_elapsed > 0 and busy_s > 0:
        # Busy fraction of the pool during the cell fan-out: 1.0 means
        # every worker simulated for the whole phase.
        campaign.pool_utilization = min(
            1.0, busy_s / (fanout_elapsed * workers)
        )
    return results


__all__ = [
    "CellSpec",
    "WorkerRunError",
    "build_model_factories",
    "build_scheduler_factory",
    "run_cells",
]
