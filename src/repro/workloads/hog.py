"""The cache/memory hog co-runner used in the Figure 1 validation.

The paper runs each application of interest next to a "memory bandwidth /
cache capacity hog" whose behaviour is varied to cause different amounts of
interference. ``hog_spec`` reproduces that knob: ``intensity`` in [0, 1]
sweeps the hog from near-idle to a full-rate streaming+thrashing program,
and ``cache_pressure`` shifts its accesses from pure streaming (bandwidth
pressure) towards LLC-sized reuse (capacity pressure).
"""

from __future__ import annotations

from repro.workloads.synthetic import AppSpec

MAX_HOG_APKI = 50.0


def hog_spec(intensity: float, cache_pressure: float = 0.5) -> AppSpec:
    """Build a hog with the given intensity and cache-pressure mix."""
    if not 0.0 <= intensity <= 1.0:
        raise ValueError("intensity must be in [0, 1]")
    if not 0.0 <= cache_pressure <= 1.0:
        raise ValueError("cache_pressure must be in [0, 1]")
    apki = max(0.1, MAX_HOG_APKI * intensity)
    # Higher cache pressure -> more reuse at LLC-scale popularity depths,
    # which occupies capacity; lower -> pure streaming bandwidth pressure.
    return AppSpec(
        name=f"hog-i{intensity:.2f}-c{cache_pressure:.2f}",
        suite="hog",
        apki=apki,
        reuse_prob=0.5 * cache_pressure,
        reuse_depth=max(1, int(3_000 * cache_pressure)),
        footprint_lines=500_000,
        seq_frac=0.9 * (1.0 - cache_pressure) + 0.05,
        write_frac=0.2,
    )
