"""Synthetic application workloads standing in for SPEC CPU2006 / NAS /
TPC-C / YCSB PinPoints traces (see DESIGN.md, substitutions)."""

from repro.workloads.synthetic import AppSpec, SyntheticTrace
from repro.workloads.catalog import CATALOG, spec_by_name, specs_sorted_by_intensity
from repro.workloads.hog import hog_spec
from repro.workloads.mixes import WorkloadMix, make_mix, random_mixes

__all__ = [
    "AppSpec",
    "SyntheticTrace",
    "CATALOG",
    "spec_by_name",
    "specs_sorted_by_intensity",
    "hog_spec",
    "WorkloadMix",
    "make_mix",
    "random_mixes",
]
