"""Synthetic shared-cache access-stream generator.

Each application is described by an :class:`AppSpec` whose parameters map
one-to-one onto the characteristics the paper's analysis depends on:

* ``apki`` — shared-cache accesses per kilo-instruction (memory intensity;
  the private L1 is already folded into the trace, see repro.cpu.trace);
* ``reuse_prob`` / ``reuse_depth`` — fraction of accesses that go to the
  application's *hot set*, and the geometric popularity depth of that hot
  set in distinct lines. An LRU cache of capacity C captures roughly the C
  most popular lines, so the hit rate grows smoothly (and concavely) with
  allocated capacity — this is what "cache sensitivity" means
  operationally, and it yields the utility curves UCP [56] exploits;
* ``seq_frac`` — fraction of *cold* accesses that stream sequentially
  (row-buffer locality) versus jumping randomly within the footprint;
* ``footprint_lines`` — total distinct lines the application touches;
* ``write_frac`` — store fraction of shared-cache accesses.

Hot-set lines are scattered across the footprint with a multiplicative
scramble so that cache-sensitive reuse does not masquerade as row-buffer
locality; sequential streaming is the sole source of row locality, as in
real streaming benchmarks.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from repro.cpu.trace import TraceRecord


@dataclass(frozen=True)
class AppSpec:
    """Parameter set describing one synthetic application."""

    name: str
    apki: float  # shared-cache accesses per kilo-instruction
    reuse_prob: float  # probability an access re-references a recent line
    reuse_depth: int  # mean LRU stack distance of re-references (lines)
    footprint_lines: int  # total distinct lines the app touches
    seq_frac: float  # sequential fraction among new-line accesses
    write_frac: float = 0.1
    suite: str = "synthetic"

    def __post_init__(self) -> None:
        if self.apki <= 0:
            raise ValueError("apki must be positive")
        if not 0.0 <= self.reuse_prob <= 1.0:
            raise ValueError("reuse_prob must be in [0, 1]")
        if not 0.0 <= self.seq_frac <= 1.0:
            raise ValueError("seq_frac must be in [0, 1]")
        if not 0.0 <= self.write_frac <= 1.0:
            raise ValueError("write_frac must be in [0, 1]")
        if self.reuse_depth < 1:
            raise ValueError("reuse_depth must be >= 1")
        if self.footprint_lines < 1:
            raise ValueError("footprint_lines must be >= 1")

    @property
    def mean_gap(self) -> float:
        """Mean non-access instructions between shared-cache accesses."""
        return max(0.0, 1000.0 / self.apki - 1.0)

    def scaled(self, intensity: float) -> "AppSpec":
        """A copy with ``apki`` scaled by ``intensity`` (hog knob)."""
        return replace(self, apki=self.apki * intensity, name=self.name)


# Large prime, coprime with any realistic footprint: spreads the popularity
# ranking across the address space bijectively (Knuth multiplicative hash).
_SCRAMBLE_PRIME = 2654435761


class SyntheticTrace(Iterator[TraceRecord]):
    """Infinite deterministic access stream for one application.

    ``base_line`` offsets the address space so co-running applications never
    share lines (matching multiprogrammed — not multithreaded — workloads).
    """

    def __init__(self, spec: AppSpec, seed: int, base_line: int = 0) -> None:
        self.spec = spec
        self.base_line = base_line
        # zlib.crc32 keeps the stream deterministic across processes
        # (Python's str hash is salted per interpreter run).
        name_salt = zlib.crc32(spec.name.encode()) & 0xFFFF
        self._rng = random.Random((seed << 16) ^ name_salt)
        self._next_seq = 0  # sequential scan cursor within footprint
        self._mean_gap = spec.mean_gap

    def __iter__(self) -> "SyntheticTrace":
        return self

    def __next__(self) -> TraceRecord:
        rng = self._rng
        spec = self.spec
        footprint = spec.footprint_lines

        gap = int(rng.expovariate(1.0 / self._mean_gap)) if self._mean_gap > 0 else 0

        if rng.random() < spec.reuse_prob:
            # Hot-set access: geometric popularity rank, scrambled so the
            # hot set is scattered in the address space.
            rank = int(rng.expovariate(1.0 / spec.reuse_depth)) % footprint
            line = (rank * _SCRAMBLE_PRIME) % footprint
        elif rng.random() < spec.seq_frac:
            line = self._next_seq
            self._next_seq = (self._next_seq + 1) % footprint
        else:
            line = rng.randrange(footprint)
        is_write = rng.random() < spec.write_frac
        return TraceRecord(
            gap=gap, line_addr=self.base_line + line, is_write=is_write
        )


def trace_for(
    spec: AppSpec, seed: int = 0, base_line: Optional[int] = None, core: int = 0
) -> SyntheticTrace:
    """Convenience constructor placing each core in a disjoint 256M-line
    (16GB) address region."""
    if base_line is None:
        base_line = (core + 1) << 28
    return SyntheticTrace(spec, seed=seed, base_line=base_line)
