"""Multiprogrammed workload construction.

The paper constructs workloads "with varying memory intensity, randomly
choosing applications for each workload" (Section 5). ``random_mixes``
reproduces that: for each workload it first draws how many high-intensity
applications to include (stratifying the sweep across intensity profiles),
then fills the remaining slots uniformly from the catalog.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.workloads.catalog import CATALOG, intensity_class, spec_by_name
from repro.workloads.synthetic import AppSpec, SyntheticTrace


@dataclass(frozen=True)
class WorkloadMix:
    """A named multiprogrammed workload: one spec per core."""

    name: str
    specs: tuple
    seed: int = 0

    @property
    def num_cores(self) -> int:
        return len(self.specs)

    def traces(self) -> List[SyntheticTrace]:
        """Build one fresh trace per core, each in a disjoint 16GB region."""
        return [
            SyntheticTrace(spec, seed=self.seed * 1000 + core, base_line=(core + 1) << 28)
            for core, spec in enumerate(self.specs)
        ]

    def trace_for_core(self, core: int) -> SyntheticTrace:
        """A fresh trace identical to the one :meth:`traces` builds for
        ``core`` — used for alone-run ground truth."""
        return SyntheticTrace(
            self.specs[core], seed=self.seed * 1000 + core, base_line=(core + 1) << 28
        )


def make_mix(names: Sequence[str], seed: int = 0, name: Optional[str] = None) -> WorkloadMix:
    specs = tuple(spec_by_name(n) for n in names)
    return WorkloadMix(name=name or "+".join(names), specs=specs, seed=seed)


def random_mixes(
    count: int,
    num_cores: int,
    seed: int = 42,
    pool: Optional[Sequence[AppSpec]] = None,
) -> List[WorkloadMix]:
    """Generate ``count`` stratified random workloads of ``num_cores`` apps.

    Each mix is drawn from its own RNG seeded by ``(seed, index)``, so
    ``mixes[i]`` depends only on the seed and its index — not on how many
    mixes are generated, nor on the order anything evaluates them. A
    parallel sweep and a serial one (or a longer and a shorter sweep)
    therefore agree on every shared mix.
    """
    specs = list(pool) if pool is not None else list(CATALOG.values())
    by_class = {"low": [], "medium": [], "high": []}
    for spec in specs:
        by_class[intensity_class(spec)].append(spec)

    mixes: List[WorkloadMix] = []
    for index in range(count):
        rng = random.Random(seed * 1_000_003 + index)
        num_high = rng.randint(0, num_cores)
        chosen: List[AppSpec] = []
        high_pool = by_class["high"] or specs
        rest_pool = (by_class["low"] + by_class["medium"]) or specs
        for _ in range(num_high):
            chosen.append(rng.choice(high_pool))
        for _ in range(num_cores - num_high):
            chosen.append(rng.choice(rest_pool))
        rng.shuffle(chosen)
        mixes.append(
            WorkloadMix(
                name=f"mix{index:03d}",
                specs=tuple(chosen),
                seed=seed * 100_000 + index,
            )
        )
    return mixes
