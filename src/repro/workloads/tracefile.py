"""Trace file I/O.

Synthetic traces are generated on the fly, but a downstream user may want
to run the simulator on *recorded* traces — e.g. post-L1 access streams
captured from real hardware or another simulator. The format is a plain
text file, one record per line::

    <gap> <line_addr_hex> <R|W>

with ``#`` comments and blank lines ignored. Files gzip automatically when
the path ends in ``.gz``.
"""

from __future__ import annotations

import gzip
import itertools
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.cpu.trace import TraceRecord

PathLike = Union[str, Path]


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def save_trace(records: Iterable[TraceRecord], path: PathLike, limit: int = 0) -> int:
    """Write ``records`` (optionally at most ``limit``) to ``path``.

    Returns the number of records written.
    """
    path = Path(path)
    if limit:
        records = itertools.islice(records, limit)
    count = 0
    with _open(path, "w") as handle:
        handle.write("# repro trace v1: <gap> <line_addr_hex> <R|W>\n")
        for record in records:
            kind = "W" if record.is_write else "R"
            handle.write(f"{record.gap} {record.line_addr:x} {kind}\n")
            count += 1
    return count


def load_trace(path: PathLike, loop: bool = False) -> Iterator[TraceRecord]:
    """Yield the records stored in ``path``.

    With ``loop=True`` the trace restarts from the beginning when
    exhausted (an infinite iterator, like the synthetic generators).
    """
    path = Path(path)

    def read_once() -> Iterator[TraceRecord]:
        with _open(path, "r") as handle:
            for line_no, line in enumerate(handle, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) != 3 or parts[2] not in ("R", "W"):
                    raise ValueError(
                        f"{path}:{line_no}: malformed trace record {line!r}"
                    )
                yield TraceRecord(
                    gap=int(parts[0]),
                    line_addr=int(parts[1], 16),
                    is_write=parts[2] == "W",
                )

    if not loop:
        yield from read_once()
        return
    while True:
        empty = True
        for record in read_once():
            empty = False
            yield record
        if empty:
            raise ValueError(f"{path} contains no records; cannot loop")
