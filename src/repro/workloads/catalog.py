"""Catalog of synthetic stand-ins for the paper's benchmarks.

Parameters are calibrated *qualitatively* to published characterisations of
SPEC CPU2006 [4], NAS [3], TPC-C [68] and YCSB [11]: memory-intensive
benchmarks (mcf, libquantum, lbm, soplex, milc, is, cg) have high APKI and
either streaming or large-footprint-random patterns; cache-sensitive ones
(dealII, bzip2, xalancbmk, soplex, omnetpp, ft) have reuse depths on the
order of the LLC capacity, so extra ways convert misses into hits;
compute-bound ones (povray, calculix, h264ref) barely touch the LLC.

The absolute values are not meant to match the originals instruction for
instruction — only the intensity/sensitivity/locality mix the paper's
analysis depends on (see DESIGN.md, substitutions). Hot-set depths and
footprints are calibrated to the scaled 256KB (4096-line) LLC of
:func:`repro.config.scaled_config`: cache-sensitive applications have hot
sets on the order of the LLC capacity (extra ways convert misses to hits),
streaming ones have tiny hot sets and huge footprints.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.synthetic import AppSpec


# Intensity rescale for the 8x-scaled platform: a smaller LLC turns more
# accesses into DRAM traffic, so unscaled APKIs would over-saturate the
# single memory channel and drown cache-capacity interference in bandwidth
# interference. 0.65 restores the paper-scale balance between the two.
_APKI_SCALE = 0.8


def _spec(name, suite, apki, reuse_prob, reuse_depth, footprint, seq, writes):
    return AppSpec(
        name=name,
        suite=suite,
        apki=apki * _APKI_SCALE,
        reuse_prob=reuse_prob,
        reuse_depth=reuse_depth,
        footprint_lines=footprint,
        seq_frac=seq,
        write_frac=writes,
    )


_SPEC_APPS = [
    #      name         suite   apki  reuse  depth  footprint  seq   wr
    _spec("povray",     "spec",  1.5, 0.90,    300,    4_000, 0.30, 0.10),
    _spec("calculix",   "spec",  2.5, 0.85,    500,    6_000, 0.50, 0.10),
    _spec("h264ref",    "spec",  3.5, 0.85,    800,    8_000, 0.60, 0.15),
    _spec("gcc",        "spec",  4.0, 0.75,  1_000,   12_000, 0.40, 0.20),
    _spec("dealII",     "spec",  6.0, 0.88,  1_500,   20_000, 0.40, 0.10),
    _spec("bzip2",      "spec",  8.0, 0.82,  1_800,   25_000, 0.30, 0.20),
    _spec("xalancbmk",  "spec", 10.0, 0.78,  2_200,   40_000, 0.20, 0.10),
    _spec("astar",      "spec", 12.0, 0.70,  1_500,   50_000, 0.10, 0.10),
    _spec("sphinx3",    "spec", 14.0, 0.65,  1_800,   60_000, 0.30, 0.05),
    _spec("omnetpp",    "spec", 18.0, 0.60,  2_000,   80_000, 0.10, 0.15),
    _spec("leslie3d",   "spec", 20.0, 0.50,    400,  200_000, 0.70, 0.10),
    _spec("GemsFDTD",   "spec", 22.0, 0.45,    600,  250_000, 0.80, 0.10),
    _spec("milc",       "spec", 25.0, 0.20,    120,  250_000, 0.50, 0.15),
    _spec("soplex",     "spec", 26.0, 0.65,  2_500,  100_000, 0.40, 0.05),
    _spec("libquantum", "spec", 32.0, 0.05,     12,  500_000, 0.95, 0.05),
    _spec("lbm",        "spec", 35.0, 0.10,     25,  500_000, 0.90, 0.30),
    _spec("mcf",        "spec", 40.0, 0.45,  4_000,  400_000, 0.05, 0.10),
]

_NAS_APPS = [
    _spec("bt", "nas",  5.0, 0.75,    900,   40_000, 0.60, 0.15),
    _spec("lu", "nas",  8.0, 0.70,  1_100,   50_000, 0.60, 0.10),
    _spec("ua", "nas", 10.0, 0.65,  1_400,   60_000, 0.40, 0.10),
    _spec("ft", "nas", 12.0, 0.88,  2_400,   75_000, 0.50, 0.10),
    _spec("sp", "nas", 15.0, 0.50,    400,  100_000, 0.70, 0.15),
    _spec("mg", "nas", 18.0, 0.40,    300,  200_000, 0.80, 0.10),
    _spec("is", "nas", 22.0, 0.25,    100,  250_000, 0.20, 0.20),
    _spec("cg", "nas", 26.0, 0.35,  1_200,  120_000, 0.15, 0.05),
]

_DB_APPS = [
    _spec("tpcc", "db", 16.0, 0.60, 2_000,  250_000, 0.10, 0.30),
    _spec("ycsb", "db", 20.0, 0.70, 1_600,  500_000, 0.05, 0.05),
]

CATALOG: Dict[str, AppSpec] = {
    spec.name: spec for spec in _SPEC_APPS + _NAS_APPS + _DB_APPS
}

# Memory-intensity classes used for stratified workload construction
# ("workloads with varying memory intensity", Section 5).
LOW_INTENSITY_APKI = 8.0
HIGH_INTENSITY_APKI = 20.0


def spec_by_name(name: str) -> AppSpec:
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(CATALOG)}"
        ) from None


def specs_sorted_by_intensity(suite: str = "") -> List[AppSpec]:
    """Catalog entries, optionally filtered by suite, by increasing APKI
    (the paper sorts its per-benchmark figures this way)."""
    specs = [s for s in CATALOG.values() if not suite or s.suite == suite]
    return sorted(specs, key=lambda s: s.apki)


def intensity_class(spec: AppSpec) -> str:
    if spec.apki < LOW_INTENSITY_APKI:
        return "low"
    if spec.apki < HIGH_INTENSITY_APKI:
        return "medium"
    return "high"
