"""Tier cross-validation: analytic estimates vs the event oracle.

Every campaign that runs analytic cells should know how far the
surrogate is from the simulator *on its own cells*. ``cross_validate``
draws a seeded sample of a campaign's (mix, config, quanta) cells, runs
each at the analytic tier **and** through the event oracle (both via
:meth:`~repro.resilience.campaign.Campaign.run_mix`, so oracle runs are
resumable and shared with any event-tier cells the campaign already
ran), and summarises the per-core slowdown deltas as a
:class:`DivergenceReport` persisted to ``divergence.jsonl`` in the
campaign store — next to ``metrics.jsonl``, readable with
:meth:`~repro.resilience.campaign.CampaignStore.load_divergence`.

The report is deliberately timestamp-free: equal seeds produce
byte-equal ``divergence.jsonl`` files (asserted by
``tests/test_analytic.py``), the same durability contract every other
store file honours.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.config import SystemConfig
from repro.harness.runner import RunResult
from repro.workloads.mixes import WorkloadMix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.resilience.campaign import Campaign

#: Documented acceptance bound: mean |slowdown error| of the analytic
#: tier vs the event oracle, percent, on the cross-validated sample.
#: Typical observed error on the default synthetic suite is well below
#: this; see docs/fidelity.md for the regimes that push toward it.
ASM_DIVERGENCE_TOLERANCE_PCT = 40.0


@dataclass(frozen=True)
class DivergenceEntry:
    """One (cell, core, model) slowdown comparison against the oracle."""

    mix: str
    core: int
    app: str
    model: str
    fidelity: str
    oracle: float
    estimate: float

    @property
    def delta(self) -> float:
        """Signed slowdown difference, estimate minus oracle."""
        return self.estimate - self.oracle

    @property
    def abs_pct(self) -> float:
        """Absolute slowdown error as a percentage of the oracle."""
        if self.oracle == 0:
            return float("nan")
        return abs(self.delta) / abs(self.oracle) * 100.0

    def to_json(self) -> Dict[str, Any]:
        """JSON-safe record, derived fields included for grep-ability."""
        return {
            "mix": self.mix,
            "core": self.core,
            "app": self.app,
            "model": self.model,
            "fidelity": self.fidelity,
            "oracle": self.oracle,
            "estimate": self.estimate,
            "delta": self.delta,
            "abs_pct": self.abs_pct,
        }


@dataclass
class DivergenceReport:
    """Slowdown divergence of one surrogate tier vs the event oracle."""

    fidelity: str
    entries: List[DivergenceEntry]

    def models(self) -> List[str]:
        """Model names present, sorted."""
        return sorted({e.model for e in self.entries})

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-model ``{mean_abs_pct, max_abs_pct, count}``."""
        out: Dict[str, Dict[str, float]] = {}
        for model in self.models():
            errors = [
                e.abs_pct
                for e in self.entries
                if e.model == model and e.abs_pct == e.abs_pct  # drop NaN
            ]
            out[model] = {
                "mean_abs_pct": sum(errors) / len(errors) if errors else 0.0,
                "max_abs_pct": max(errors) if errors else 0.0,
                "count": float(len(errors)),
            }
        return out

    def mean_abs_pct(self, model: str = "asm") -> float:
        """Mean absolute slowdown error of ``model``, percent."""
        stats = self.summary().get(model)
        return stats["mean_abs_pct"] if stats else float("nan")

    def to_json(self) -> Dict[str, Any]:
        """Deterministic JSON payload for the campaign store."""
        return {
            "fidelity": self.fidelity,
            "summary": self.summary(),
            "entries": [e.to_json() for e in self.entries],
        }

    def format_table(self) -> str:
        """Human-readable per-model divergence summary."""
        lines = [f"divergence vs event oracle ({self.fidelity} tier):"]
        for model, stats in sorted(self.summary().items()):
            lines.append(
                f"  {model:10s} mean |err| {stats['mean_abs_pct']:6.2f}%  "
                f"max {stats['max_abs_pct']:6.2f}%  "
                f"({int(stats['count'])} core-cells)"
            )
        return "\n".join(lines)


def compare_results(
    surrogate: RunResult,
    oracle: RunResult,
    fidelity: str = "analytical",
) -> List[DivergenceEntry]:
    """Per-core entries comparing a surrogate run against its oracle run.

    The oracle's ground truth is its measured ``actual_slowdowns``; the
    surrogate contributes one entry per model name in its estimates.
    """
    oracle_means = oracle.mean_actual_slowdowns()
    entries: List[DivergenceEntry] = []
    model_names = sorted(
        {name for r in surrogate.records for name in r.estimates}
    )
    for model in model_names:
        for core in range(surrogate.mix.num_cores):
            values = [
                r.estimates[model][core]
                for r in surrogate.records
                if model in r.estimates
            ]
            if not values:
                continue
            entries.append(
                DivergenceEntry(
                    mix=surrogate.mix.name,
                    core=core,
                    app=surrogate.mix.specs[core].name,
                    model=model,
                    fidelity=fidelity,
                    oracle=oracle_means[core],
                    estimate=sum(values) / len(values),
                )
            )
    return entries


def cross_validate(
    campaign: "Campaign",
    mixes: Sequence[WorkloadMix],
    config: SystemConfig,
    quanta: int = 2,
    variant: str = "",
    sample_size: int = 1,
    seed: int = 0,
    fidelity: str = "analytical",
) -> Optional[DivergenceReport]:
    """Cross-validate a seeded sample of cells and persist the report.

    Both legs run through ``campaign.run_mix`` so the analytic leg reuses
    the cells the campaign just computed and the oracle leg is resumable
    (and shared with any event-tier runs of the same cells). Returns
    ``None`` when there is nothing to sample.
    """
    if not mixes or sample_size <= 0:
        return None
    engine = _surrogate_engine(fidelity)
    rng = random.Random(seed)
    count = min(sample_size, len(mixes))
    indices = sorted(rng.sample(range(len(mixes)), count))
    entries: List[DivergenceEntry] = []
    for index in indices:
        mix = mixes[index]
        surrogate = campaign.run_mix(
            mix, config.with_engine(engine), quanta=quanta, variant=variant
        )
        oracle = campaign.run_mix(
            mix, config.with_engine("event"), quanta=quanta, variant=variant
        )
        entries.extend(compare_results(surrogate, oracle, fidelity))
    report = DivergenceReport(fidelity=fidelity, entries=entries)
    persist_report(campaign, report, variant=variant)
    return report


def persist_report(
    campaign: "Campaign", report: DivergenceReport, variant: str = ""
) -> None:
    """Append ``report`` to the campaign store's ``divergence.jsonl``."""
    if campaign.store is None:
        return
    payload = dict(report.to_json())
    payload["key"] = f"{campaign.experiment}:{variant}"
    campaign.store.put_divergence(payload)


def _surrogate_engine(fidelity: str) -> str:
    from repro.analytic.runner import ENGINE_FOR_FIDELITY

    engine = ENGINE_FOR_FIDELITY.get(fidelity)
    if engine is None:
        raise ValueError(f"unknown fidelity {fidelity!r}")
    return engine


__all__ = [
    "ASM_DIVERGENCE_TOLERANCE_PCT",
    "DivergenceEntry",
    "DivergenceReport",
    "compare_results",
    "cross_validate",
    "persist_report",
]
