"""Shared-LLC hit-rate composition from per-core reuse profiles.

Barai-style interleaving model (PAPERS.md, arXiv:1907.12666): under a
shared LRU cache, a reuse by core ``i`` at stack distance ``d`` whose
touches are ``td`` of core ``i``'s own accesses apart spans
``Δt = td / λ_i`` cycles, during which every co-runner ``j`` inserts
``D_j(λ_j · Δt)`` expected distinct lines between the two touches
(``λ`` in LLC accesses per cycle, ``D_j`` the distinct-line curve from
:meth:`~repro.analytic.reuse.ReuseProfile.distinct_lines`). The shared
stack distance is therefore

::

    d_shared = d + Σ_{j≠i} D_j(λ_j · td / λ_i)

and the reuse hits iff ``d_shared < capacity_lines``. Alone, the same
reuse hits iff ``d < capacity_lines``. Cold accesses never hit in
either case.

The LLC is treated as fully-associative LRU of ``llc.num_lines`` lines
— the classical approximation for a 16-way set-associative cache, and
the same idealisation the paper's ATS reasoning uses. Epoch-based
priority windows (the event tier's cache partitioning pressure) are
*not* modelled; ``docs/fidelity.md`` lists this among the analytic
tier's known-inaccurate regimes.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analytic.reuse import ReuseProfile


def alone_hit_rate(profile: ReuseProfile, capacity_lines: int) -> float:
    """Hit rate of ``profile`` running alone in a cache of ``capacity_lines``."""
    hits = sum(
        count
        for count, mean_sd, _td in profile.buckets
        if mean_sd < capacity_lines
    )
    return hits / profile.accesses


def shared_hit_rates(
    profiles: Sequence[ReuseProfile],
    rates: Sequence[float],
    capacity_lines: int,
) -> List[float]:
    """Per-core hit rates when all ``profiles`` share one cache.

    ``rates[i]`` is core ``i``'s LLC access rate in accesses/cycle (the
    fixed-point variable of :mod:`repro.analytic.cpi`); it converts each
    reuse's time distance from "own accesses" into cycles and back into
    co-runner insertions.
    """
    hit_rates: List[float] = []
    for i, profile in enumerate(profiles):
        own_rate = rates[i]
        if own_rate <= 0.0:
            hit_rates.append(alone_hit_rate(profile, capacity_lines))
            continue
        hits = 0.0
        for count, mean_sd, mean_td in profile.buckets:
            if mean_sd >= capacity_lines:
                continue  # misses alone; interference cannot help
            elapsed = mean_td / own_rate
            inflated = mean_sd + sum(
                other.distinct_lines(rates[j] * elapsed)
                for j, other in enumerate(profiles)
                if j != i
            )
            if inflated < capacity_lines:
                hits += count
        hit_rates.append(hits / profile.accesses)
    return hit_rates


__all__ = ["alone_hit_rate", "shared_hit_rates"]
