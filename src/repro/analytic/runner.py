"""Analytic cell runner and the fidelity → engine mapping.

:func:`run_analytic` produces the same :class:`~repro.harness.runner.RunResult`
shape the event and columnar tiers produce, so campaign stores, error
surveys, fairness metrics and the fleet tier consume analytic cells
unchanged:

* ``actual_slowdowns`` — the closed-form slowdown
  ``CPI_shared / CPI_alone`` per core (the analytic tier's ground truth
  *is* its estimate; divergence from the event oracle is measured by
  :mod:`repro.analytic.crossval`, not hidden inside the record);
* ``estimates`` — the same values under both ``"analytic"`` and
  ``"asm"`` (the fleet's placement model name), with confidence 1.0 and
  no degradation: the surrogate consumes no CounterBank telemetry, so
  telemetry fault injection does not apply to it;
* ``instructions`` / ``shared_ipc`` — extrapolated from the converged
  CPI over each quantum.

Analytic cells need **no alone profiles** — the alone fixed point is
part of the math — which is why :mod:`repro.parallel` skips phase-1
profile collection for them.
"""

from __future__ import annotations

import dataclasses
import time as _time
from typing import Callable, Dict, List, Optional, Tuple

from repro.analytic.cpi import CoreRates, solve_alone, solve_shared
from repro.analytic.reuse import DEFAULT_SAMPLE_ACCESSES, profile_mix
from repro.config import SystemConfig
from repro.harness.runner import QuantumRecord, RunProfile, RunResult
from repro.workloads.mixes import WorkloadMix

#: Fidelity tiers a campaign cell may declare, fastest first.
FIDELITY_TIERS: Tuple[str, ...] = ("analytical", "columnar", "event")

#: Fidelity tier → ``SystemConfig.engine`` value. The engine is what the
#: store fingerprints, so two tiers of the same cell never collide.
ENGINE_FOR_FIDELITY: Dict[str, str] = {
    "analytical": "analytic",
    "columnar": "columnar",
    "event": "event",
}


def resolve_fidelity(config: SystemConfig, fidelity: str) -> SystemConfig:
    """``config`` with its engine set for ``fidelity``.

    An empty fidelity means "whatever ``config.engine`` already says"
    (so ``--engine columnar`` keeps working without ``--fidelity``).
    """
    if not fidelity:
        return config
    engine = ENGINE_FOR_FIDELITY.get(fidelity)
    if engine is None:
        raise ValueError(
            f"unknown fidelity {fidelity!r}; expected one of {FIDELITY_TIERS}"
        )
    if config.engine == engine:
        return config
    return config.with_engine(engine)


def run_analytic(
    mix: WorkloadMix,
    config: SystemConfig,
    quanta: int = 1,
    sample_accesses: int = DEFAULT_SAMPLE_ACCESSES,
    profile_sink: Optional[Callable[[RunProfile], None]] = None,
) -> RunResult:
    """Estimate ``quanta`` quanta of ``mix`` in closed form.

    Wall cost is profile extraction (O(sample · log sample) per core,
    memoised per process) plus a fixed-round solve — independent of
    ``quantum_cycles``, which is the entire point of the tier.
    ``profile_sink`` receives a :class:`~repro.harness.runner.RunProfile`
    whose event counts are zero (nothing is simulated).
    """
    start = (  # profiling only, never in results
        _time.perf_counter() if profile_sink is not None else 0.0  # lint: ignore[DET001]
    )
    config = dataclasses.replace(
        config, num_cores=mix.num_cores, engine="analytic"
    )
    config.validate()
    profiles = profile_mix(mix, sample_accesses)
    shared = solve_shared(profiles, config)
    alone = [solve_alone(p, config) for p in profiles]
    slowdowns = [s.cpi / a.cpi for s, a in zip(shared, alone)]
    records = _records(shared, slowdowns, config, quanta)
    result = RunResult(mix=mix, config=config, records=records)
    if profile_sink is not None:
        wall = _time.perf_counter() - start  # lint: ignore[DET001]
        profile_sink(
            RunProfile(
                wall_time_s=wall,
                alone_time_s=0.0,
                quantum_times_s=[wall / quanta] * quanta if quanta else [],
                events_executed=0,
                events_per_second=0.0,
            )
        )
    return result


def _records(
    shared: List[CoreRates],
    slowdowns: List[float],
    config: SystemConfig,
    quanta: int,
) -> List[QuantumRecord]:
    n = len(shared)
    records: List[QuantumRecord] = []
    prev = [0] * n
    for q in range(quanta):
        cumulative = [
            int((q + 1) * config.quantum_cycles / shared[i].cpi)
            for i in range(n)
        ]
        ipc = [
            (cumulative[i] - prev[i]) / config.quantum_cycles
            for i in range(n)
        ]
        records.append(
            QuantumRecord(
                index=q,
                instructions=cumulative,
                shared_ipc=ipc,
                actual_slowdowns=list(slowdowns),
                estimates={
                    "analytic": list(slowdowns),
                    "asm": list(slowdowns),
                },
                confidence={
                    "analytic": [1.0] * n,
                    "asm": [1.0] * n,
                },
                degraded={
                    "analytic": [None] * n,
                    "asm": [None] * n,
                },
            )
        )
        prev = cumulative
    return records


__all__ = [
    "ENGINE_FOR_FIDELITY",
    "FIDELITY_TIERS",
    "resolve_fidelity",
    "run_analytic",
]
