"""Reuse-distance profile extraction from the workload generators.

The analytic tier never replays a trace through the cache; instead it
samples a bounded prefix of each core's deterministic access stream and
summarises it as a joint *stack-distance* / *time-distance* histogram:

* **stack distance** — distinct lines touched between two accesses to
  the same line. Under LRU (the fully-associative approximation of the
  16-way LLC) a reuse hits iff its stack distance is below capacity.
* **time distance** — accesses elapsed between the two touches. This is
  what co-runner interference scales with: a reuse separated by ``Δt``
  cycles admits ``D_j(λ_j · Δt)`` insertions from each co-runner ``j``
  (see :mod:`repro.analytic.llc`).

Stack distances are computed online with a Fenwick tree over access
timestamps (O(log n) per access): each line's most recent access is an
*active* timestamp, and the stack distance of a reuse is the count of
active timestamps strictly between the previous and current access.

Histograms use geometric buckets (ratio ~1.15, ~75 buckets out to the
sample length) recording per-bucket count and mean stack/time distance;
the hit-rate error this bucketing introduces is bounded by the bucket
width (~15 % in *distance*, far less in hit rate because the CDF is
smooth). The sample length (default 32768 accesses/core) is the wall
clock knob: extraction cost is independent of simulated cycles, which
is what makes 100M-cycle cells take seconds instead of minutes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.workloads.mixes import WorkloadMix
from repro.workloads.synthetic import AppSpec, SyntheticTrace

#: Accesses sampled per core when profiling a generator. Extraction is
#: O(n log n) in this; 32768 keeps a 4-core profile under ~2 s while the
#: distance CDFs are already stable to a few percent.
DEFAULT_SAMPLE_ACCESSES = 32768

#: Geometric bucket growth ratio for the distance histogram.
_BUCKET_RATIO = 1.15


def _bucket_bounds(limit: int) -> List[int]:
    """Geometric bucket lower bounds: 0, 1, 2, ... growing by ~15 %."""
    bounds = [0, 1]
    while bounds[-1] < limit:
        bounds.append(max(bounds[-1] + 1, int(bounds[-1] * _BUCKET_RATIO)))
    return bounds


class _Fenwick:
    """Binary indexed tree over access timestamps (prefix counts)."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        tree = self._tree
        while i < len(tree):
            tree[i] += delta
            i += i & (-i)

    def prefix(self, index: int) -> int:
        """Sum over [0, index]; -1 yields 0."""
        i = index + 1
        total = 0
        tree = self._tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total


@dataclass(frozen=True)
class ReuseProfile:
    """Distance summary of one core's sampled access stream.

    ``buckets`` holds ``(count, mean_stack_distance, mean_time_distance)``
    per geometric bucket for the *reuse* accesses; cold accesses (first
    touch of a line within the sample) are counted in ``cold_frac`` and
    can never hit. All rate-like fields are measured on the sample, not
    taken from the :class:`~repro.workloads.synthetic.AppSpec`, so the
    profile reflects the generator's integer truncation and scrambling.
    """

    spec_name: str
    accesses: int
    mean_gap: float  # measured non-access instructions between accesses
    write_frac: float
    seq_frac: float  # fraction of accesses at exactly prev_line + 1
    cold_frac: float
    buckets: Tuple[Tuple[int, float, float], ...]

    @property
    def reuse_frac(self) -> float:
        """Fraction of sampled accesses that re-touch a line."""
        return 1.0 - self.cold_frac

    def distinct_lines(self, n: float) -> float:
        """Expected distinct lines touched in ``n`` consecutive accesses.

        ``D(n) = Σ_{k=0}^{n-1} P(TD > k)`` where TD is the time distance
        of a random access (cold accesses have infinite TD). With the
        bucketed histogram this is ``(Σ_b count_b · min(td_b, n))/N +
        cold_frac · n`` — concave, increasing, and exactly ``n`` when
        every access is cold.
        """
        if n <= 0:
            return 0.0
        finite = sum(
            count * min(mean_td, n) for count, _sd, mean_td in self.buckets
        )
        return finite / self.accesses + self.cold_frac * n

    def instructions_per_access(self) -> float:
        """Committed instructions carried by each trace record."""
        return self.mean_gap + 1.0


def extract_profile(  # lint: pure -- per-process memo cache, transparent
    mix: WorkloadMix,
    core: int,
    sample_accesses: int = DEFAULT_SAMPLE_ACCESSES,
) -> ReuseProfile:
    """Sample ``mix``'s generator for ``core`` and summarise its reuse.

    Uses :meth:`~repro.workloads.mixes.WorkloadMix.trace_for_core`, so
    the sampled stream is byte-for-byte the prefix the event and
    columnar tiers would simulate. Profiles are memoised per process on
    ``(spec, mix seed, core, sample length)``.
    """
    key = (mix.specs[core], mix.seed, core, sample_accesses)
    cached = _PROFILE_CACHE.get(key)
    if cached is not None:
        return cached
    profile = _extract(mix.specs[core], mix.trace_for_core(core), sample_accesses)
    _PROFILE_CACHE[key] = profile
    return profile


def profile_mix(
    mix: WorkloadMix,
    sample_accesses: int = DEFAULT_SAMPLE_ACCESSES,
) -> List[ReuseProfile]:
    """Per-core reuse profiles for every application in ``mix``."""
    return [
        extract_profile(mix, core, sample_accesses)
        for core in range(mix.num_cores)
    ]


_PROFILE_CACHE: Dict[Tuple[AppSpec, int, int, int], ReuseProfile] = {}


def _extract(
    spec: AppSpec, trace: SyntheticTrace, sample_accesses: int
) -> ReuseProfile:
    tree = _Fenwick(sample_accesses)
    last_access: Dict[int, int] = {}
    bounds = _bucket_bounds(sample_accesses)
    counts = [0] * len(bounds)
    sd_sums = [0] * len(bounds)
    td_sums = [0] * len(bounds)
    cold = 0
    gap_total = 0
    writes = 0
    seq = 0
    prev_line: Optional[int] = None
    stream = iter(trace)
    for t in range(sample_accesses):
        record = next(stream)
        gap_total += record.gap
        if record.is_write:
            writes += 1
        line = record.line_addr
        if prev_line is not None and line == prev_line + 1:
            seq += 1
        prev_line = line
        t0 = last_access.get(line)
        if t0 is None:
            cold += 1
        else:
            stack_distance = tree.prefix(t - 1) - tree.prefix(t0)
            bucket = bisect.bisect_right(bounds, stack_distance) - 1
            counts[bucket] += 1
            sd_sums[bucket] += stack_distance
            td_sums[bucket] += t - t0
            tree.add(t0, -1)
        tree.add(t, +1)
        last_access[line] = t
    buckets = tuple(
        (counts[b], sd_sums[b] / counts[b], td_sums[b] / counts[b])
        for b in range(len(bounds))
        if counts[b]
    )
    return ReuseProfile(
        spec_name=spec.name,
        accesses=sample_accesses,
        mean_gap=gap_total / sample_accesses,
        write_frac=writes / sample_accesses,
        seq_frac=seq / sample_accesses,
        cold_frac=cold / sample_accesses,
        buckets=buckets,
    )


__all__ = [
    "DEFAULT_SAMPLE_ACCESSES",
    "ReuseProfile",
    "extract_profile",
    "profile_mix",
]
