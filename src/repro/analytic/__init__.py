"""Analytical fast-path surrogates: closed-form slowdown estimates.

The third execution tier. Where the event loop (:mod:`repro.harness`)
simulates every access and the columnar backend (:mod:`repro.vector`)
replays the same semantics batch-wise, :mod:`repro.analytic` replaces
per-access simulation with per-phase math:

1. :mod:`repro.analytic.reuse` samples each core's deterministic trace
   generator and extracts a joint reuse-distance / time-distance
   histogram (Fenwick-tree stack distances, geometric buckets);
2. :mod:`repro.analytic.llc` composes the per-core histograms into
   shared-LLC hit rates under interleaving (Barai-style distance
   inflation: a reuse at stack distance ``d`` separated by ``Δt``
   cycles survives iff ``d`` plus every co-runner's distinct-line
   insertions over ``Δt`` still fits in the cache);
3. :mod:`repro.analytic.cpi` turns hit rates plus a DRAM service-time
   and queueing-delay model into per-core CPI via a PPT-style interval
   core model, iterated to a damped fixed point;
4. :mod:`repro.analytic.runner` packages the converged rates as a
   :class:`~repro.harness.runner.RunResult` so campaigns, surveys and
   the fleet tier consume analytic cells unchanged, and
   :mod:`repro.analytic.crossval` cross-validates the tier against the
   event oracle, persisting a divergence report into the campaign
   store.

Cells opt in by declaring ``fidelity: analytical`` (CLI ``--fidelity``),
which maps onto ``config.engine == "analytic"``; see ``docs/fidelity.md``
for the tier decision table and the regimes where the surrogate is
known to be inaccurate.
"""

from repro.analytic.crossval import (
    ASM_DIVERGENCE_TOLERANCE_PCT,
    DivergenceReport,
    cross_validate,
)
from repro.analytic.runner import (
    ENGINE_FOR_FIDELITY,
    FIDELITY_TIERS,
    resolve_fidelity,
    run_analytic,
)

__all__ = [
    "ASM_DIVERGENCE_TOLERANCE_PCT",
    "DivergenceReport",
    "ENGINE_FOR_FIDELITY",
    "FIDELITY_TIERS",
    "cross_validate",
    "resolve_fidelity",
    "run_analytic",
]
