"""PPT-style interval core model: miss rates → DRAM contention → CPI.

Closed-form counterpart of :mod:`repro.cpu.core` plus
:mod:`repro.mem.dram`/:mod:`repro.mem.controller`, solved as a damped
fixed point between per-core access rates and CPI. Per committed
instruction:

::

    CPI = CPI_exec + (1 - wf) · a · [ h·L_llc/olap_hit + m·stall_miss ]

* ``CPI_exec = (g + W) / (W · (g + 1))`` — the frontend charges
  ``(gap + issue_width) // issue_width`` cycles per trace record and a
  record carries ``g + 1`` instructions;
* ``a = 1/(g + 1)`` accesses per instruction, ``h``/``m`` the shared
  (or alone) LLC hit/miss split from :mod:`repro.analytic.llc`;
* ``wf`` the store fraction — stores retire through the store buffer
  and do not stall the commit stream;
* ``olap`` — the ROB window keeps ``window_size/(g+1)`` accesses in
  flight; misses are additionally capped by the MSHR count.

The per-miss stall has three parts, mirroring how the event tier
actually spends cycles:

1. **Service**: the row-buffer triad of
   :func:`repro.mem.dram.service_request` — row hit ``CAS``, otherwise
   ``tRP + tRCD + CAS`` (steady state leaves banks open on the wrong
   row) — plus the data burst. Row-hit probability is the core's own
   sequential-run fraction: FR-FCFS drains queued same-row requests
   back to back, so co-runners do *not* destroy row locality (the
   event tier confirms streaming cores keep ~80 % row hits under
   sharing). Overlapped across ``olap`` in-flight misses.
2. **Self-serialisation floor**: a bank stays busy through its data
   burst (``busy_until = completion``) and a sequential run stays in
   one row, so a streaming core's misses drain at one full service
   time apiece no matter how many MSHRs it holds.
3. **Cross-core blocking**: ``κ · Σ_{j≠i} u_j · batch_j · s_j`` — the
   expected wait behind co-runner ``j``'s FR-FCFS row batches, with
   ``u_j`` j's per-bank utilisation (writebacks included) and
   ``batch_j`` its in-flight batch size. This term is *not* divided by
   the overlap: batch jumps, epoch-priority preemption and write
   drains block the whole channel, which is exactly why event-tier
   overlap collapses under sharing. ``κ`` (:data:`CROSS_BLOCKING_KAPPA`)
   is the model's one calibration constant, fitted once against the
   event oracle on the default synthetic suite and pinned.

Determinism: the solver runs a fixed ``SOLVER_ROUNDS`` damped rounds —
no convergence test, no wall clock — so equal inputs give bit-equal
rates in every process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analytic.llc import alone_hit_rate, shared_hit_rates
from repro.analytic.reuse import ReuseProfile
from repro.config import SystemConfig

#: Fixed damped fixed-point rounds (determinism over adaptive stopping).
SOLVER_ROUNDS = 16

#: Calibration constant of the cross-core blocking term (see module
#: docstring, part 3). Fitted once against the event oracle on the
#: default 4-core synthetic suite; docs/fidelity.md documents the fit.
CROSS_BLOCKING_KAPPA = 0.6

#: Utilisation clamp keeping the bus waiting term finite when offered
#: load exceeds what the event tier would simply backpressure.
_MAX_UTILISATION = 0.95


@dataclass(frozen=True)
class CoreRates:
    """Converged steady-state rates for one core.

    ``access_rate`` is LLC accesses per cycle (the quantity the cache
    composition consumes); ``dram_latency`` is the expected cycles an
    LLC miss spends from tag lookup to data return, blocking included.
    """

    cpi: float
    hit_rate: float
    access_rate: float
    miss_rate: float  # misses per cycle
    dram_latency: float


def _cpi_exec(gap: float, issue_width: int) -> float:
    return (gap + issue_width) / (issue_width * (gap + 1.0))


def _overlap(gap: float, window_size: int) -> float:
    return max(1.0, window_size / (gap + 1.0))


def _batch(profile: ReuseProfile, config: SystemConfig) -> float:
    """In-flight miss batch size: window-limited, MSHR-capped."""
    return max(
        1.0,
        min(
            _overlap(profile.mean_gap, config.core.window_size),
            float(config.core.mshr_entries),
        ),
    )


def _service_time(profile: ReuseProfile, config: SystemConfig) -> float:
    """Expected bank occupancy of one request (issue to completion)."""
    dram = config.dram
    lines_per_row = max(1, dram.row_size_bytes // config.llc.line_size)
    p_row = profile.seq_frac * (1.0 - 1.0 / lines_per_row)
    return (
        p_row * dram.cas_latency
        + (1.0 - p_row) * (dram.trp + dram.trcd + dram.cas_latency)
        + dram.burst_time
    )


def _stalls(
    profiles: Sequence[ReuseProfile],
    miss_rates: Sequence[float],
    config: SystemConfig,
) -> Tuple[List[float], List[float]]:
    """Per-core ``(stall cycles per miss, expected miss latency)``.

    ``miss_rates`` are misses per cycle; latency is reported for
    :class:`CoreRates` (Little's-law bookkeeping, not a solver input).
    """
    dram = config.dram
    n = len(profiles)
    services = [_service_time(p, config) for p in profiles]
    batches = [_batch(p, config) for p in profiles]
    # Per-bank utilisation per core, writeback traffic included.
    utils = [
        miss_rates[i]
        * (1.0 + profiles[i].write_frac)
        * services[i]
        / dram.total_banks
        for i in range(n)
    ]
    bus_util = min(
        _MAX_UTILISATION,
        sum(miss_rates[i] * (1.0 + profiles[i].write_frac) for i in range(n))
        * dram.burst_time
        / dram.channels,
    )
    bus_wait = bus_util / (1.0 - bus_util) * dram.burst_time
    stalls: List[float] = []
    latencies: List[float] = []
    for i, profile in enumerate(profiles):
        blocking = CROSS_BLOCKING_KAPPA * sum(
            utils[j] * batches[j] * services[j] for j in range(n) if j != i
        )
        overlapped = (config.llc.latency + services[i] + bus_wait) / batches[i]
        serial = (
            profile.seq_frac * services[i] * (1.0 + profile.write_frac)
        )
        stalls.append(max(overlapped, serial) + blocking)
        latencies.append(
            config.llc.latency + services[i] + bus_wait + blocking
        )
    return stalls, latencies


def _cpi_of(
    profile: ReuseProfile,
    hit_rate: float,
    miss_stall: float,
    config: SystemConfig,
) -> float:
    gap = profile.mean_gap
    access_density = 1.0 / (gap + 1.0)
    olap_hit = _overlap(gap, config.core.window_size)
    read_frac = 1.0 - profile.write_frac
    stall = read_frac * access_density * (
        hit_rate * config.llc.latency / olap_hit
        + (1.0 - hit_rate) * miss_stall
    )
    return _cpi_exec(gap, config.core.issue_width) + stall


def solve_shared(
    profiles: Sequence[ReuseProfile], config: SystemConfig
) -> List[CoreRates]:
    """Fixed point of access rates ↔ shared hit rates ↔ CPI for all cores."""
    capacity = config.llc.num_lines
    n = len(profiles)
    hit_rates = [alone_hit_rate(p, capacity) for p in profiles]
    cpis = [
        _cpi_of(profiles[i], hit_rates[i], 0.0, config) for i in range(n)
    ]
    latencies = [float(config.llc.latency)] * n
    for _ in range(SOLVER_ROUNDS):
        rates = [
            (1.0 / profiles[i].instructions_per_access()) / cpis[i]
            for i in range(n)
        ]
        hit_rates = (
            shared_hit_rates(profiles, rates, capacity)
            if n > 1
            else [alone_hit_rate(profiles[0], capacity)]
        )
        miss_rates = [rates[i] * (1.0 - hit_rates[i]) for i in range(n)]
        stalls, latencies = _stalls(profiles, miss_rates, config)
        cpis = [
            0.5 * cpis[i]
            + 0.5 * _cpi_of(profiles[i], hit_rates[i], stalls[i], config)
            for i in range(n)
        ]
    return [
        CoreRates(
            cpi=cpis[i],
            hit_rate=hit_rates[i],
            access_rate=(1.0 / profiles[i].instructions_per_access())
            / cpis[i],
            miss_rate=(1.0 / profiles[i].instructions_per_access())
            / cpis[i]
            * (1.0 - hit_rates[i]),
            dram_latency=latencies[i],
        )
        for i in range(n)
    ]


def solve_alone(profile: ReuseProfile, config: SystemConfig) -> CoreRates:
    """The same fixed point for one core with the whole LLC to itself."""
    return solve_shared([profile], config)[0]


__all__ = [
    "CROSS_BLOCKING_KAPPA",
    "SOLVER_ROUNDS",
    "CoreRates",
    "solve_alone",
    "solve_shared",
]
