"""A counting Bloom filter.

FST's pollution filter must support removal (a block stops being "polluted"
once the application re-fetches it), so we use the counting variant [Bloom,
1970]. Hashing is double hashing over two independent multiplicative hashes,
which keeps the filter deterministic across processes (Python's builtin
``hash`` on ints is identity-like and fine, but we avoid relying on it).
"""

from __future__ import annotations

_MULT1 = 0x9E3779B97F4A7C15
_MULT2 = 0xC2B2AE3D27D4EB4F
_MASK64 = (1 << 64) - 1


def _mix(value: int, mult: int) -> int:
    value = (value * mult) & _MASK64
    value ^= value >> 29
    value = (value * mult) & _MASK64
    value ^= value >> 32
    return value


class CountingBloomFilter:
    """Counting Bloom filter over non-negative integer keys."""

    def __init__(self, num_counters: int, num_hashes: int = 4) -> None:
        if num_counters <= 0:
            raise ValueError("num_counters must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_counters = num_counters
        self.num_hashes = num_hashes
        self._counters = [0] * num_counters

    def _indices(self, key: int):
        h1 = _mix(key, _MULT1)
        h2 = _mix(key, _MULT2) | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_counters

    def insert(self, key: int) -> None:
        for idx in self._indices(key):
            self._counters[idx] += 1

    def remove(self, key: int) -> None:
        """Remove one insertion of ``key`` if it may be present.

        Removing a key that was never inserted is a no-op rather than an
        error: with hash collisions the caller cannot always know.
        """
        indices = list(self._indices(key))
        if all(self._counters[idx] > 0 for idx in indices):
            for idx in indices:
                self._counters[idx] -= 1

    def __contains__(self, key: int) -> bool:
        return all(self._counters[idx] > 0 for idx in self._indices(key))

    def clear(self) -> None:
        self._counters = [0] * self.num_counters

    @property
    def load(self) -> float:
        """Fraction of non-zero counters (useful to gauge saturation)."""
        occupied = sum(1 for c in self._counters if c)
        return occupied / self.num_counters
