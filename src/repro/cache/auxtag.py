"""Auxiliary tag store (ATS).

Per-application shadow tag directory with the same geometry as the shared
cache, updated on every access of that application only. It therefore tracks
the state the cache *would* have had if the application ran alone
(references [53, 56] in the paper).

Three consumers share this one structure:

* **ASM / PTCA** ask, per access, whether it would have hit alone
  (``AtsOutcome.hit``) — the basis of contention-miss counting.
* **UCP and ASM-Cache** need UMON-style way-hit histograms: a hit at MRU
  stack position ``p`` would still hit with any allocation of ``>= p + 1``
  ways, so the cumulative histogram yields ``hits_with_ways(n)``.
* **Set sampling** (Section 4.4): the ATS is kept only for a subset of sets
  and hit/miss *fractions* from the sampled sets are scaled by total access
  counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cache.replacement import Line, LruSet
from repro.config import CacheConfig


@dataclass
class AtsOutcome:
    """Result of presenting one access to the ATS.

    ``sampled`` is False when the access maps to a non-sampled set, in which
    case ``hit`` and ``stack_position`` are meaningless.
    """

    sampled: bool
    hit: bool = False
    stack_position: Optional[int] = None


class AuxiliaryTagStore:
    """Shadow tags for one application, optionally set-sampled."""

    def __init__(self, config: CacheConfig, sampled_sets: Optional[int] = None) -> None:
        config.validate()
        self.config = config
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        if sampled_sets is None or sampled_sets >= self.num_sets:
            self.sample_stride = 1
            self.num_sampled_sets = self.num_sets
        else:
            if sampled_sets <= 0:
                raise ValueError("sampled_sets must be positive")
            self.sample_stride = max(1, self.num_sets // sampled_sets)
            self.num_sampled_sets = len(
                range(0, self.num_sets, self.sample_stride)
            )
        self._sets = {
            idx: LruSet(self.associativity)
            for idx in range(0, self.num_sets, self.sample_stride)
        }
        # Counters over sampled sets only.
        self.sampled_hits = 0
        self.sampled_misses = 0
        # UMON way-hit histogram: way_hits[p] counts hits at stack position p.
        self.way_hits = [0] * self.associativity
        # Total accesses presented (sampled or not) — the scaling base.
        self.total_accesses = 0

    @property
    def is_sampled(self) -> bool:
        return self.sample_stride > 1

    def access(self, line_addr: int) -> AtsOutcome:
        """Present one shared-cache access of this application to the ATS."""
        self.total_accesses += 1
        set_index = line_addr % self.num_sets
        ats_set = self._sets.get(set_index)
        if ats_set is None:
            return AtsOutcome(sampled=False)
        tag = line_addr // self.num_sets
        position = ats_set.stack_position(tag)
        if position is not None:
            self.sampled_hits += 1
            self.way_hits[position] += 1
            ats_set.touch(ats_set.lines[-1 - position])
            return AtsOutcome(sampled=True, hit=True, stack_position=position)
        self.sampled_misses += 1
        ats_set.insert(Line(tag))
        return AtsOutcome(sampled=True, hit=False)

    def access_batch(
        self, addrs: Sequence[int]
    ) -> Tuple[List[bool], List[bool]]:
        """Present a span of accesses at once (the columnar backend).

        Returns ``(sampled, ats_hit)`` masks aligned with ``addrs`` —
        exactly ``[access(a).sampled, access(a).hit]`` per address — and
        updates every counter identically to per-access calls. Set and
        tag extraction run as one vectorized pass; the residual per-set
        LRU walk only touches sampled sets and processes each set's
        accesses in arrival order (LRU state across disjoint sets is
        independent, and the counters are order-free sums, so grouping
        by set is bit-identical to the interleaved scalar order).
        """
        from repro.vector import columns as col
        from repro.vector.passes import llc_classify

        n = len(addrs)
        self.total_accesses += n
        set_idx, tag_col = llc_classify(col.column(addrs), self.config)
        tags = col.tolist(tag_col)
        sampled = [False] * n
        ats_hit = [False] * n
        sets_get = self._sets.get
        for set_index, positions in col.group_by(set_idx):
            ats_set = sets_get(set_index)
            if ats_set is None:
                continue
            for i in positions:
                sampled[i] = True
                tag = tags[i]
                position = ats_set.stack_position(tag)
                if position is not None:
                    self.sampled_hits += 1
                    self.way_hits[position] += 1
                    ats_set.touch(ats_set.lines[-1 - position])
                    ats_hit[i] = True
                else:
                    self.sampled_misses += 1
                    ats_set.insert(Line(tag))
        return sampled, ats_hit

    # -- sampled-to-total scaling (Section 4.4) ---------------------------
    @property
    def sampled_accesses(self) -> int:
        return self.sampled_hits + self.sampled_misses

    def hit_fraction(self) -> float:
        sampled = self.sampled_accesses
        return self.sampled_hits / sampled if sampled else 0.0

    def scaled_hits(self, accesses: Optional[int] = None) -> float:
        """``epoch-ATS-hits``: hit fraction times total access count."""
        base = self.total_accesses if accesses is None else accesses
        return self.hit_fraction() * base

    def scaled_misses(self, accesses: Optional[int] = None) -> float:
        base = self.total_accesses if accesses is None else accesses
        return (1.0 - self.hit_fraction()) * base

    # -- UMON-style utility curves (UCP Section 7.1) ----------------------
    def hits_with_ways(self, ways: int) -> float:
        """Estimated hits had the application been given ``ways`` ways,
        scaled from sampled sets to all accesses."""
        if ways <= 0:
            return 0.0
        sampled = self.sampled_accesses
        if not sampled:
            return 0.0
        sampled_hits_n = sum(self.way_hits[: min(ways, self.associativity)])
        return sampled_hits_n / sampled * self.total_accesses

    def utility_curve(self) -> List[float]:
        """``hits_with_ways(n)`` for n in 0..associativity."""
        return [self.hits_with_ways(n) for n in range(self.associativity + 1)]

    def reset_stats(self) -> None:
        """Clear counters (tag state is preserved across quanta)."""
        self.sampled_hits = 0
        self.sampled_misses = 0
        self.way_hits = [0] * self.associativity
        self.total_accesses = 0
