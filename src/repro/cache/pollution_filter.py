"""FST's per-application pollution filter.

Tracks cache blocks of an application that were evicted from the shared
cache by *other* applications. A shared-cache miss that hits in the filter
is classified as a contention miss (it would have been a hit alone).

The hardware mechanism is a Bloom filter [8, 15]; an exact (unbounded-size)
mode is provided so experiments can compare "equal-overhead" filters against
idealised ones, mirroring the paper's sampled/unsampled comparisons.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.cache.bloom import CountingBloomFilter


class PollutionFilter:
    """Evicted-by-others filter for one application."""

    def __init__(self, num_counters: Optional[int] = None, num_hashes: int = 4) -> None:
        """``num_counters=None`` selects the exact (idealised) variant."""
        self._exact: Optional[Set[int]] = set() if num_counters is None else None
        self._bloom: Optional[CountingBloomFilter] = (
            None if num_counters is None else CountingBloomFilter(num_counters, num_hashes)
        )

    @property
    def is_exact(self) -> bool:
        return self._exact is not None

    def on_evicted_by_other(self, line_addr: int) -> None:
        """The application's block ``line_addr`` was evicted by another app."""
        if self._exact is not None:
            self._exact.add(line_addr)
        else:
            assert self._bloom is not None
            if line_addr not in self._bloom:
                self._bloom.insert(line_addr)

    def on_refetch(self, line_addr: int) -> None:
        """The application fetched ``line_addr`` back into the cache."""
        if self._exact is not None:
            self._exact.discard(line_addr)
        else:
            assert self._bloom is not None
            self._bloom.remove(line_addr)

    def is_contention_miss(self, line_addr: int) -> bool:
        if self._exact is not None:
            return line_addr in self._exact
        assert self._bloom is not None
        return line_addr in self._bloom

    def clear(self) -> None:
        if self._exact is not None:
            self._exact.clear()
        else:
            assert self._bloom is not None
            self._bloom.clear()
