"""A generic set-associative write-back, write-allocate cache.

Used directly for the per-core private L1 caches; the shared LLC in
:mod:`repro.cache.shared_cache` builds on the same set machinery but adds
per-core ownership, statistics and way partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.replacement import Line, LruSet
from repro.config import CacheConfig


@dataclass
class AccessResult:
    """Outcome of a cache access.

    ``writeback_line_addr`` is the line address of a dirty victim that must
    be written back to the next level, or ``None``. ``victim_owner`` is the
    core that owned the evicted line (shared caches only; private caches
    report 0).
    """

    hit: bool
    evicted_line_addr: Optional[int] = None
    writeback_line_addr: Optional[int] = None
    victim_owner: int = 0


class SetAssocCache:
    """Set-associative LRU cache operating on line addresses.

    Addresses given to :meth:`access` are *line* addresses (byte address
    divided by the line size); the caller performs that shift once.
    """

    def __init__(self, config: CacheConfig) -> None:
        config.validate()
        self.config = config
        self.num_sets = config.num_sets
        self.sets: List[LruSet] = [
            LruSet(config.associativity) for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _set_and_tag(self, line_addr: int):
        return self.sets[line_addr % self.num_sets], line_addr // self.num_sets

    def contains(self, line_addr: int) -> bool:
        """Probe without updating LRU state or statistics."""
        cache_set, tag = self._set_and_tag(line_addr)
        return cache_set.find(tag) is not None

    def access(self, line_addr: int, is_write: bool = False) -> AccessResult:
        """Perform an access; on a miss, allocate and maybe evict."""
        cache_set, tag = self._set_and_tag(line_addr)
        line = cache_set.find(tag)
        if line is not None:
            self.hits += 1
            cache_set.touch(line)
            if is_write:
                line.dirty = True
            return AccessResult(hit=True)

        self.misses += 1
        victim = cache_set.insert(Line(tag, owner=0, dirty=is_write))
        if victim is None:
            return AccessResult(hit=False)
        victim_addr = victim.tag * self.num_sets + (line_addr % self.num_sets)
        return AccessResult(
            hit=False,
            evicted_line_addr=victim_addr,
            writeback_line_addr=victim_addr if victim.dirty else None,
        )

    def invalidate(self, line_addr: int) -> bool:
        """Remove a line (inclusive-hierarchy back-invalidation)."""
        cache_set, tag = self._set_and_tag(line_addr)
        return cache_set.evict(tag) is not None

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses
